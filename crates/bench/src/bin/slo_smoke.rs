//! SLO burn-rate smoke check for CI.
//!
//! ```text
//! slo_smoke [--requests N] [--artifacts DIR]
//! ```
//!
//! Runs the standard three-tenant serving mix at two operating points
//! and checks the observability pipeline's alerting polarity:
//!
//! - **healthy** (100 kreq/s): every request meets its SLO, so the SLO
//!   engine must fire **zero** alerts;
//! - **overload** (3.2 Mreq/s): the admission queue sheds and deadlines
//!   blow, so the engine must fire at least one **page**-severity alert
//!   at a deterministic sim time (printed, and identical at every
//!   `CIM_THREADS`).
//!
//! Exit 0 when both polarities hold, 1 otherwise.
//!
//! `--artifacts DIR` additionally runs the overload point once with
//! full span tracing and writes the CI artifact set: `serving_obs.jsonl`
//! (metrics + series + alert + profile records, schema-validated),
//! `serving_time.folded` / `serving_energy.folded` (flamegraph folded
//! stacks, time and energy weighted), and `serving_utilization.txt`
//! (per-component busy/idle timeline).

use cim_bench::experiments::serving;
use cim_fabric::service::{CimService, ServiceConfig};
use cim_fabric::FabricConfig;
use cim_obs::profile::Profile;
use cim_obs::{alerts_jsonl, AlertSeverity, ObsConfig};
use cim_sim::telemetry::TelemetryLevel;
use cim_sim::SeedTree;
use cim_workloads::serving::standard_request_mix;
use std::path::Path;
use std::process::ExitCode;

const HEALTHY_HZ: f64 = 100_000.0;
const OVERLOAD_HZ: f64 = 3_200_000.0;
const SEED: u64 = 0x0005_1057;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requests = 400usize;
    let mut artifacts: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) => requests = n,
                None => return usage("--requests needs a positive count"),
            },
            "--artifacts" => match args.get(i + 1) {
                Some(d) => artifacts = Some(d.clone()),
                None => return usage("--artifacts needs a directory"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
        i += 2;
    }

    let pts = serving::run(&[HEALTHY_HZ, OVERLOAD_HZ], requests, SEED);
    let healthy = &pts[0];
    let overload = &pts[1];

    println!(
        "healthy  {:>9} req/s: {} completed, {} shed, {} alert(s)",
        HEALTHY_HZ as u64,
        healthy.completed,
        healthy.shed,
        healthy.alerts.len()
    );
    println!(
        "overload {:>9} req/s: {} completed, {} shed, {} alert(s)",
        OVERLOAD_HZ as u64,
        overload.completed,
        overload.shed,
        overload.alerts.len()
    );
    for a in &overload.alerts {
        println!(
            "  ALERT t={:>12} ps [{}] {} tenant={} burn={:.2}",
            a.at.as_ps(),
            a.severity.name(),
            a.rule,
            a.tenant,
            a.burn_rate
        );
    }

    let mut ok = true;
    if !healthy.alerts.is_empty() {
        eprintln!(
            "FAIL: healthy point fired {} alert(s); expected zero",
            healthy.alerts.len()
        );
        ok = false;
    }
    let pages = overload
        .alerts
        .iter()
        .filter(|a| a.severity == AlertSeverity::Page)
        .count();
    if pages == 0 {
        eprintln!("FAIL: overload point fired no page-severity alert");
        ok = false;
    }

    if let Some(dir) = artifacts {
        if let Err(e) = write_artifacts(Path::new(&dir), requests) {
            eprintln!("FAIL: artifacts: {e}");
            ok = false;
        }
    }

    if ok {
        println!("slo_smoke: OK (healthy silent, overload pages)");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the overload point once with full span tracing and writes the
/// observability artifact set. Overload (not healthy) so the export
/// carries all three record families — `series`, `alert` *and*
/// `profile` — which CI pins with `telemetry_check --require-kinds`.
fn write_artifacts(dir: &Path, requests: usize) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(SEED),
    )
    .map_err(|e| format!("boot: {e}"))?;
    svc.runtime_mut()
        .device_mut()
        .enable_telemetry(TelemetryLevel::Full);
    svc.enable_observability(ObsConfig::default());
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(SEED ^ 0x7E4A47));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .map_err(|e| format!("register: {e}"))?;
    }
    // Span tracing is heavy; a shorter stream keeps the artifact run fast
    // while still exercising every tenant.
    let n = requests.min(100);
    let r = svc
        .run_open_loop(OVERLOAD_HZ, n, &[])
        .map_err(|e| format!("run: {e}"))?;
    let tel = svc.runtime().device().telemetry();
    let profile = Profile::from_telemetry(tel, 32);

    let obs_path = dir.join("serving_obs.jsonl");
    let extra = [
        r.series_jsonl.as_str(),
        &alerts_jsonl(&r.alerts),
        &profile.export_jsonl(),
    ];
    let lines = cim_obs::export::write_export_with(tel, &extra, &obs_path)
        .map_err(|e| format!("write {}: {e}", obs_path.display()))?;

    let write = |name: &str, text: String| -> Result<(), String> {
        let p = dir.join(name);
        std::fs::write(&p, text).map_err(|e| format!("write {}: {e}", p.display()))
    };
    write("serving_time.folded", profile.folded_time())?;
    write("serving_energy.folded", profile.folded_energy())?;
    write("serving_utilization.txt", profile.render_text(16))?;
    println!(
        "artifacts: {} obs lines + folded stacks + utilization in {}",
        lines,
        dir.display()
    );
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("slo_smoke: {err}");
    eprintln!("usage: slo_smoke [--requests N] [--artifacts DIR]");
    ExitCode::FAILURE
}
