//! SEC6 — Dot Product Engine vs CPU vs GPU (paper §VI).
//!
//! The paper reports, for "the neural network class of applications":
//!
//! * latency 10–10⁴× better than CPUs and 10–10²× better than GPUs;
//! * bandwidth (sustained throughput) 10³–10⁶× better than CPUs and
//!   comparable to GPUs;
//! * power 10³–10⁶× better than CPUs and 10–10³× better than GPUs.
//!
//! This experiment reproduces the *shape*: a large dense layer (weights
//! far beyond the CPU's cache) is run on the CIM fabric (stationary
//! weights in crossbars), the CPU model (weights streamed from DRAM) and
//! the GPU model (weights streamed from HBM, kernel-launch overheads).
//! Latency and power are measured at the latency-critical batch-1
//! operating point; throughput on a saturated stream.

use crate::table::{ratio, TextTable};
use cim_baseline::{CpuModel, GpuModel};
use cim_crossbar::dpe::DpeConfig;
use cim_dataflow::graph::{DataflowGraph, GraphBuilder, NodeRef};
use cim_dataflow::ops::{Operation, Reduction};
use cim_fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim_sim::energy::Energy;
use cim_sim::rng::normal;
use cim_sim::telemetry::{MetricValue, Telemetry, TelemetryLevel};
use cim_sim::time::SimDuration;
use cim_sim::SeedTree;
use std::collections::HashMap;

/// One platform's measured operating points.
#[derive(Debug, Clone, Copy)]
pub struct PlatformNumbers {
    /// Batch-1 (latency-critical) end-to-end latency.
    pub batch1_latency: SimDuration,
    /// Sustained throughput, items per second.
    pub throughput: f64,
    /// Energy per item at the batch-1 operating point.
    pub energy_per_item: Energy,
}

impl PlatformNumbers {
    /// Power when serving `rate` items/s at this platform's per-item
    /// energy (iso-throughput power, the paper's §VI framing).
    pub fn power_at(&self, rate: f64) -> f64 {
        self.energy_per_item.as_joules() * rate
    }
}

/// One hardware stage's share of the CIM batch-1 operating point,
/// aggregated from telemetry counters across the whole device.
#[derive(Debug, Clone, Copy)]
pub struct ComponentShare {
    /// Stage name: `array`, `dac`, `adc`, `digital`, `alu` or `noc`.
    pub component: &'static str,
    /// Busy time attributed to the stage (disjoint across stages).
    pub busy: SimDuration,
    /// Energy attributed to the stage.
    pub energy: Energy,
}

/// Per-component decomposition of the CIM batch-1 latency and energy.
///
/// The shares come from hierarchical telemetry counters, not a separate
/// model, so they account for (nearly) all of the end-to-end totals: the
/// instrumentation buckets the same integer femtojoules and picoseconds
/// the cost model charges.
#[derive(Debug, Clone)]
pub struct ComponentBreakdown {
    /// Stage shares in pipeline order.
    pub shares: Vec<ComponentShare>,
    /// End-to-end batch-1 latency the shares should sum to.
    pub total_latency: SimDuration,
    /// End-to-end batch-1 energy the shares should sum to.
    pub total_energy: Energy,
}

impl ComponentBreakdown {
    /// Sum of the per-stage busy times.
    pub fn accounted_latency(&self) -> SimDuration {
        self.shares.iter().map(|s| s.busy).sum::<SimDuration>()
    }

    /// Sum of the per-stage energies.
    pub fn accounted_energy(&self) -> Energy {
        self.shares.iter().map(|s| s.energy).sum::<Energy>()
    }
}

/// Stage bucket for a telemetry component path.
fn classify(path: &str) -> Option<&'static str> {
    if path == "noc" || path.starts_with("noc/") {
        return Some("noc");
    }
    for stage in ["array", "dac", "adc", "digital", "alu"] {
        if path.ends_with(&format!("/{stage}")) {
            return Some(stage);
        }
    }
    None
}

/// Aggregates the device's telemetry counters into stage shares.
fn breakdown_from(
    tel: &Telemetry,
    total_latency: SimDuration,
    total_energy: Energy,
) -> ComponentBreakdown {
    const ORDER: [&str; 6] = ["alu", "dac", "array", "adc", "digital", "noc"];
    let mut busy = [0u64; 6];
    let mut energy = [0u64; 6];
    for s in tel.snapshot() {
        let Some(stage) = classify(&s.component) else {
            continue;
        };
        let i = ORDER.iter().position(|&o| o == stage).expect("known stage");
        if let MetricValue::Counter(n) = s.value {
            match s.metric {
                "energy_fj" => energy[i] += n,
                "busy_ps" => busy[i] += n,
                _ => {}
            }
        }
    }
    ComponentBreakdown {
        shares: ORDER
            .iter()
            .zip(busy.iter().zip(&energy))
            .map(|(&component, (&ps, &fj))| ComponentShare {
                component,
                busy: SimDuration::from_ps(ps),
                energy: Energy::from_fj(fj),
            })
            .collect(),
        total_latency,
        total_energy,
    }
}

/// The full §VI comparison.
#[derive(Debug, Clone)]
pub struct Sec6Report {
    /// Layer description.
    pub model: String,
    /// CIM fabric numbers.
    pub cim: PlatformNumbers,
    /// CPU socket numbers.
    pub cpu: PlatformNumbers,
    /// GPU board numbers.
    pub gpu: PlatformNumbers,
    /// Where the CIM batch-1 latency and energy actually go.
    pub breakdown: ComponentBreakdown,
}

impl Sec6Report {
    /// Latency advantage over the CPU (>1 means CIM is faster).
    pub fn latency_vs_cpu(&self) -> f64 {
        self.cpu.batch1_latency.as_secs_f64() / self.cim.batch1_latency.as_secs_f64()
    }

    /// Latency advantage over the GPU.
    pub fn latency_vs_gpu(&self) -> f64 {
        self.gpu.batch1_latency.as_secs_f64() / self.cim.batch1_latency.as_secs_f64()
    }

    /// Throughput advantage over the CPU.
    pub fn throughput_vs_cpu(&self) -> f64 {
        self.cim.throughput / self.cpu.throughput
    }

    /// Throughput advantage over the GPU.
    pub fn throughput_vs_gpu(&self) -> f64 {
        self.cim.throughput / self.gpu.throughput
    }

    /// Iso-throughput power advantage over the CPU.
    pub fn power_vs_cpu(&self) -> f64 {
        let rate = self.cpu.throughput;
        self.cpu.power_at(rate) / self.cim.power_at(rate)
    }

    /// Iso-throughput power advantage over the GPU.
    pub fn power_vs_gpu(&self) -> f64 {
        let rate = self.gpu.throughput;
        self.gpu.power_at(rate) / self.cim.power_at(rate)
    }
}

/// Builds the benchmark graph: one `dim × dim` dense layer + argmax.
fn layer_graph(dim: usize, seeds: SeedTree) -> (DataflowGraph, NodeRef) {
    let mut rng = seeds.rng("sec6-weights");
    let scale = 1.0 / (dim as f64).sqrt();
    let weights: Vec<f64> = (0..dim * dim)
        .map(|_| normal(&mut rng, 0.0, scale))
        .collect();
    let mut b = GraphBuilder::new();
    let src = b.add("input", Operation::Source { width: dim });
    let mv = b.add(
        "dense",
        Operation::MatVec {
            rows: dim,
            cols: dim,
            weights,
        },
    );
    let arg = b.add(
        "argmax",
        Operation::Reduce {
            kind: Reduction::ArgMax,
            width: dim,
        },
    );
    let sink = b.add("class", Operation::Sink { width: 1 });
    b.chain(&[src, mv, arg, sink]).expect("widths match");
    (b.build().expect("valid graph"), src)
}

/// Runs the comparison for a `dim × dim` layer with `stream_len` items in
/// the throughput phase. The paper-scale configuration is
/// `run(4096, 6)`; smaller dims keep CI fast while preserving shape.
pub fn run(dim: usize, stream_len: usize) -> Sec6Report {
    run_with_telemetry(dim, stream_len).0
}

/// Like [`run`], but also returns the device telemetry handle so callers
/// can export the raw metrics (`--telemetry` in the `sec6_dpe` binary).
/// The handle holds the metrics of the final (throughput) phase; the
/// batch-1 phase is snapshotted into the report's breakdown before the
/// reset between phases.
pub fn run_with_telemetry(dim: usize, stream_len: usize) -> (Sec6Report, Telemetry) {
    let seeds = SeedTree::new(0x5EC6);
    let (graph, src) = layer_graph(dim, seeds);

    // --- CIM fabric --------------------------------------------------------
    let mut device = CimDevice::new(cim_config()).expect("default fabric");
    let tel = device.enable_telemetry(TelemetryLevel::Metrics);
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("graph fits");
    // Drop the programming-phase counters: the breakdown decomposes the
    // *inference* operating point (§VI treats write asymmetry separately).
    device.reset_occupancy();
    let one = vec![HashMap::from([(src, vec![0.25; dim])])];
    let single = device
        .execute_stream(&mut prog, &one, &StreamOptions::default())
        .expect("runs");
    // At batch 1 the pipeline is a serial chain, so the disjoint per-stage
    // busy counters decompose the end-to-end latency (and the per-stage
    // energy counters bucket the exact integer femtojoules charged).
    let breakdown = breakdown_from(&tel, single.mean_latency(), single.energy);
    device.reset_occupancy();
    let stream: Vec<_> = (0..stream_len)
        .map(|i| HashMap::from([(src, vec![(i % 3) as f64 / 4.0; dim])]))
        .collect();
    let streamed = device
        .execute_stream(&mut prog, &stream, &StreamOptions::default())
        .expect("runs");
    let cim = PlatformNumbers {
        batch1_latency: single.mean_latency(),
        throughput: streamed.throughput().expect("non-degenerate stream"),
        energy_per_item: single.energy,
    };

    // --- CPU ---------------------------------------------------------------
    let cpu_model = CpuModel::new(20).expect("20-core socket");
    let cpu_single = cpu_model.run_graph(&graph, 1);
    let cpu_stream = cpu_model.run_graph(&graph, stream_len.max(2));
    let cpu = PlatformNumbers {
        batch1_latency: cpu_single.latency,
        throughput: stream_len.max(2) as f64 / cpu_stream.latency.as_secs_f64(),
        energy_per_item: cpu_single.energy,
    };

    // --- GPU ---------------------------------------------------------------
    let gpu_model = GpuModel::new();
    let gpu_single = gpu_model.run_graph(&graph, 1);
    let gpu_batch = 128;
    let gpu_stream = gpu_model.run_graph(&graph, gpu_batch);
    let gpu = PlatformNumbers {
        batch1_latency: gpu_single.latency,
        throughput: gpu_batch as f64 / gpu_stream.latency.as_secs_f64(),
        energy_per_item: gpu_single.energy,
    };

    (
        Sec6Report {
            model: format!("{dim}x{dim} dense layer + argmax"),
            cim,
            cpu,
            gpu,
            breakdown,
        },
        tel,
    )
}

/// The fabric configuration every CIM measurement in this experiment
/// uses (see the inline rationale in [`run_with_telemetry`]).
fn cim_config() -> FabricConfig {
    FabricConfig {
        dpe: DpeConfig {
            // 4-bit inputs: the latency/energy ratios of §VI concern
            // inference-class precision. Devices are noise-free (accuracy
            // is the ABL-ADC experiment's concern) but the ADC stays at
            // the calibrated 8-bit design point — a 16-bit converter
            // would burn 4^8 more energy per sample and misprice the
            // engine.
            input_bits: 4,
            adc_bits: cim_sim::calib::dpe::ADC_BITS,
            device: cim_crossbar::device::DeviceParams::ideal(cim_sim::calib::dpe::CELL_BITS),
            ..DpeConfig::default()
        },
        ..FabricConfig::default()
    }
}

/// One point of the batch-scaling curve (§VI at batch scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Stream length at this point.
    pub batch: usize,
    /// First-injection to last-completion span.
    pub makespan: SimDuration,
    /// Sustained throughput, items per second.
    pub throughput: f64,
    /// Mean energy per item across the stream.
    pub energy_per_item: Energy,
}

/// Sweeps the CIM fabric's throughput across batch sizes — the batch
/// curve behind the paper's "bandwidth" claim. Each point builds its own
/// device (a sweep point is an independent measurement), so the sweep
/// fans out across `CIM_THREADS` host threads via
/// [`crate::harness::parallel_points`]; results are bit-identical at
/// every thread count.
pub fn run_batch_curve(dim: usize, batches: &[usize]) -> Vec<BatchPoint> {
    run_batch_curve_threads(dim, batches, cim_sim::pool::thread_count())
}

/// [`run_batch_curve`] with an explicit host thread count.
pub fn run_batch_curve_threads(dim: usize, batches: &[usize], threads: usize) -> Vec<BatchPoint> {
    let seeds = SeedTree::new(0x5EC6);
    let (graph, src) = layer_graph(dim, seeds);
    crate::harness::parallel_points_threads(threads, batches, |_, &batch| {
        let mut device = CimDevice::new(cim_config()).expect("default fabric");
        let mut prog = device
            .load_program(&graph, MappingPolicy::LocalityAware)
            .expect("graph fits");
        device.reset_occupancy();
        // Inputs cycle over non-zero values: an all-zero vector would
        // skip every analog phase and misprice the point.
        let stream: Vec<_> = (0..batch)
            .map(|i| HashMap::from([(src, vec![((i % 3) + 1) as f64 / 4.0; dim])]))
            .collect();
        let report = device
            .execute_stream(&mut prog, &stream, &StreamOptions::default())
            .expect("runs");
        BatchPoint {
            batch,
            makespan: report.makespan(),
            throughput: report.throughput().unwrap_or(0.0),
            energy_per_item: if batch > 0 {
                Energy::from_fj(report.energy.as_fj() / batch as u64)
            } else {
                Energy::ZERO
            },
        }
    })
}

/// Renders the §VI comparison table.
pub fn render(r: &Sec6Report) -> String {
    let mut t = TextTable::new(["metric", "CIM (DPE)", "CPU", "GPU", "vs CPU", "vs GPU"]);
    t.row([
        "batch-1 latency".to_owned(),
        r.cim.batch1_latency.to_string(),
        r.cpu.batch1_latency.to_string(),
        r.gpu.batch1_latency.to_string(),
        ratio(r.latency_vs_cpu()),
        ratio(r.latency_vs_gpu()),
    ]);
    t.row([
        "throughput (items/s)".to_owned(),
        format!("{:.3e}", r.cim.throughput),
        format!("{:.3e}", r.cpu.throughput),
        format!("{:.3e}", r.gpu.throughput),
        ratio(r.throughput_vs_cpu()),
        ratio(r.throughput_vs_gpu()),
    ]);
    t.row([
        "energy / item".to_owned(),
        r.cim.energy_per_item.to_string(),
        r.cpu.energy_per_item.to_string(),
        r.gpu.energy_per_item.to_string(),
        ratio(r.power_vs_cpu()),
        ratio(r.power_vs_gpu()),
    ]);
    let mut out = format!("SEC6: Dot Product Engine vs CPU vs GPU ({})\n\n", r.model);
    out.push_str(&t.render());

    let b = &r.breakdown;
    let lat_total = b.total_latency.as_secs_f64();
    let e_total = b.total_energy.as_fj() as f64;
    let mut bt = TextTable::new(["CIM stage", "busy", "busy %", "energy", "energy %"]);
    for s in &b.shares {
        let lat_pct = if lat_total > 0.0 {
            100.0 * s.busy.as_secs_f64() / lat_total
        } else {
            0.0
        };
        let e_pct = if e_total > 0.0 {
            100.0 * s.energy.as_fj() as f64 / e_total
        } else {
            0.0
        };
        bt.row([
            s.component.to_owned(),
            s.busy.to_string(),
            format!("{lat_pct:.1}%"),
            s.energy.to_string(),
            format!("{e_pct:.1}%"),
        ]);
    }
    out.push_str("\nper-component breakdown of the CIM batch-1 point (from telemetry):\n\n");
    out.push_str(&bt.render());
    out.push_str(&format!(
        "\naccounted: latency {} of {} end-to-end, energy {} of {}.\n",
        b.accounted_latency(),
        b.total_latency,
        b.accounted_energy(),
        b.total_energy,
    ));

    out.push_str(&format!(
        "\npaper bands: latency 10-10^4x vs CPU (got {}), 10-10^2x vs GPU (got {});\n\
         throughput 10^3-10^6x vs CPU (got {}), ~GPU (got {});\n\
         power 10^3-10^6x vs CPU (got {}), 10-10^3x vs GPU (got {}).\n",
        ratio(r.latency_vs_cpu()),
        ratio(r.latency_vs_gpu()),
        ratio(r.throughput_vs_cpu()),
        ratio(r.throughput_vs_gpu()),
        ratio(r.power_vs_cpu()),
        ratio(r.power_vs_gpu()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared paper-scale run: the simulation grinds through ~10⁹
    /// analog cell-reads, so every test reads the same report.
    fn report() -> &'static Sec6Report {
        static REPORT: OnceLock<Sec6Report> = OnceLock::new();
        REPORT.get_or_init(|| run(4096, 6))
    }

    #[test]
    fn latency_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.latency_vs_cpu();
        let vs_gpu = r.latency_vs_gpu();
        assert!(
            (10.0..=10_000.0).contains(&vs_cpu),
            "latency vs CPU {vs_cpu} outside 10..10^4"
        );
        assert!(
            (10.0..=200.0).contains(&vs_gpu),
            "latency vs GPU {vs_gpu} outside ~10..10^2"
        );
    }

    #[test]
    fn throughput_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.throughput_vs_cpu();
        let vs_gpu = r.throughput_vs_gpu();
        assert!(
            (1_000.0..=1_000_000.0).contains(&vs_cpu),
            "throughput vs CPU {vs_cpu} outside 10^3..10^6"
        );
        assert!(
            (0.1..=10.0).contains(&vs_gpu),
            "throughput vs GPU {vs_gpu} should be comparable"
        );
    }

    #[test]
    fn power_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.power_vs_cpu();
        let vs_gpu = r.power_vs_gpu();
        assert!(
            (1_000.0..=1_000_000.0).contains(&vs_cpu),
            "power vs CPU {vs_cpu} outside 10^3..10^6"
        );
        assert!(
            (10.0..=1_000.0).contains(&vs_gpu),
            "power vs GPU {vs_gpu} outside 10..10^3"
        );
    }

    #[test]
    fn render_summarizes_bands() {
        let s = render(report());
        assert!(s.contains("paper bands"));
        assert!(s.contains("4096x4096"));
        assert!(s.contains("per-component breakdown"));
        assert!(s.contains("adc"));
    }

    #[test]
    fn batch_curve_scales_throughput_and_is_thread_count_invariant() {
        // Small dim keeps this CI-fast; the curve's shape (throughput
        // grows with batch as the pipeline fills) holds at any scale.
        let batches = [1usize, 4, 16];
        let serial = run_batch_curve_threads(64, &batches, 1);
        assert_eq!(serial.len(), 3);
        assert!(
            serial[2].throughput > serial[0].throughput,
            "pipeline fill must raise sustained throughput: {serial:?}"
        );
        for threads in [2, 8] {
            assert_eq!(
                serial,
                run_batch_curve_threads(64, &batches, threads),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn breakdown_shares_sum_to_end_to_end_totals() {
        let b = &report().breakdown;
        let lat = b.total_latency.as_secs_f64();
        let lat_acc = b.accounted_latency().as_secs_f64();
        assert!(
            (lat_acc - lat).abs() <= 0.01 * lat,
            "latency shares {lat_acc} vs end-to-end {lat}"
        );
        let e = b.total_energy.as_fj() as f64;
        let e_acc = b.accounted_energy().as_fj() as f64;
        assert!(
            (e_acc - e).abs() <= 0.01 * e,
            "energy shares {e_acc} vs end-to-end {e}"
        );
        // The decomposition is non-trivial: the analog stages dominate.
        let share = |name: &str| {
            b.shares
                .iter()
                .find(|s| s.component == name)
                .expect("stage present")
        };
        assert!(share("adc").energy.as_fj() > 0);
        assert!(share("array").energy.as_fj() > 0);
        assert!(share("alu").busy.as_ps() > 0);
    }
}
