//! Power-loss soak: every device in the fleet crashes once mid-stream
//! and the detectable-recovery contract holds end to end through the
//! public API:
//!
//! - no completed request is lost across a crash,
//! - no request executes twice (exact served/voided accounting, every
//!   restore pristine),
//! - double-run determinism — reports *and* telemetry exports are
//!   byte-identical, at 1 and 4 host threads.
//!
//! Run at `CIM_THREADS=1` and `=4` by `ci.sh`; the release-scale
//! version of the same gates is `powerloss_smoke`.

use cim::fabric::fleet::{CimFleet, FleetConfig, FleetEvent, FleetReport};
use cim::fabric::FabricConfig;
use cim::sim::telemetry::TelemetryLevel;
use cim::sim::time::{SimDuration, SimTime};
use cim::sim::{SeedTree, SimMode};
use cim::workloads::serving::standard_request_mix;

const DEVICES: usize = 4;
const REQUESTS: usize = 4_000;
// Hot enough that every device has work in flight essentially always,
// so each crash's dark window catches a live execution.
const RATE_HZ: f64 = 1_000_000.0;

/// One crash per device, staggered across the middle of the stream so
/// every dark window catches arrivals in flight and no two devices are
/// ever dark at once (each restart is 20 µs, the stagger is ~2.5 ms).
fn crash_events() -> Vec<FleetEvent> {
    let span_ps = (REQUESTS as f64 / RATE_HZ * 1e12) as u64;
    (0..DEVICES)
        .map(|d| FleetEvent::PowerLoss {
            at: SimTime::from_ps(span_ps * (2 * d as u64 + 1) / (2 * DEVICES as u64)),
            device: d,
            restart_after: SimDuration::from_us(20),
        })
        .collect()
}

/// Boots a fresh fleet with telemetry on every device, runs the crash
/// campaign, and returns the report plus the concatenated telemetry
/// export.
fn soak() -> (FleetReport, String) {
    let mut fleet = CimFleet::new(
        FleetConfig {
            devices: DEVICES,
            replicas: 2,
            fabric: FabricConfig {
                sim_mode: SimMode::Analytic,
                ..FabricConfig::default()
            },
            keep_outcomes: false,
            ..FleetConfig::default()
        },
        SeedTree::new(0x9055),
    )
    .expect("fleet boots");
    let tels: Vec<_> = (0..DEVICES)
        .map(|d| {
            fleet
                .runtime_mut(d)
                .device_mut()
                .enable_telemetry(TelemetryLevel::Full)
        })
        .collect();
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(0x9055 ^ 0xC1A55));
        fleet
            .register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .expect("mix fits");
    }
    let report = fleet
        .run_open_loop(RATE_HZ, REQUESTS, &crash_events())
        .expect("serves");
    let telemetry: String = tels.iter().map(|t| t.export_jsonl()).collect();
    (report, telemetry)
}

/// The contract's first two clauses at soak scale: crashing every
/// device once loses nothing, double-counts nothing, and every restart
/// restores a pristine volatile image.
#[test]
fn crashing_every_device_once_recovers_everything() {
    let (r, telemetry) = soak();
    assert_eq!(r.offered, REQUESTS);
    assert!(r.zero_lost(), "no completed request lost: {r:?}");
    assert_eq!(r.failed, 0, "crashes are recoverable, not hard faults");
    assert_eq!(r.crashes, DEVICES, "every device crashed exactly once");
    assert_eq!(r.dirty_restores, 0, "every restore pristine");
    assert!(r.failovers >= 1, "the crashes must catch work in flight");
    assert_eq!(
        r.served_total() as usize,
        r.completed + r.timed_out,
        "no double execution"
    );
    assert_eq!(
        r.voided_total() as usize,
        r.failovers,
        "each failover voids exactly one attempt"
    );
    // Every device served after its restart (the campaign spans the
    // whole stream, so a device that never came back would starve).
    for (d, per) in r.per_device.iter().enumerate() {
        assert!(per.served > 0, "device {d} never served: {r:?}");
    }
    assert!(!telemetry.is_empty());
}

/// The contract's third clause: double runs are bit-identical, report
/// and telemetry export alike, at 1 and at 4 host threads.
#[test]
fn crash_soaks_are_byte_identical_across_runs_and_threads() {
    let serial = cim::sim::pool::parallel_map_threads(1, &[0u8, 1], |_, _| soak());
    let parallel = cim::sim::pool::parallel_map_threads(4, &[0u8, 1], |_, _| soak());
    let (first_report, first_tel) = &serial[0];
    for (r, t) in serial.iter().chain(&parallel) {
        assert_eq!(r, first_report, "crash recovery must be deterministic");
        assert_eq!(
            t, first_tel,
            "telemetry must be byte-identical across double runs"
        );
    }
}
