//! 2-D mesh topology and routing.
//!
//! The CIM device organizes tiles in a 2-D mesh (paper Fig 5). Routing is
//! dimension-ordered (XY) by default — deadlock-free on a mesh — with a
//! YX fallback used when a link on the XY path has failed (§IV.B
//! failover, §V.A recovery).

use crate::error::{NocError, Result};
use crate::packet::NodeId;
use std::collections::HashSet;

/// A directed link between two adjacent mesh nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node (always a mesh neighbour of `from`).
    pub to: NodeId,
}

impl Link {
    /// Creates a link; the caller asserts adjacency.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Link { from, to }
    }
}

/// A rectangular 2-D mesh.
///
/// # Examples
///
/// ```
/// use cim_noc::packet::NodeId;
/// use cim_noc::topology::Mesh;
///
/// let mesh = Mesh::new(4, 4).unwrap();
/// let path = mesh.route_xy(NodeId::new(0, 0), NodeId::new(2, 1)).unwrap();
/// // XY: travel X first, then Y.
/// assert_eq!(path, vec![
///     NodeId::new(0, 0),
///     NodeId::new(1, 0),
///     NodeId::new(2, 0),
///     NodeId::new(2, 1),
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    failed_links: HashSet<Link>,
}

impl Mesh {
    /// Creates a mesh of `width × height` nodes.
    ///
    /// Returns `None` if either dimension is zero or exceeds `u16::MAX`.
    pub fn new(width: usize, height: usize) -> Option<Self> {
        if width == 0 || height == 0 || width > u16::MAX as usize || height > u16::MAX as usize {
            return None;
        }
        Some(Mesh {
            width,
            height,
            failed_links: HashSet::new(),
        })
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// Whether `node` is inside the mesh.
    pub fn contains(&self, node: NodeId) -> bool {
        (node.x as usize) < self.width && (node.y as usize) < self.height
    }

    /// Validates that a node is inside the mesh.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::UnknownNode`] otherwise.
    pub fn check(&self, node: NodeId) -> Result<()> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(NocError::UnknownNode {
                node,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Iterates over all node ids in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.height)
            .flat_map(move |y| (0..self.width).map(move |x| NodeId::new(x as u16, y as u16)))
    }

    /// Marks a directed link as failed (and its reverse, matching how a
    /// physical link fault takes out both directions).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.failed_links.insert(Link::new(a, b));
        self.failed_links.insert(Link::new(b, a));
    }

    /// Restores a previously failed link (both directions).
    pub fn repair_link(&mut self, a: NodeId, b: NodeId) {
        self.failed_links.remove(&Link::new(a, b));
        self.failed_links.remove(&Link::new(b, a));
    }

    /// Whether the directed link is currently failed.
    pub fn link_failed(&self, from: NodeId, to: NodeId) -> bool {
        self.failed_links.contains(&Link::new(from, to))
    }

    /// Number of failed (undirected) links.
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.len() / 2
    }

    fn walk(src: NodeId, dst: NodeId, x_first: bool) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut cur = src;
        let advance_x = |cur: &mut NodeId, path: &mut Vec<NodeId>| {
            while cur.x != dst.x {
                cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
                path.push(*cur);
            }
        };
        let advance_y = |cur: &mut NodeId, path: &mut Vec<NodeId>| {
            while cur.y != dst.y {
                cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
                path.push(*cur);
            }
        };
        if x_first {
            advance_x(&mut cur, &mut path);
            advance_y(&mut cur, &mut path);
        } else {
            advance_y(&mut cur, &mut path);
            advance_x(&mut cur, &mut path);
        }
        path
    }

    fn path_alive(&self, path: &[NodeId]) -> bool {
        path.windows(2).all(|w| !self.link_failed(w[0], w[1]))
    }

    /// Dimension-ordered XY route, ignoring link failures.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::UnknownNode`] for out-of-mesh endpoints.
    pub fn route_xy(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>> {
        self.check(src)?;
        self.check(dst)?;
        Ok(Self::walk(src, dst, true))
    }

    /// Fault-aware route: XY if alive, else YX, else a breadth-first
    /// search over live links.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NoRoute`] when the destination is unreachable
    /// over live links, or [`NocError::UnknownNode`] for bad endpoints.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>> {
        self.check(src)?;
        self.check(dst)?;
        let xy = Self::walk(src, dst, true);
        if self.path_alive(&xy) {
            return Ok(xy);
        }
        let yx = Self::walk(src, dst, false);
        if self.path_alive(&yx) {
            return Ok(yx);
        }
        self.bfs(src, dst).ok_or(NocError::NoRoute { src, dst })
    }

    fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(4);
        if n.x > 0 {
            out.push(NodeId::new(n.x - 1, n.y));
        }
        if (n.x as usize) + 1 < self.width {
            out.push(NodeId::new(n.x + 1, n.y));
        }
        if n.y > 0 {
            out.push(NodeId::new(n.x, n.y - 1));
        }
        if (n.y as usize) + 1 < self.height {
            out.push(NodeId::new(n.x, n.y + 1));
        }
        out
    }

    fn bfs(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        use std::collections::{HashMap, VecDeque};
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([src]);
        let mut seen = HashSet::from([src]);
        while let Some(n) = queue.pop_front() {
            if n == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for nb in self.neighbors(n) {
                if !seen.contains(&nb) && !self.link_failed(n, nb) {
                    seen.insert(nb);
                    prev.insert(nb, n);
                    queue.push_back(nb);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: u16, y: u16) -> NodeId {
        NodeId::new(x, y)
    }

    #[test]
    fn new_rejects_degenerate_meshes() {
        assert!(Mesh::new(0, 4).is_none());
        assert!(Mesh::new(4, 0).is_none());
        assert!(Mesh::new(4, 4).is_some());
    }

    #[test]
    fn xy_route_is_minimal() {
        let mesh = Mesh::new(8, 8).unwrap();
        let path = mesh.route_xy(n(1, 1), n(5, 6)).unwrap();
        assert_eq!(path.len() as u32 - 1, n(1, 1).manhattan(n(5, 6)));
        assert_eq!(*path.first().unwrap(), n(1, 1));
        assert_eq!(*path.last().unwrap(), n(5, 6));
        // Adjacent steps only.
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let mesh = Mesh::new(4, 4).unwrap();
        assert_eq!(mesh.route(n(2, 2), n(2, 2)).unwrap(), vec![n(2, 2)]);
    }

    #[test]
    fn out_of_mesh_is_an_error() {
        let mesh = Mesh::new(2, 2).unwrap();
        assert!(matches!(
            mesh.route(n(0, 0), n(5, 5)),
            Err(NocError::UnknownNode { .. })
        ));
    }

    #[test]
    fn failed_link_falls_back_to_yx() {
        let mut mesh = Mesh::new(4, 4).unwrap();
        // Break the first hop of the XY path (0,0)->(1,0).
        mesh.fail_link(n(0, 0), n(1, 0));
        let path = mesh.route(n(0, 0), n(2, 2)).unwrap();
        assert_eq!(path[1], n(0, 1), "YX goes vertical first");
        assert_eq!(*path.last().unwrap(), n(2, 2));
        assert!(mesh.link_failed(n(0, 0), n(1, 0)));
        assert!(mesh.link_failed(n(1, 0), n(0, 0)), "both directions fail");
    }

    #[test]
    fn bfs_finds_detour_when_both_dimension_orders_fail() {
        let mut mesh = Mesh::new(3, 3).unwrap();
        // Cut the straight corridor between (0,0) and (2,0):
        mesh.fail_link(n(1, 0), n(2, 0)); // breaks XY
        mesh.fail_link(n(0, 0), n(0, 1)); // breaks YX's first hop? YX for (2,0) is x-only... same row
                                          // For a same-row destination XY == YX; cut forces a detour.
        let path = mesh.route(n(0, 0), n(2, 0)).unwrap();
        assert_eq!(*path.last().unwrap(), n(2, 0));
        assert!(path.len() > 3, "detour is longer than the direct path");
        assert!(path.windows(2).all(|w| !mesh.link_failed(w[0], w[1])));
    }

    #[test]
    fn unreachable_destination_reports_no_route() {
        let mut mesh = Mesh::new(2, 1).unwrap();
        mesh.fail_link(n(0, 0), n(1, 0));
        assert_eq!(
            mesh.route(n(0, 0), n(1, 0)),
            Err(NocError::NoRoute {
                src: n(0, 0),
                dst: n(1, 0)
            })
        );
    }

    #[test]
    fn repair_restores_routing() {
        let mut mesh = Mesh::new(2, 1).unwrap();
        mesh.fail_link(n(0, 0), n(1, 0));
        assert!(mesh.route(n(0, 0), n(1, 0)).is_err());
        mesh.repair_link(n(0, 0), n(1, 0));
        assert!(mesh.route(n(0, 0), n(1, 0)).is_ok());
        assert_eq!(mesh.failed_link_count(), 0);
    }

    #[test]
    fn nodes_enumerates_all() {
        let mesh = Mesh::new(3, 2).unwrap();
        let all: Vec<NodeId> = mesh.nodes().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], n(0, 0));
        assert_eq!(all[5], n(2, 1));
    }
}
