//! Optimization workload (Table 2 row "Optimization problem (resource
//! allocation)").
//!
//! Simulated annealing on a 0/1 knapsack: a tiny state mutated through a
//! long, strictly sequential accept/reject chain. High compute intensity,
//! no data to speak of, no parallelism — the paper's canonical
//! "keep it on a CPU" workload.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::Workload;
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// Simulated-annealing knapsack.
#[derive(Debug, Clone)]
pub struct Annealing {
    /// Items to pack.
    pub items: usize,
    /// Annealing steps.
    pub steps: u32,
    /// Capacity as a fraction of total weight.
    pub capacity_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Annealing {
    /// The standard TAB2 size: 300 items, 70 000 steps.
    fn default() -> Self {
        Annealing {
            items: 300,
            steps: 70_000,
            capacity_fraction: 0.4,
            seed: 43,
        }
    }
}

impl Annealing {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        Annealing {
            items: 30,
            steps: 2_000,
            capacity_fraction: 0.4,
            seed: 43,
        }
    }

    /// Runs the annealer; returns `(best_value, greedy_value)` so the
    /// improvement over a greedy baseline is observable.
    pub fn run(&self) -> (f64, f64) {
        let mut rng = SeedTree::new(self.seed).rng("anneal");
        let values: Vec<f64> = (0..self.items).map(|_| rng.gen_range(1.0..100.0)).collect();
        let weights: Vec<f64> = (0..self.items).map(|_| rng.gen_range(1.0..50.0)).collect();
        let capacity: f64 = weights.iter().sum::<f64>() * self.capacity_fraction;

        // Greedy baseline by density.
        let mut order: Vec<usize> = (0..self.items).collect();
        order.sort_by(|&a, &b| {
            (values[b] / weights[b])
                .partial_cmp(&(values[a] / weights[a]))
                .expect("finite")
        });
        let mut greedy_value = 0.0;
        let mut greedy_weight = 0.0;
        for &i in &order {
            if greedy_weight + weights[i] <= capacity {
                greedy_weight += weights[i];
                greedy_value += values[i];
            }
        }

        // Annealing from an empty knapsack.
        let mut taken = vec![false; self.items];
        let (mut value, mut weight) = (0.0f64, 0.0f64);
        let (mut best, mut temp) = (0.0f64, 50.0f64);
        let cooling = 0.9999f64;
        for _ in 0..self.steps {
            let i = rng.gen_range(0..self.items);
            let (dv, dw) = if taken[i] {
                (-values[i], -weights[i])
            } else {
                (values[i], weights[i])
            };
            let feasible = weight + dw <= capacity;
            let accept = feasible && (dv > 0.0 || rng.gen::<f64>() < (dv / temp).exp());
            if accept {
                taken[i] = !taken[i];
                value += dv;
                weight += dw;
                best = best.max(value);
            }
            temp *= cooling;
        }
        (best, greedy_value)
    }
}

impl Workload for Annealing {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::Optimization
    }

    fn characterize(&self) -> Characteristics {
        let (best, greedy) = self.run();
        std::hint::black_box((best, greedy));
        let steps = u64::from(self.steps);
        // Per step: delta eval, feasibility, Metropolis test, cooling ≈ 8.
        let flops = steps * 8;
        let footprint = (self.items * 17) as u64; // values + weights + taken
        let moved = steps * 26;
        // Strict step-to-step dependency.
        let comm = steps * 8;
        let span = flops;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn annealing_finds_decent_solutions() {
        let (best, greedy) = Annealing::default().run();
        assert!(best > 0.0);
        assert!(greedy > 0.0);
        // SA should reach at least 80 % of the strong greedy baseline.
        assert!(best >= greedy * 0.8, "best {best} vs greedy {greedy}");
    }

    #[test]
    fn small_instance_runs_fast_and_deterministically() {
        let a = Annealing::small().run();
        let b = Annealing::small().run();
        assert_eq!(a, b);
    }

    #[test]
    fn buckets_are_serial_and_data_poor() {
        let c = Annealing::default().characterize();
        let l = c.bucketize();
        assert_eq!(l.size, Level::Low);
        assert_eq!(l.bandwidth, Level::Low);
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.parallelism, Level::Low);
        assert_eq!(l.communication, Level::High);
    }
}
