//! XOVER: model size vs platform advantage (extension experiment).
fn main() {
    let points = cim_bench::experiments::crossover::run(&[128, 256, 512, 1024, 2048, 4096]);
    print!("{}", cim_bench::experiments::crossover::render(&points));
}
