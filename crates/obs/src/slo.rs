//! Per-tenant SLOs with multi-window burn-rate alerting.
//!
//! The engine follows the SRE playbook, scaled to simulated-time serving
//! runs: each tenant declares a latency target, an availability budget
//! and (optionally) zero-loss; every finished request is classified
//! good/bad, and each alert rule compares the *burn rate* — bad fraction
//! divided by the error budget — over a long and a short sliding window.
//! Both windows must exceed the threshold for the rule to fire, which
//! keeps alerts fast during real incidents (short window reacts) but
//! quiet on old noise (long window forgets). Alerts fire on the rising
//! edge only and carry the sim time of the observation that crossed the
//! line, so a given seed pages at the same deterministic instant on any
//! host.
//!
//! [`AlertEvent`] is also the vocabulary for *synthetic* timeline
//! entries: chaos triage injects an `invariant/<name>` page at a
//! violating run's end and one `power_loss` ticket per scheduled crash
//! (spanning the restart window), so a replay file's alert timeline
//! shows when the run went bad and when each device was dark. Synthetic
//! events use the same JSONL round-trip as burn-rate alerts.

use cim_sim::telemetry::{json_f64, json_string};
use cim_sim::time::{SimDuration, SimTime};

/// Alert urgency tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertSeverity {
    /// Wake a human: the budget is burning fast enough to exhaust within
    /// the incident window.
    Page,
    /// File a ticket: slow burn that needs attention, not adrenaline.
    Ticket,
}

impl AlertSeverity {
    /// Stable lowercase name used in exports and replay files.
    pub fn name(&self) -> &'static str {
        match self {
            AlertSeverity::Page => "page",
            AlertSeverity::Ticket => "ticket",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "page" => Some(AlertSeverity::Page),
            "ticket" => Some(AlertSeverity::Ticket),
            _ => None,
        }
    }
}

/// One tenant's service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Tenant (service-class) name alerts are attributed to.
    pub tenant: String,
    /// A request is *good* only if it completes within this latency.
    pub latency_target: SimDuration,
    /// Availability objective in `(0, 1)`; the error budget is
    /// `1 - availability`.
    pub availability: f64,
    /// When set, any outright-lost request fires an immediate
    /// page-severity `zero_loss` alert, bypassing the windows.
    pub zero_loss: bool,
}

impl SloSpec {
    /// The default serving SLO for a tenant: its deadline as the latency
    /// target, 99% availability, zero-loss.
    pub fn for_tenant(tenant: &str, deadline: SimDuration) -> Self {
        SloSpec {
            tenant: tenant.to_owned(),
            latency_target: deadline,
            availability: 0.99,
            zero_loss: true,
        }
    }
}

/// One multi-window burn-rate alert rule, applied to every tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRateRule {
    /// Rule name (appears as `metric:"alert/<name>"` in exports).
    pub name: String,
    /// Severity of the alerts this rule emits.
    pub severity: AlertSeverity,
    /// Minimum burn rate (bad fraction ÷ error budget) over *both*
    /// windows for the rule to fire.
    pub burn_threshold: f64,
    /// The long window: forgets slowly, keeps the alert honest.
    pub long_window: SimDuration,
    /// The short window: reacts quickly once trouble starts.
    pub short_window: SimDuration,
    /// Minimum finished requests inside the long window before the rule
    /// may fire — suppresses single-request noise at run start.
    pub min_count: usize,
}

impl BurnRateRule {
    /// The default rule pair, scaled from the SRE 1h/5m + 6h/30m ladder
    /// down to serving-sim horizons (a few ms of sim time): a fast page
    /// at 14.4× burn over 1 ms/250 µs and a slow ticket at 6× over
    /// 3 ms/750 µs.
    pub fn default_rules() -> Vec<BurnRateRule> {
        vec![
            BurnRateRule {
                name: "page_burn".to_owned(),
                severity: AlertSeverity::Page,
                burn_threshold: 14.4,
                long_window: SimDuration::from_us(1000),
                short_window: SimDuration::from_us(250),
                min_count: 24,
            },
            BurnRateRule {
                name: "ticket_burn".to_owned(),
                severity: AlertSeverity::Ticket,
                burn_threshold: 6.0,
                long_window: SimDuration::from_us(3000),
                short_window: SimDuration::from_us(750),
                min_count: 48,
            },
        ]
    }
}

/// A fired alert, stamped with the sim time of the observation that
/// crossed the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Sim time the rule started firing.
    pub at: SimTime,
    /// Tenant the burn is attributed to.
    pub tenant: String,
    /// Rule name (`"zero_loss"` for the loss bypass, or an
    /// `invariant/<name>` synthetic for chaos triage).
    pub rule: String,
    /// Urgency tier.
    pub severity: AlertSeverity,
    /// Long-window burn rate at firing time (`1.0` for bypass alerts).
    pub burn_rate: f64,
    /// The long window the burn was measured over (zero for bypasses).
    pub window: SimDuration,
}

impl AlertEvent {
    /// Parses one `kind:"alert"` JSON line back into the event — the
    /// exact inverse of [`AlertEvent::to_jsonl_line`], used by chaos
    /// replay files so triage timelines round-trip byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse_jsonl_line(line: &str) -> Result<AlertEvent, String> {
        use cim_sim::json::Json;
        let v = cim_sim::json::parse(line)?;
        let metric = v
            .get("metric")
            .and_then(Json::as_str)
            .ok_or("alert line missing metric")?;
        let rule = metric
            .strip_prefix("alert/")
            .ok_or("alert metric must start with \"alert/\"")?
            .to_owned();
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("alert line missing numeric \"{key}\""))
        };
        let severity = v
            .get("severity")
            .and_then(Json::as_str)
            .and_then(AlertSeverity::from_name)
            .ok_or("alert line missing page/ticket severity")?;
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("alert line missing tenant")?
            .to_owned();
        Ok(AlertEvent {
            at: SimTime::from_ps(num("t_ps")? as u64),
            tenant,
            rule,
            severity,
            burn_rate: num("value")?,
            window: SimDuration::from_ps(num("window_ps")? as u64),
        })
    }

    /// Renders the alert as one `kind:"alert"` JSON line (no trailing
    /// newline), matching the schema
    /// [`cim_sim::telemetry::validate_jsonl_line`] enforces.
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"component\":\"obs/slo\",\"metric\":{},\"kind\":\"alert\",\"value\":{},\
             \"t_ps\":{},\"tenant\":{},\"severity\":{},\"window_ps\":{}}}",
            json_string(&format!("alert/{}", self.rule)),
            json_f64(self.burn_rate),
            self.at.as_ps(),
            json_string(&self.tenant),
            json_string(self.severity.name()),
            self.window.as_ps(),
        )
    }
}

/// One classified observation in a tenant's sliding history.
#[derive(Debug, Clone, Copy)]
struct Obs {
    at: SimTime,
    good: bool,
}

/// Evaluates SLO specs over sliding windows and accumulates alerts.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    rules: Vec<BurnRateRule>,
    /// Per-tenant observation history (the full run: serving horizons
    /// are short enough that trimming would save nothing and cost
    /// determinism headaches with out-of-order finish times).
    history: Vec<Vec<Obs>>,
    /// Per-tenant, per-rule firing state for edge-triggered alerts.
    firing: Vec<Vec<bool>>,
    /// Per-tenant zero-loss tripwire.
    lost_seen: Vec<bool>,
    alerts: Vec<AlertEvent>,
}

impl SloEngine {
    /// An engine for the given tenant specs and rules.
    pub fn new(specs: Vec<SloSpec>, rules: Vec<BurnRateRule>) -> Self {
        let n = specs.len();
        let r = rules.len();
        SloEngine {
            specs,
            rules,
            history: vec![Vec::new(); n],
            firing: vec![vec![false; r]; n],
            lost_seen: vec![false; n],
            alerts: Vec::new(),
        }
    }

    /// Whether `latency` meets tenant `i`'s latency target.
    pub fn within_target(&self, tenant: usize, latency: SimDuration) -> bool {
        latency <= self.specs[tenant].latency_target
    }

    /// Feeds one finished request: `good` per the spec's latency/
    /// availability terms, `lost` when the request failed outright.
    /// Evaluates every rule for the tenant and records rising-edge
    /// alerts.
    pub fn observe(&mut self, tenant: usize, at: SimTime, good: bool, lost: bool) {
        let spec = &self.specs[tenant];
        if lost && spec.zero_loss && !self.lost_seen[tenant] {
            self.lost_seen[tenant] = true;
            self.alerts.push(AlertEvent {
                at,
                tenant: spec.tenant.clone(),
                rule: "zero_loss".to_owned(),
                severity: AlertSeverity::Page,
                burn_rate: 1.0,
                window: SimDuration::ZERO,
            });
        }
        self.history[tenant].push(Obs { at, good });
        let budget = (1.0 - spec.availability).max(1e-9);
        for r in 0..self.rules.len() {
            let rule = &self.rules[r];
            let (long_n, long_bad) = self.window_counts(tenant, at, rule.long_window);
            let (short_n, short_bad) = self.window_counts(tenant, at, rule.short_window);
            let burn = |bad: usize, n: usize| {
                if n == 0 {
                    0.0
                } else {
                    (bad as f64 / n as f64) / budget
                }
            };
            let long_burn = burn(long_bad, long_n);
            let now_firing = long_n >= rule.min_count
                && short_n > 0
                && long_burn >= rule.burn_threshold
                && burn(short_bad, short_n) >= rule.burn_threshold;
            if now_firing && !self.firing[tenant][r] {
                self.alerts.push(AlertEvent {
                    at,
                    tenant: self.specs[tenant].tenant.clone(),
                    rule: self.rules[r].name.clone(),
                    severity: self.rules[r].severity,
                    burn_rate: long_burn,
                    window: self.rules[r].long_window,
                });
            }
            self.firing[tenant][r] = now_firing;
        }
    }

    /// (total, bad) observations for `tenant` with time in
    /// `(at - window, at]`. A full scan: finish times are only roughly
    /// ordered (a later arrival can finish earlier), and histories are
    /// short, so scanning beats maintaining a sorted structure.
    fn window_counts(&self, tenant: usize, at: SimTime, window: SimDuration) -> (usize, usize) {
        let cutoff = SimTime::from_ps(at.as_ps().saturating_sub(window.as_ps()));
        let mut n = 0;
        let mut bad = 0;
        for o in &self.history[tenant] {
            if o.at > cutoff && o.at <= at {
                n += 1;
                if !o.good {
                    bad += 1;
                }
            }
        }
        (n, bad)
    }

    /// Alerts fired so far, in firing order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Consumes the engine, yielding its alert timeline sorted by sim
    /// time. Observations are fed in arrival order but stamped with
    /// completion times, so raw firing order is not time order; the
    /// stable sort (ties keep firing order) makes the result a true
    /// timeline while staying deterministic.
    pub fn into_alerts(mut self) -> Vec<AlertEvent> {
        self.alerts.sort_by_key(|a| a.at);
        self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::telemetry::validate_jsonl_line;

    fn engine_one_tenant() -> SloEngine {
        SloEngine::new(
            vec![SloSpec::for_tenant("t", SimDuration::from_us(20))],
            BurnRateRule::default_rules(),
        )
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let mut e = engine_one_tenant();
        for i in 0..200u64 {
            e.observe(0, SimTime::from_ns(i * 10_000), true, false);
        }
        assert!(e.alerts().is_empty());
    }

    #[test]
    fn sustained_burn_pages_once_at_a_deterministic_time() {
        let run = || {
            let mut e = engine_one_tenant();
            // 10 µs inter-arrivals, everything bad: burn = 1/0.01 = 100×.
            for i in 0..100u64 {
                e.observe(0, SimTime::from_ns(i * 10_000), false, false);
            }
            e.into_alerts()
        };
        let alerts = run();
        let page: Vec<_> = alerts
            .iter()
            .filter(|a| a.severity == AlertSeverity::Page)
            .collect();
        assert_eq!(page.len(), 1, "edge-triggered: one page, not one per obs");
        // min_count=24 with the half-open window `(at-W, at]` (t=0 falls
        // outside once the cutoff saturates) → index 24 crosses the line.
        assert_eq!(page[0].at, SimTime::from_ns(24 * 10_000));
        assert!(page[0].burn_rate > 14.4);
        assert_eq!(run(), alerts, "double runs agree exactly");
    }

    #[test]
    fn short_window_recovery_resets_the_edge() {
        let mut e = engine_one_tenant();
        let mut t = 0u64;
        let mut step = |e: &mut SloEngine, good: bool| {
            e.observe(0, SimTime::from_ns(t), good, false);
            t += 10_000;
        };
        for _ in 0..30 {
            step(&mut e, false);
        }
        // Recover: the short window (250 µs / 25 obs) drains of badness.
        for _ in 0..60 {
            step(&mut e, true);
        }
        // Burn again: a second rising edge must emit a second page.
        for _ in 0..40 {
            step(&mut e, false);
        }
        let pages = e
            .alerts()
            .iter()
            .filter(|a| a.severity == AlertSeverity::Page && a.rule == "page_burn")
            .count();
        assert_eq!(pages, 2);
    }

    #[test]
    fn zero_loss_fires_immediately_and_once() {
        let mut e = engine_one_tenant();
        e.observe(0, SimTime::from_ns(5), false, true);
        e.observe(0, SimTime::from_ns(6), false, true);
        let zl: Vec<_> = e
            .alerts()
            .iter()
            .filter(|a| a.rule == "zero_loss")
            .collect();
        assert_eq!(zl.len(), 1);
        assert_eq!(zl[0].at, SimTime::from_ns(5));
        assert_eq!(zl[0].severity, AlertSeverity::Page);
    }

    #[test]
    fn alert_lines_validate_and_severity_round_trips() {
        let a = AlertEvent {
            at: SimTime::from_ns(42),
            tenant: "interactive".to_owned(),
            rule: "page_burn".to_owned(),
            severity: AlertSeverity::Page,
            burn_rate: 33.25,
            window: SimDuration::from_us(1000),
        };
        validate_jsonl_line(&a.to_jsonl_line()).expect("alert schema");
        for s in [AlertSeverity::Page, AlertSeverity::Ticket] {
            assert_eq!(AlertSeverity::from_name(s.name()), Some(s));
        }
        assert_eq!(AlertSeverity::from_name("sev1"), None);
        // Exact round-trip: parse(render(a)) == a and re-render is
        // byte-identical (the chaos replay contract).
        let line = a.to_jsonl_line();
        let back = AlertEvent::parse_jsonl_line(&line).expect("parses");
        assert_eq!(back, a);
        assert_eq!(back.to_jsonl_line(), line);
        assert!(AlertEvent::parse_jsonl_line("{\"metric\":\"event/x\"}").is_err());
    }
}
