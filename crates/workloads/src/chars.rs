//! Workload characterization: measured counters → Table 2 levels →
//! CIM suitability.
//!
//! Every workload kernel in this crate runs real code with counters for
//! arithmetic, memory footprint, memory traffic, communication and
//! critical path. [`Characteristics::bucketize`] maps the counters onto
//! the paper's low/medium/high vocabulary, and [`cim_suitability`]
//! reproduces the appendix's reasoning ("CIM benefits from applications
//! characterized by low computation, high data, high operational
//! intensity, low communication, and high parallelism") as an executable
//! classifier.
//!
//! Applied to the paper's own Table 2 characteristic levels, the
//! classifier reproduces the paper's CIM column for 12 of 14 rows; the
//! two misses (KVS and FEM) are rows where Table 2 itself rates
//! identical-or-dominated characteristic vectors differently, so no
//! function of the six characteristics can match them (see
//! EXPERIMENTS.md).

use crate::spec::Level;

/// Measured counters from one instrumented workload run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Characteristics {
    /// Arithmetic operations executed.
    pub flops: u64,
    /// Unique bytes of data touched (working-set size).
    pub footprint_bytes: u64,
    /// Total bytes loaded + stored.
    pub bytes_moved: u64,
    /// Bytes exchanged between dependent iterations / partitions.
    pub comm_bytes: u64,
    /// Longest dependent chain of arithmetic (span).
    pub critical_path_flops: u64,
}

impl Characteristics {
    /// FLOPs per byte of memory traffic.
    pub fn operational_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes_moved as f64
        }
    }

    /// Available parallelism: total work over span.
    pub fn parallelism(&self) -> f64 {
        if self.critical_path_flops == 0 {
            1.0
        } else {
            self.flops as f64 / self.critical_path_flops as f64
        }
    }

    /// Arithmetic per byte of *resident* data — the appendix's "compute
    /// intensive" axis, which contrasts with data intensity (a workload
    /// that grinds on a small state is compute-intensive even if its
    /// absolute FLOP count is modest).
    pub fn compute_intensity(&self) -> f64 {
        if self.footprint_bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.footprint_bytes as f64
        }
    }

    /// Iterative-communication pressure: bytes exchanged between
    /// dependent steps, relative to the resident data they synchronize.
    pub fn comm_pressure(&self) -> f64 {
        if self.footprint_bytes == 0 {
            0.0
        } else {
            self.comm_bytes as f64 / self.footprint_bytes as f64
        }
    }

    /// Maps the counters onto Table 2's qualitative vocabulary.
    ///
    /// Thresholds are fixed for the standard workload sizes used by the
    /// TAB2 experiment (documented per field below).
    pub fn bucketize(&self) -> MeasuredLevels {
        // Compute intensity: flops per resident byte.
        let compute = threshold(self.compute_intensity(), 1.0, 10.0);
        // Bandwidth demand: absolute traffic volume.
        let bandwidth = threshold(self.bytes_moved as f64, 2e6, 2e7);
        // Data size: working-set footprint.
        let size = threshold(self.footprint_bytes as f64, 2e5, 6e6);
        // Operational intensity in flop/byte of traffic.
        let op_intensity = threshold(self.operational_intensity(), 0.26, 1.8);
        // Iterative communication relative to resident state.
        let communication = threshold(self.comm_pressure(), 0.05, 0.25);
        // Work/span parallelism.
        let parallelism = threshold(self.parallelism(), 8.0, 64.0);
        MeasuredLevels {
            compute,
            bandwidth,
            size,
            op_intensity,
            communication,
            parallelism,
        }
    }
}

fn threshold(value: f64, medium: f64, high: f64) -> Level {
    if value >= high {
        Level::High
    } else if value >= medium {
        Level::Medium
    } else {
        Level::Low
    }
}

/// The six Table 2 characteristics as levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredLevels {
    /// Compute intensity.
    pub compute: Level,
    /// Bandwidth demand.
    pub bandwidth: Level,
    /// Data size.
    pub size: Level,
    /// Operational intensity.
    pub op_intensity: Level,
    /// Iterative communication.
    pub communication: Level,
    /// Parallelism.
    pub parallelism: Level,
}

/// The appendix's suitability reasoning as a rule-based classifier.
pub fn cim_suitability(l: MeasuredLevels) -> Level {
    use Level::{High, Low, Medium};
    // Heavy compute plus heavy iterative communication is Von Neumann
    // territory: the appendix rates every such row low.
    if l.compute == High && l.communication == High {
        return Low;
    }
    // Serial applications cannot exploit the sea of micro-units.
    if l.parallelism == Low {
        return Low;
    }
    // Nothing to keep stationary: no reason to compute in memory.
    if l.size == Low && l.bandwidth == Low {
        return Low;
    }
    // Data-rich, highly parallel, communication-tolerable: the sweet spot.
    let data_rich = l.size >= Medium && l.bandwidth >= Medium;
    if data_rich && l.parallelism == High && l.communication <= Medium {
        return High;
    }
    // Data-bound analytics where compute is light: the compute comes to
    // the data even when iteration is chatty (graph problems).
    if l.compute == Low && l.size == High && l.parallelism == High {
        return High;
    }
    if data_rich && l.parallelism >= Medium {
        return Medium;
    }
    Low
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_table, Level, WorkloadClass};

    /// Feed the paper's own characteristic levels through the classifier
    /// and compare with the paper's CIM column.
    #[test]
    fn classifier_reproduces_paper_cim_column() {
        let mut agree = 0;
        let mut misses = Vec::new();
        for row in paper_table() {
            let levels = MeasuredLevels {
                compute: row.compute,
                bandwidth: row.bandwidth,
                size: row.size,
                op_intensity: row.op_intensity,
                communication: row.communication,
                parallelism: row.parallelism,
            };
            let predicted = cim_suitability(levels);
            if predicted == row.cim {
                agree += 1;
            } else {
                misses.push((row.class, predicted, row.cim));
            }
        }
        assert_eq!(
            agree, 12,
            "expected exactly the two Table-2-internal inconsistencies, got misses {misses:?}"
        );
        let missed: Vec<WorkloadClass> = misses.iter().map(|m| m.0).collect();
        assert!(missed.contains(&WorkloadClass::KeyValueStores));
        assert!(missed.contains(&WorkloadClass::FiniteElementModelling));
    }

    #[test]
    fn derived_metrics() {
        let c = Characteristics {
            flops: 1000,
            footprint_bytes: 100,
            bytes_moved: 500,
            comm_bytes: 50,
            critical_path_flops: 10,
        };
        assert!((c.operational_intensity() - 2.0).abs() < 1e-12);
        assert!((c.parallelism() - 100.0).abs() < 1e-12);
        assert!((c.comm_pressure() - 0.5).abs() < 1e-12);
        assert!((c.compute_intensity() - 10.0).abs() < 1e-12);
        let zero = Characteristics::default();
        assert_eq!(zero.operational_intensity(), 0.0);
        assert_eq!(zero.parallelism(), 1.0);
        assert_eq!(zero.comm_pressure(), 0.0);
        assert_eq!(zero.compute_intensity(), 0.0);
    }

    #[test]
    fn bucketize_thresholds() {
        let c = Characteristics {
            flops: 100_000_000,
            footprint_bytes: 10_000_000,
            bytes_moved: 40_000_000,
            comm_bytes: 0,
            critical_path_flops: 1_000,
        };
        let l = c.bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.bandwidth, Level::High);
        assert_eq!(l.communication, Level::Low);
        assert_eq!(l.parallelism, Level::High);
        assert_eq!(l.op_intensity, Level::High);
    }

    #[test]
    fn suitability_anchor_cases() {
        use Level::{High, Low, Medium};
        // NN-like: everything favourable.
        let nn = MeasuredLevels {
            compute: High,
            bandwidth: High,
            size: High,
            op_intensity: High,
            communication: Low,
            parallelism: High,
        };
        assert_eq!(cim_suitability(nn), High);
        // Optimization-like: small data, serial.
        let opt = MeasuredLevels {
            compute: High,
            bandwidth: Low,
            size: Low,
            op_intensity: High,
            communication: High,
            parallelism: Low,
        };
        assert_eq!(cim_suitability(opt), Low);
        // DB-transactions-like: medium everything, chatty.
        let dbt = MeasuredLevels {
            compute: Medium,
            bandwidth: High,
            size: Medium,
            op_intensity: High,
            communication: High,
            parallelism: Medium,
        };
        assert_eq!(cim_suitability(dbt), Medium);
    }
}
