//! Seed → schedule expansion.
//!
//! Every campaign seed deterministically expands into one
//! [`ChaosSchedule`] through the workspace [`SeedTree`] — the same seed
//! always yields the same schedule, on every host and thread count,
//! which is what makes a one-line replay file (seed + config) a
//! complete reproducer even before the event list is read.
//!
//! The action mix is weighted toward the recoverable faults the stack
//! claims to absorb (unit failures with §V.A recovery, link failures
//! with rerouting) with a long tail of degradation events (cell faults,
//! drift, congestion, arrival bursts). Repairs are biased toward
//! previously failed units/links so schedules exercise the
//! fail → degrade → repair → recover cycle instead of monotonically
//! destroying the fabric.

use crate::runner::ChaosConfig;
use crate::schedule::{ChaosAction, ChaosEvent, ChaosSchedule, Pressure};
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// Expands `seed` into a chaos schedule sized for `cfg`'s fabric.
pub fn generate_schedule(seed: u64, cfg: &ChaosConfig) -> ChaosSchedule {
    let seeds = SeedTree::new(seed).child("chaos");
    let mut ev_rng = seeds.rng("events");
    let mut pr_rng = seeds.rng("pressure");

    // Pressure: half the seeds serve at the base operating point, the
    // rest stack overload (up to 8×) and deadline tightening (up to 4×).
    let pressure = if pr_rng.gen_bool(0.5) {
        Pressure::default()
    } else {
        Pressure {
            rate_x1000: pr_rng.gen_range(1000u32..8001),
            deadline_div: pr_rng.gen_range(1u32..5),
        }
    };

    let units = cfg.total_units() as u16;
    let (w, h) = (cfg.mesh_width as u16, cfg.mesh_height as u16);
    let n_events = ev_rng.gen_range(1usize..cfg.max_events.max(2));
    let mut failed_units: Vec<u16> = Vec::new();
    let mut failed_links: Vec<(u16, u16, u16, u16)> = Vec::new();
    let mut downed_devices: Vec<u16> = Vec::new();
    let mut events = Vec::with_capacity(n_events);
    // The roll space is a walk over optional bands: the 0..100 base is
    // always enabled, fleet harnesses append the 100..130 whole-device
    // outage band, `power_loss` the 130..145 crash band, and
    // `adversarial` the 145..185 attack band (five kinds, eight wide
    // each). A config only draws rolls for the bands it enables — so
    // configs without any extras keep the 0..100 range and their
    // seed → schedule expansion is bit-identical to what it always was
    // — and the single draw is then normalized onto the canonical band
    // layout by skipping over the disabled bands, without consuming
    // extra RNG draws.
    let mut roll_max = 100;
    if cfg.is_fleet() {
        roll_max += 30;
    }
    if cfg.power_loss {
        roll_max += 15;
    }
    if cfg.adversarial {
        roll_max += 40;
    }
    for _ in 0..n_events {
        let at_ps = ev_rng.gen_range(0u64..cfg.horizon_ps.max(1));
        let roll = ev_rng.gen_range(0u32..roll_max);
        // Normalize: skip the fleet band on single-device configs, then
        // the crash band on no-crash configs.
        let roll = if !cfg.is_fleet() && roll >= 100 {
            roll + 30
        } else {
            roll
        };
        let roll = if !cfg.power_loss && roll >= 130 {
            roll + 15
        } else {
            roll
        };
        let action = match roll {
            0..=21 => {
                let unit = ev_rng.gen_range(0u16..units.max(1));
                failed_units.push(unit);
                ChaosAction::FailUnit { unit }
            }
            22..=39 => {
                // Bias repair toward a unit this schedule actually
                // failed; a repair of a healthy unit is a no-op.
                let unit = if !failed_units.is_empty() && ev_rng.gen_bool(0.75) {
                    failed_units[ev_rng.gen_range(0usize..failed_units.len())]
                } else {
                    ev_rng.gen_range(0u16..units.max(1))
                };
                ChaosAction::RepairUnit { unit }
            }
            40..=49 => {
                let (ax, ay, bx, by) = random_adjacent_link(&mut ev_rng, w, h);
                failed_links.push((ax, ay, bx, by));
                ChaosAction::FailLink { ax, ay, bx, by }
            }
            50..=59 => {
                let (ax, ay, bx, by) = if !failed_links.is_empty() && ev_rng.gen_bool(0.75) {
                    failed_links[ev_rng.gen_range(0usize..failed_links.len())]
                } else {
                    random_adjacent_link(&mut ev_rng, w, h)
                };
                ChaosAction::RepairLink { ax, ay, bx, by }
            }
            60..=69 => ChaosAction::CellFaults {
                unit: ev_rng.gen_range(0u16..units.max(1)),
                rate_ppm: ev_rng.gen_range(0u32..2_000),
                stuck_on_ppm: ev_rng.gen_range(0u32..500_000),
                seed: ev_rng.gen(),
            },
            70..=77 => ChaosAction::DriftSpike {
                unit: ev_rng.gen_range(0u16..units.max(1)),
                drift_ppm: ev_rng.gen_range(0u32..20_000),
            },
            78..=89 => {
                let fx = ev_rng.gen_range(0u16..w.max(1));
                let fy = ev_rng.gen_range(0u16..h.max(1));
                let tx = ev_rng.gen_range(0u16..w.max(1));
                let ty = ev_rng.gen_range(0u16..h.max(1));
                ChaosAction::Congestion {
                    ax: fx,
                    ay: fy,
                    bx: tx,
                    by: ty,
                    packets: ev_rng.gen_range(1u16..32),
                    bytes: ev_rng.gen_range(16u16..256),
                }
            }
            90..=99 => ChaosAction::ArrivalBurst {
                extra: ev_rng.gen_range(1u16..24),
            },
            100..=114 => {
                let device = ev_rng.gen_range(0u16..cfg.fleet_devices.max(1) as u16);
                downed_devices.push(device);
                ChaosAction::DeviceDown { device }
            }
            115..=129 => {
                // Bias the repair toward a device this schedule downed,
                // mirroring the unit/link repair bias.
                let device = if !downed_devices.is_empty() && ev_rng.gen_bool(0.75) {
                    downed_devices[ev_rng.gen_range(0usize..downed_devices.len())]
                } else {
                    ev_rng.gen_range(0u16..cfg.fleet_devices.max(1) as u16)
                };
                ChaosAction::DeviceUp { device }
            }
            130..=144 => ChaosAction::PowerLoss {
                device: ev_rng.gen_range(0u16..cfg.fleet_devices.max(1) as u16),
                // 1–50 µs dark: long enough to straddle requests, short
                // enough that recovery lands inside the horizon.
                restart_after_ps: ev_rng.gen_range(1_000_000u32..50_000_000),
            },
            // 145..185: the adversarial band, eight rolls per attack
            // kind so a 32-seed campaign reliably exercises all five.
            _ => match (roll - 145) / 8 {
                0 => ChaosAction::ForgeToken {
                    unit: ev_rng.gen_range(0u16..units.max(1)),
                },
                1 => ChaosAction::ReplayToken {
                    unit: ev_rng.gen_range(0u16..units.max(1)),
                    // 1 ns – 120 µs: straddles the 50 µs token TTL, so
                    // schedules exercise both the replay and the expiry
                    // refusal paths.
                    age_ps: ev_rng.gen_range(1_000u32..120_000_000),
                },
                2 => ChaosAction::CrossPartitionScan {
                    vx: ev_rng.gen_range(0u16..w.max(1)),
                    vy: ev_rng.gen_range(0u16..h.max(1)),
                    packets: ev_rng.gen_range(1u16..8),
                    bytes: ev_rng.gen_range(16u16..128),
                },
                3 => ChaosAction::HostileSelfProg { seed: ev_rng.gen() },
                _ => ChaosAction::HostileDataflow { seed: ev_rng.gen() },
            },
        };
        events.push(ChaosEvent { at_ps, action });
    }
    // Sort by time; the sort is stable so equal-time events keep their
    // generation order and the expansion stays bit-deterministic.
    events.sort_by_key(|e| e.at_ps);
    ChaosSchedule { pressure, events }
}

/// A uniformly random *adjacent* link on a `w × h` mesh, so generated
/// (as opposed to shrunk) link failures always hit a physical link.
fn random_adjacent_link<R: Rng>(rng: &mut R, w: u16, h: u16) -> (u16, u16, u16, u16) {
    let horizontal = if w > 1 && h > 1 {
        rng.gen_bool(0.5)
    } else {
        w > 1
    };
    if horizontal {
        let x = rng.gen_range(0u16..(w - 1).max(1));
        let y = rng.gen_range(0u16..h.max(1));
        (x, y, x + 1, y)
    } else if h > 1 {
        let x = rng.gen_range(0u16..w.max(1));
        let y = rng.gen_range(0u16..(h - 1).max(1));
        (x, y, x, y + 1)
    } else {
        // 1×1 mesh: no links exist; emit a harmless self-pair.
        (0, 0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = generate_schedule(0xDEAD_BEEF, &cfg);
        let b = generate_schedule(0xDEAD_BEEF, &cfg);
        assert_eq!(a, b);
        let c = generate_schedule(0xDEAD_BEF0, &cfg);
        assert_ne!(a, c, "distinct seeds should diverge");
    }

    #[test]
    fn power_loss_is_gated_and_produces_crashes() {
        let plain = ChaosConfig::default();
        let crashy = ChaosConfig {
            power_loss: true,
            ..ChaosConfig::default()
        };
        let fleet_crashy = ChaosConfig {
            fleet_devices: 4,
            power_loss: true,
            ..ChaosConfig::default()
        };
        let mut saw_crash = false;
        for seed in 0..50u64 {
            // Gating: configs without power_loss never emit a crash, and
            // their expansion is untouched by the wider roll range.
            let base = generate_schedule(seed, &plain);
            assert!(!base.has_power_loss());
            for cfg in [&crashy, &fleet_crashy] {
                let s = generate_schedule(seed, cfg);
                saw_crash |= s.has_power_loss();
                for e in &s.events {
                    if let ChaosAction::PowerLoss {
                        device,
                        restart_after_ps,
                    } = e.action
                    {
                        assert!(usize::from(device) < cfg.fleet_devices.max(1));
                        assert!((1_000_000..50_000_000).contains(&restart_after_ps));
                    }
                }
            }
        }
        assert!(saw_crash, "50 seeds must produce at least one crash");
    }

    #[test]
    fn adversarial_is_gated_and_bit_identical_when_off() {
        let plain = ChaosConfig::default();
        let fleet = ChaosConfig {
            fleet_devices: 4,
            ..ChaosConfig::default()
        };
        let armed = ChaosConfig {
            adversarial: true,
            ..ChaosConfig::default()
        };
        let armed_fleet = ChaosConfig {
            fleet_devices: 4,
            power_loss: true,
            adversarial: true,
            ..ChaosConfig::default()
        };
        let mut saw = std::collections::HashSet::new();
        for seed in 0..50u64 {
            // Gating: configs without the flag never emit an attack, and
            // the appended band leaves their expansion untouched.
            let base = generate_schedule(seed, &plain);
            assert!(!base.has_adversarial());
            assert_eq!(
                base,
                generate_schedule(
                    seed,
                    &ChaosConfig {
                        adversarial: false,
                        ..ChaosConfig::default()
                    }
                )
            );
            assert_eq!(
                generate_schedule(seed, &fleet),
                generate_schedule(
                    seed,
                    &ChaosConfig {
                        adversarial: false,
                        ..fleet.clone()
                    }
                )
            );
            for cfg in [&armed, &armed_fleet] {
                for e in &generate_schedule(seed, cfg).events {
                    if e.action.is_adversarial() {
                        saw.insert(e.action.kind_name());
                    }
                }
            }
        }
        for kind in [
            "forge_token",
            "replay_token",
            "cross_partition_scan",
            "hostile_self_prog",
            "hostile_dataflow",
        ] {
            assert!(saw.contains(kind), "50 seeds never produced {kind}");
        }
    }

    #[test]
    fn events_are_sorted_and_in_bounds() {
        let cfg = ChaosConfig::default();
        for seed in 0..50u64 {
            let s = generate_schedule(seed, &cfg);
            assert!(!s.events.is_empty());
            assert!(s.events.len() < cfg.max_events.max(2));
            assert!(s.events.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
            for e in &s.events {
                assert!(e.at_ps < cfg.horizon_ps);
                if let ChaosAction::FailLink { ax, ay, bx, by } = e.action {
                    let dist = ax.abs_diff(bx) + ay.abs_diff(by);
                    assert_eq!(dist, 1, "generated link failures are adjacent");
                }
            }
        }
    }
}
