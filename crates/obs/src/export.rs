//! `--telemetry <path>` support shared by every exporting binary.
//!
//! Binaries accept `--telemetry out.jsonl` (or `--telemetry=out.jsonl`);
//! when present, the run's metric registry — plus any observability
//! records (`series`, `alert`, `profile` kinds) the caller appends — is
//! exported as deterministic JSON lines after the run. Every line is
//! validated against the schema before it is written, so a malformed
//! export fails the producing binary, not a downstream consumer.
//!
//! This lived in `cim-bench` while the snapshot export was the only
//! producer; it moved here when the chaos bins and `examples/serving.rs`
//! grew the same flag (cim-bench re-exports it, so existing callers are
//! unchanged).

use cim_sim::json::Json;
use cim_sim::telemetry::{validate_jsonl_line, Telemetry};
use std::path::{Path, PathBuf};

/// Splits `--telemetry <path>` / `--telemetry=<path>` out of an argument
/// list, returning the remaining positional arguments and the path.
pub fn split_telemetry_arg(
    args: impl IntoIterator<Item = String>,
) -> (Vec<String>, Option<PathBuf>) {
    let mut rest = Vec::new();
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--telemetry" {
            path = it.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--telemetry=") {
            path = Some(PathBuf::from(p));
        } else {
            rest.push(a);
        }
    }
    (rest, path)
}

/// Validates and writes `tel`'s JSON-lines export, followed by any
/// `extra` record blocks (series/alert/profile lines, each already
/// newline-terminated), to `path`; returns the number of lines written.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] if any line fails schema
/// validation, or the underlying write error.
pub fn write_export_with(tel: &Telemetry, extra: &[&str], path: &Path) -> std::io::Result<usize> {
    let mut text = tel.export_jsonl();
    for block in extra {
        text.push_str(block);
    }
    for (i, line) in text.lines().enumerate() {
        if let Err(e) = validate_jsonl_line(line) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("telemetry line {}: {e}", i + 1),
            ));
        }
    }
    std::fs::write(path, &text)?;
    Ok(text.lines().count())
}

/// [`write_export_with`] with no extra blocks — the original snapshot
/// export.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] if any line fails schema
/// validation, or the underlying write error.
pub fn write_export(tel: &Telemetry, path: &Path) -> std::io::Result<usize> {
    write_export_with(tel, &[], path)
}

/// Validates every line of a JSON-lines telemetry file; returns the line
/// count, or the first offending line's number and error.
///
/// # Errors
///
/// Returns a human-readable description of the first invalid line.
pub fn validate_file(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        count += 1;
    }
    if count == 0 {
        return Err(format!("{}: no telemetry lines found", path.display()));
    }
    Ok(count)
}

/// Asserts that a telemetry file contains at least one record of each of
/// the given `kind`s (e.g. `["series", "alert", "profile"]`); returns
/// the per-kind counts in argument order. Used by `telemetry_check
/// --require-kinds` so CI fails when an exporter silently stops emitting
/// a record family.
///
/// # Errors
///
/// Returns a description naming the first missing kind, or any
/// read/parse error.
pub fn require_kinds(path: &Path, kinds: &[&str]) -> Result<Vec<usize>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut counts = vec![0usize; kinds.len()];
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = cim_sim::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if let Some(kind) = v.get("kind").and_then(Json::as_str) {
            if let Some(k) = kinds.iter().position(|&want| want == kind) {
                counts[k] += 1;
            }
        }
    }
    for (k, &n) in counts.iter().enumerate() {
        if n == 0 {
            return Err(format!(
                "{}: no records of kind \"{}\"",
                path.display(),
                kinds[k]
            ));
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::telemetry::TelemetryLevel;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn splits_flag_in_both_forms() {
        let (rest, path) = split_telemetry_arg(strs(&["64", "--telemetry", "t.jsonl"]));
        assert_eq!(rest, vec!["64"]);
        assert_eq!(path, Some(PathBuf::from("t.jsonl")));
        let (rest, path) = split_telemetry_arg(strs(&["--telemetry=x.jsonl", "7"]));
        assert_eq!(rest, vec!["7"]);
        assert_eq!(path, Some(PathBuf::from("x.jsonl")));
        let (rest, path) = split_telemetry_arg(strs(&["7"]));
        assert_eq!(rest, vec!["7"]);
        assert_eq!(path, None);
    }

    #[test]
    fn export_roundtrips_through_validation() {
        let tel = Telemetry::new(TelemetryLevel::Metrics);
        let c = tel.component("tile(0,0)/mu0/adc");
        tel.counter_add(c, "conversions", 42);
        let dir = std::env::temp_dir().join("cim-obs-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("export.jsonl");
        let written = write_export(&tel, &path).unwrap();
        assert_eq!(written, 1);
        assert_eq!(validate_file(&path), Ok(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extra_blocks_are_validated_and_counted() {
        let tel = Telemetry::new(TelemetryLevel::Metrics);
        let c = tel.component("svc");
        tel.counter_add(c, "hits", 1);
        let dir = std::env::temp_dir().join("cim-obs-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("with_series.jsonl");
        let series =
            "{\"component\":\"svc\",\"metric\":\"series/hits\",\"kind\":\"series\",\"value\":1,\"t_ps\":0}\n";
        let written = write_export_with(&tel, &[series], &path).unwrap();
        assert_eq!(written, 2);
        assert_eq!(require_kinds(&path, &["counter", "series"]), Ok(vec![1, 1]));
        assert!(require_kinds(&path, &["alert"]).is_err());
        // A malformed extra block must fail the producer.
        let bad =
            "{\"component\":\"svc\",\"metric\":\"series/hits\",\"kind\":\"series\",\"value\":1}\n";
        assert!(write_export_with(&tel, &[bad], &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected() {
        let dir = std::env::temp_dir().join("cim-obs-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(validate_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
