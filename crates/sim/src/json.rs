//! Minimal in-tree JSON value parser (hermetic replacement for `serde_json`).
//!
//! The repo emits several JSON-lines artifacts — telemetry exports, bench
//! reports, chaos replay files — and needs to read them back in-tree: the
//! telemetry schema validator, the `bench_compare` CI gate and the
//! `chaos_replay` tool all parse one object per line. This module is the
//! single parser behind all of them: a strict recursive-descent JSON
//! parser producing a [`Json`] value tree.
//!
//! Strictness matches the writers: no trailing garbage, no NaN/Infinity
//! literals, no comments. Numbers are carried as `f64`, which is exact
//! for every integer the exporters emit below 2^53 (sim times in
//! picoseconds, counters, byte counts); [`Json::as_u64`] refuses values
//! outside that exactly-representable range rather than silently
//! rounding.
//!
//! ```
//! use cim_sim::json::{parse, Json};
//!
//! let v = parse(r#"{"component":"noc","value":3,"tags":["a","b"]}"#).unwrap();
//! assert_eq!(v.get("component").and_then(Json::as_str), Some("noc"));
//! assert_eq!(v.get("value").and_then(Json::as_u64), Some(3));
//! assert!(parse("{\"k\":1} trailing").is_err());
//! ```

use std::fmt;

/// A parsed JSON value.
///
/// Object members are kept as an ordered `Vec` of `(key, value)` pairs —
/// insertion order is preserved (the writers emit deterministic key
/// orders and round-trip tests rely on it), duplicate keys are rejected
/// at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64` (exact for integers up to 2^53).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    ///
    /// `None` unless this is a number that is non-negative, integral and
    /// within `f64`'s exactly-representable integer range (< 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::String(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document (one value, no trailing garbage).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// a byte offset into `input`.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::String),
            Some(b't') => self.parse_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.parse_literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.parse_literal("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "expected a JSON value at byte {}, found {:?}",
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Consume one UTF-8 scalar at a time so multi-byte runs pass
            // through unchanged (the input is a &str, so they are valid).
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err("unpaired high surrogate".to_owned());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| "bad surrogate pair".to_owned())?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err("unpaired low surrogate".to_owned());
                            } else {
                                char::from_u32(cp).ok_or_else(|| "bad \\u code point".to_owned())?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        other => {
                            return Err(format!(
                                "bad escape at byte {}: {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#04x} in string"));
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| "truncated UTF-8".to_owned())?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for _ in 0..4 {
            match self.peek() {
                Some(h) if h.is_ascii_hexdigit() => {
                    cp = cp * 16 + (h as char).to_digit(16).expect("hex digit");
                    self.pos += 1;
                }
                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
            }
        }
        Ok(cp)
    }

    fn parse_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("unparsable number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(
            parse(r#"[1,"a",{"k":null}]"#).unwrap(),
            Json::Array(vec![
                Json::Number(1.0),
                Json::String("a".to_owned()),
                Json::Object(vec![("k".to_owned(), Json::Null)]),
            ])
        );
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"bench":"g/n","median_ns":1250,"frac":0.5}"#).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("g/n"));
        assert_eq!(v.get("median_ns").and_then(Json::as_u64), Some(1250));
        assert_eq!(v.get("frac").and_then(Json::as_u64), None, "non-integral");
        assert_eq!(v.get("frac").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} x",
            "\"unterminated",
            "01e",
            "1.",
            "nul",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        let v = parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{1F600}"));
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"component":"a/b","metric":"m","value":1.5,"tags":["x","y"],"ok":true}"#;
        let v = parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
        assert_eq!(
            printed, src,
            "canonical writers round-trip byte-identically"
        );
    }

    #[test]
    fn exact_integer_boundary() {
        assert_eq!(
            parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
