//! Integration tests for the telemetry tentpole: the JSON-lines export
//! must be deterministic (byte-identical across same-seed runs) and
//! every exported line must satisfy the in-tree schema validator.

use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::sim::telemetry::{validate_jsonl_line, TelemetryLevel};
use cim::sim::SeedTree;
use cim::workloads::nn::{mlp_graph, random_inputs};
use std::collections::HashMap;

/// Run one small end-to-end workload on a fresh device and return the
/// telemetry export.
fn run_once(seed: u64, level: TelemetryLevel) -> String {
    let mut device = CimDevice::new(FabricConfig::default()).unwrap();
    let tel = device.enable_telemetry(level);
    let seeds = SeedTree::new(seed);
    let (graph, src, _sink) = mlp_graph(&[64, 32, 10], seeds);
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .unwrap();
    let inputs: Vec<_> = random_inputs(4, 64, seeds.child("x"))
        .into_iter()
        .map(|x| HashMap::from([(src, x)]))
        .collect();
    device
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .unwrap();
    tel.export_jsonl()
}

#[test]
fn export_is_byte_identical_across_same_seed_runs() {
    let a = run_once(7, TelemetryLevel::Metrics);
    let b = run_once(7, TelemetryLevel::Metrics);
    assert!(!a.is_empty(), "an instrumented run must export metrics");
    assert_eq!(a, b, "same seed, same device, same workload => same bytes");
}

#[test]
fn export_lines_all_pass_the_schema_validator() {
    let text = run_once(11, TelemetryLevel::Full);
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        lines += 1;
    }
    assert!(lines > 16, "a full run should export many metric lines");
}

#[test]
fn observability_record_kinds_pass_and_fail_the_schema_validator() {
    // The three observability record families added by cim_obs.
    let series = r#"{"component":"service","metric":"series/admitted","kind":"series","value":4,"t_ps":10000}"#;
    let alert = r#"{"component":"obs/slo","metric":"alert/page_burn","kind":"alert","value":15.2,"t_ps":5000,"tenant":"interactive","severity":"page","window_ps":1000000}"#;
    let profile = r#"{"component":"obs/profile","metric":"profile/time","kind":"profile","value":120,"stack":"service:request;engine:item","unit":"ps"}"#;
    for line in [series, alert, profile] {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
    }
    // Each kind's required fields are enforced.
    let bad = [
        // series without a timestamp
        r#"{"component":"service","metric":"series/admitted","kind":"series","value":4}"#,
        // alert without a tenant
        r#"{"component":"obs/slo","metric":"alert/page_burn","kind":"alert","value":1.0,"t_ps":5000,"severity":"page","window_ps":1}"#,
        // alert with an unknown severity
        r#"{"component":"obs/slo","metric":"alert/page_burn","kind":"alert","value":1.0,"t_ps":5000,"tenant":"t","severity":"shrug","window_ps":1}"#,
        // profile without a stack
        r#"{"component":"obs/profile","metric":"profile/time","kind":"profile","value":120,"unit":"ps"}"#,
    ];
    for line in bad {
        assert!(validate_jsonl_line(line).is_err(), "must reject: {line}");
    }
}

#[test]
fn observability_exports_are_byte_identical_across_same_seed_runs() {
    use cim::fabric::service::{CimService, ServiceConfig};
    use cim::obs::{alerts_jsonl, ObsConfig};
    use cim::workloads::serving::standard_request_mix;

    let run = || {
        let mut svc = CimService::new(
            FabricConfig::default(),
            ServiceConfig::default(),
            SeedTree::new(0xB17E5),
        )
        .unwrap();
        svc.runtime_mut()
            .device_mut()
            .enable_telemetry(TelemetryLevel::Metrics);
        svc.enable_observability(ObsConfig::default());
        for spec in standard_request_mix() {
            let (g, src, sink) = spec.build_graph(SeedTree::new(0xB17E5 ^ 0x7E4A47));
            svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
                .unwrap();
        }
        // Past saturation so the export carries alert records too.
        let r = svc.run_open_loop(3_200_000.0, 200, &[]).unwrap();
        format!("{}{}", r.series_jsonl, alerts_jsonl(&r.alerts))
    };
    let a = run();
    let b = run();
    assert!(a.contains("\"kind\":\"series\""), "series records present");
    assert!(a.contains("\"kind\":\"alert\""), "alert records present");
    assert_eq!(a, b, "observability export is a pure function of the seed");
    for (i, line) in a.lines().enumerate() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
    }
}

#[test]
fn disabled_telemetry_exports_nothing() {
    let mut device = CimDevice::new(FabricConfig::default()).unwrap();
    let tel = device.telemetry().clone();
    assert!(!tel.is_enabled());
    let seeds = SeedTree::new(3);
    let (graph, src, _sink) = mlp_graph(&[64, 32, 10], seeds);
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .unwrap();
    let inputs = vec![HashMap::from([(src, vec![0.25; 64])])];
    device
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .unwrap();
    assert!(tel.export_jsonl().is_empty());
    assert!(tel.snapshot().is_empty());
}
