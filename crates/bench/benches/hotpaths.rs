//! Micro-benchmarks of the simulator's hot paths: the analog crossbar
//! read, the DPE matvec, NoC transmission, cache replay, the dataflow
//! interpreter, TCAM search and stateful logic.
//!
//! Runs on the in-tree harness ([`cim_bench::harness`]); one JSON line per
//! benchmark on stdout: `cargo bench --bench hotpaths > BENCH_hotpaths.json`.

use std::hint::black_box;

use cim_baseline::CpuModel;
use cim_bench::harness::Group;
use cim_crossbar::array::CrossbarArray;
use cim_crossbar::device::DeviceParams;
use cim_crossbar::dpe::{DotProductEngine, DpeConfig};
use cim_crossbar::logic::StatefulLogicEngine;
use cim_crossbar::matrix::DenseMatrix;
use cim_crossbar::tcam::{Tcam, TernaryPattern};
use cim_dataflow::interpreter::execute;
use cim_fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim_noc::network::NocNetwork;
use cim_noc::packet::{NodeId, Packet};
use cim_sim::time::SimTime;
use cim_sim::SeedTree;
use cim_workloads::nn::mlp_graph;
use std::collections::HashMap;

fn bench_crossbar() {
    let mut g = Group::new("crossbar");
    let seeds = SeedTree::new(1);

    let mut ideal = CrossbarArray::new(128, 128, DeviceParams::ideal(2), seeds);
    ideal.program_levels(&vec![2u16; 128 * 128]).unwrap();
    let mask = vec![true; 128];
    g.throughput(128 * 128);
    g.bench("read_phase_128x128_ideal", || {
        black_box(ideal.read_phase(black_box(&mask)).unwrap())
    });

    let mut noisy = CrossbarArray::new(128, 128, DeviceParams::default(), seeds);
    noisy.program_levels(&vec![2u16; 128 * 128]).unwrap();
    g.bench("read_phase_128x128_noisy", || {
        black_box(noisy.read_phase(black_box(&mask)).unwrap())
    });

    let w = DenseMatrix::from_fn(128, 128, |r, cc| (((r + cc) % 17) as f64 / 17.0) - 0.5);
    let mut dpe = DotProductEngine::new(DpeConfig::noise_free(), seeds);
    dpe.program(&w).unwrap();
    let x = vec![0.3; 128];
    g.bench("dpe_matvec_128", || {
        black_box(dpe.matvec(black_box(&x)).unwrap())
    });
    g.finish();
}

fn bench_noc() {
    let mut g = Group::new("noc");
    g.bench_with_setup(
        "transmit_8hops_plain",
        || NocNetwork::new(8, 8, 7).unwrap(),
        |mut noc| {
            let p = Packet::new(1, NodeId::new(0, 0), NodeId::new(7, 7), vec![0u8; 64]);
            black_box(noc.transmit(&p, SimTime::ZERO).unwrap())
        },
    );
    g.bench_with_setup(
        "transmit_8hops_encrypted",
        || {
            let mut noc = NocNetwork::new(8, 8, 7).unwrap();
            noc.set_encryption(true);
            noc
        },
        |mut noc| {
            let p = Packet::new(1, NodeId::new(0, 0), NodeId::new(7, 7), vec![0u8; 64]);
            black_box(noc.transmit(&p, SimTime::ZERO).unwrap())
        },
    );
    g.finish();
}

fn bench_cache() {
    let mut g = Group::new("cache");
    let cpu = CpuModel::new(1).unwrap();
    let hot: Vec<u64> = (0..4096u64).map(|i| (i % 512) * 8).collect();
    let cold: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (64 << 20))
        .collect();
    g.throughput(4096);
    g.bench("trace_replay_hot", || {
        black_box(cpu.run_trace(black_box(&hot)))
    });
    g.bench("trace_replay_cold", || {
        black_box(cpu.run_trace(black_box(&cold)))
    });
    g.finish();
}

fn bench_dataflow() {
    let mut g = Group::new("dataflow");
    let (graph, src, _) = mlp_graph(&[128, 64, 16], SeedTree::new(3));
    let inputs = HashMap::from([(src, vec![0.5; 128])]);
    g.bench("interpreter_mlp_128_64_16", || {
        black_box(execute(black_box(&graph), black_box(&inputs)).unwrap())
    });
    g.bench("graph_metrics", || black_box(graph.metrics()));
    g.finish();
}

fn bench_fabric() {
    let mut g = Group::new("fabric");
    g.sample_size(20);
    let (graph, src, _) = mlp_graph(&[128, 64, 16], SeedTree::new(5));
    let mut device = CimDevice::new(FabricConfig {
        dpe: DpeConfig::noise_free(),
        ..FabricConfig::default()
    })
    .unwrap();
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .unwrap();
    let items = vec![HashMap::from([(src, vec![0.5; 128])])];
    g.bench("execute_stream_1_item", || {
        device.reset_occupancy();
        black_box(
            device
                .execute_stream(&mut prog, black_box(&items), &StreamOptions::default())
                .unwrap(),
        )
    });
    g.finish();
}

/// The telemetry tentpole's overhead contract: with the handle disabled
/// the instrumented matvec path must stay within noise (≤5%) of its
/// pre-instrumentation cost, and enabling metrics must stay cheap enough
/// to leave on under load. Compare the disabled/enabled lines directly —
/// the pair shares one programmed engine and input.
fn bench_telemetry() {
    use cim_sim::telemetry::{Telemetry, TelemetryLevel};
    let mut g = Group::new("telemetry");
    let seeds = SeedTree::new(9);
    let w = DenseMatrix::from_fn(128, 128, |r, cc| (((r + cc) % 17) as f64 / 17.0) - 0.5);
    let x = vec![0.3; 128];

    let mut off = DotProductEngine::new(DpeConfig::noise_free(), seeds);
    off.program(&w).unwrap();
    g.bench("dpe_matvec_128_telemetry_off", || {
        black_box(off.matvec(black_box(&x)).unwrap())
    });

    let mut on = DotProductEngine::new(DpeConfig::noise_free(), seeds);
    let tel = Telemetry::new(TelemetryLevel::Metrics);
    on.attach_telemetry(&tel, "tile(0,0)/mu0");
    on.program(&w).unwrap();
    g.bench("dpe_matvec_128_telemetry_metrics", || {
        black_box(on.matvec(black_box(&x)).unwrap())
    });
    g.finish();
}

fn bench_associative() {
    let mut g = Group::new("associative");
    let mut cam = Tcam::new(1024, 32);
    for i in 0..1024u64 {
        cam.insert(TernaryPattern::exact(i, 32).unwrap()).unwrap();
    }
    g.bench("tcam_search_1024", || black_box(cam.search(black_box(512))));

    let mut logic = StatefulLogicEngine::new(8);
    logic.write(0, 0xDEAD_BEEF_CAFE_F00D);
    logic.write(1, 0x0123_4567_89AB_CDEF);
    g.bench("stateful_logic_add64", || {
        black_box(logic.add(0, 1, 2, [3, 4, 5]))
    });
    g.finish();
}

fn main() {
    cim_bench::harness::emit_calibration();
    bench_crossbar();
    bench_noc();
    bench_cache();
    bench_dataflow();
    bench_fabric();
    bench_telemetry();
    bench_associative();
}
