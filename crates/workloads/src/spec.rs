//! The application classes of the paper's Table 2 and their published
//! ratings.
//!
//! Appendix A rates 14 application classes on six characteristics and an
//! overall CIM suitability. This module encodes that table verbatim so
//! the TAB2 experiment can compare *measured* characteristics against the
//! paper's qualitative grades.

use core::fmt;

/// A qualitative level in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// "low"
    Low,
    /// "medium" (also used for the paper's "low to med.")
    Medium,
    /// "high"
    High,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
        })
    }
}

impl Level {
    /// Distance between two levels (0, 1 or 2 steps).
    pub fn distance(self, other: Level) -> u8 {
        (self as i8 - other as i8).unsigned_abs()
    }
}

/// The 14 application classes of Table 2, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadClass {
    /// Machine learning (training-style workloads).
    MachineLearning,
    /// Neural network inference.
    NeuralNetworks,
    /// Graph problems (social networks, intelligence).
    GraphProblems,
    /// Bayesian inference.
    BayesianInference,
    /// Markov-chain computations.
    MarkovChain,
    /// Key-value stores (persistency layer).
    KeyValueStores,
    /// Databases: analytics.
    DatabasesAnalytics,
    /// Databases: transactions.
    DatabasesTransactions,
    /// Search / indexing.
    SearchIndexing,
    /// Optimization (resource allocation).
    Optimization,
    /// Scientific computing.
    ScientificComputing,
    /// Finite-element modelling.
    FiniteElementModelling,
    /// Collaborative applications (mail, chat).
    Collaborative,
    /// Signal (image) processing.
    SignalProcessing,
}

impl WorkloadClass {
    /// All classes in Table 2 row order.
    pub const ALL: [WorkloadClass; 14] = [
        WorkloadClass::MachineLearning,
        WorkloadClass::NeuralNetworks,
        WorkloadClass::GraphProblems,
        WorkloadClass::BayesianInference,
        WorkloadClass::MarkovChain,
        WorkloadClass::KeyValueStores,
        WorkloadClass::DatabasesAnalytics,
        WorkloadClass::DatabasesTransactions,
        WorkloadClass::SearchIndexing,
        WorkloadClass::Optimization,
        WorkloadClass::ScientificComputing,
        WorkloadClass::FiniteElementModelling,
        WorkloadClass::Collaborative,
        WorkloadClass::SignalProcessing,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::MachineLearning => "Machine learning",
            WorkloadClass::NeuralNetworks => "Neural Networks",
            WorkloadClass::GraphProblems => "Graph problems (FB, intel.)",
            WorkloadClass::BayesianInference => "Bayesian inference",
            WorkloadClass::MarkovChain => "Markov chain",
            WorkloadClass::KeyValueStores => "KVSs (persistency layer)",
            WorkloadClass::DatabasesAnalytics => "Data Bases (analytics)",
            WorkloadClass::DatabasesTransactions => "Data Bases (transactions)",
            WorkloadClass::SearchIndexing => "Search (indexing problem)",
            WorkloadClass::Optimization => "Optimization problem (resource allocation)",
            WorkloadClass::ScientificComputing => "Scientific Computing",
            WorkloadClass::FiniteElementModelling => "Finite Element Modelling",
            WorkloadClass::Collaborative => "Collaborative (mail, chat,..)",
            WorkloadClass::SignalProcessing => "Signal (image) processing",
        }
    }
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRating {
    /// The application class.
    pub class: WorkloadClass,
    /// "Compute intensive".
    pub compute: Level,
    /// "Data intensive: bandwidth".
    pub bandwidth: Level,
    /// "Data intensive: size".
    pub size: Level,
    /// "Operational intensity (flop/byte)".
    pub op_intensity: Level,
    /// "Communication (iterative)".
    pub communication: Level,
    /// "Parallelism (dependencies)".
    pub parallelism: Level,
    /// The paper's overall CIM suitability.
    pub cim: Level,
}

/// The paper's Table 2, transcribed row by row. The paper's "low to med."
/// entries are encoded as [`Level::Medium`]; "low to high" as
/// [`Level::Medium`].
pub fn paper_table() -> Vec<PaperRating> {
    use Level::{High as H, Low as L, Medium as M};
    use WorkloadClass as W;
    vec![
        PaperRating {
            class: W::MachineLearning,
            compute: H,
            bandwidth: H,
            size: H,
            op_intensity: H,
            communication: L,
            parallelism: H,
            cim: H,
        },
        PaperRating {
            class: W::NeuralNetworks,
            compute: H,
            bandwidth: H,
            size: H,
            op_intensity: H,
            communication: L,
            parallelism: H,
            cim: H,
        },
        PaperRating {
            class: W::GraphProblems,
            compute: L,
            bandwidth: M,
            size: H,
            op_intensity: H,
            communication: H,
            parallelism: H,
            cim: H,
        },
        PaperRating {
            class: W::BayesianInference,
            compute: H,
            bandwidth: L,
            size: L,
            op_intensity: H,
            communication: H,
            parallelism: M,
            cim: L,
        },
        PaperRating {
            class: W::MarkovChain,
            compute: H,
            bandwidth: L,
            size: L,
            op_intensity: L,
            communication: H,
            parallelism: H,
            cim: L,
        },
        PaperRating {
            class: W::KeyValueStores,
            compute: L,
            bandwidth: H,
            size: H,
            op_intensity: L,
            communication: M,
            parallelism: H,
            cim: M,
        },
        PaperRating {
            class: W::DatabasesAnalytics,
            compute: L,
            bandwidth: H,
            size: H,
            op_intensity: L,
            communication: M,
            parallelism: H,
            cim: H,
        },
        PaperRating {
            class: W::DatabasesTransactions,
            compute: M,
            bandwidth: H,
            size: M,
            op_intensity: H,
            communication: H,
            parallelism: M,
            cim: M,
        },
        PaperRating {
            class: W::SearchIndexing,
            compute: H,
            bandwidth: H,
            size: H,
            op_intensity: H,
            communication: H,
            parallelism: H,
            cim: L,
        },
        PaperRating {
            class: W::Optimization,
            compute: H,
            bandwidth: L,
            size: L,
            op_intensity: H,
            communication: H,
            parallelism: L,
            cim: L,
        },
        PaperRating {
            class: W::ScientificComputing,
            compute: H,
            bandwidth: M,
            size: M,
            op_intensity: M,
            communication: H,
            parallelism: H,
            cim: L,
        },
        PaperRating {
            class: W::FiniteElementModelling,
            compute: H,
            bandwidth: L,
            size: M,
            op_intensity: M,
            communication: H,
            parallelism: H,
            cim: M,
        },
        PaperRating {
            class: W::Collaborative,
            compute: L,
            bandwidth: H,
            size: M,
            op_intensity: L,
            communication: H,
            parallelism: L,
            cim: L,
        },
        PaperRating {
            class: W::SignalProcessing,
            compute: H,
            bandwidth: H,
            size: H,
            op_intensity: L,
            communication: H,
            parallelism: M,
            cim: L,
        },
    ]
}

/// Looks up the paper rating for one class.
pub fn paper_rating(class: WorkloadClass) -> PaperRating {
    paper_table()
        .into_iter()
        .find(|r| r.class == class)
        .expect("every class has a table row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_classes_once() {
        let t = paper_table();
        assert_eq!(t.len(), 14);
        for (i, c) in WorkloadClass::ALL.iter().enumerate() {
            assert_eq!(t[i].class, *c, "row order matches enum order");
        }
    }

    #[test]
    fn level_ordering_and_distance() {
        assert!(Level::Low < Level::Medium && Level::Medium < Level::High);
        assert_eq!(Level::Low.distance(Level::High), 2);
        assert_eq!(Level::Medium.distance(Level::Medium), 0);
    }

    #[test]
    fn headline_rows_match_the_paper() {
        let nn = paper_rating(WorkloadClass::NeuralNetworks);
        assert_eq!(nn.cim, Level::High);
        assert_eq!(nn.communication, Level::Low);
        let opt = paper_rating(WorkloadClass::Optimization);
        assert_eq!(opt.cim, Level::Low);
        assert_eq!(opt.parallelism, Level::Low);
        let kvs = paper_rating(WorkloadClass::KeyValueStores);
        assert_eq!(kvs.cim, Level::Medium);
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let mut labels: Vec<&str> = WorkloadClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }
}
