pub mod ablations;
pub mod crossover;
pub mod fig2;
pub mod fig6;
pub mod roofline;
pub mod sec6;
pub mod table1;
pub mod table2;
