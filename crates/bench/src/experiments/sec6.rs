//! SEC6 — Dot Product Engine vs CPU vs GPU (paper §VI).
//!
//! The paper reports, for "the neural network class of applications":
//!
//! * latency 10–10⁴× better than CPUs and 10–10²× better than GPUs;
//! * bandwidth (sustained throughput) 10³–10⁶× better than CPUs and
//!   comparable to GPUs;
//! * power 10³–10⁶× better than CPUs and 10–10³× better than GPUs.
//!
//! This experiment reproduces the *shape*: a large dense layer (weights
//! far beyond the CPU's cache) is run on the CIM fabric (stationary
//! weights in crossbars), the CPU model (weights streamed from DRAM) and
//! the GPU model (weights streamed from HBM, kernel-launch overheads).
//! Latency and power are measured at the latency-critical batch-1
//! operating point; throughput on a saturated stream.

use crate::table::{ratio, TextTable};
use cim_baseline::{CpuModel, GpuModel};
use cim_crossbar::dpe::DpeConfig;
use cim_dataflow::graph::{DataflowGraph, GraphBuilder, NodeRef};
use cim_dataflow::ops::{Operation, Reduction};
use cim_fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim_sim::energy::Energy;
use cim_sim::rng::normal;
use cim_sim::time::SimDuration;
use cim_sim::SeedTree;
use std::collections::HashMap;

/// One platform's measured operating points.
#[derive(Debug, Clone, Copy)]
pub struct PlatformNumbers {
    /// Batch-1 (latency-critical) end-to-end latency.
    pub batch1_latency: SimDuration,
    /// Sustained throughput, items per second.
    pub throughput: f64,
    /// Energy per item at the batch-1 operating point.
    pub energy_per_item: Energy,
}

impl PlatformNumbers {
    /// Power when serving `rate` items/s at this platform's per-item
    /// energy (iso-throughput power, the paper's §VI framing).
    pub fn power_at(&self, rate: f64) -> f64 {
        self.energy_per_item.as_joules() * rate
    }
}

/// The full §VI comparison.
#[derive(Debug, Clone)]
pub struct Sec6Report {
    /// Layer description.
    pub model: String,
    /// CIM fabric numbers.
    pub cim: PlatformNumbers,
    /// CPU socket numbers.
    pub cpu: PlatformNumbers,
    /// GPU board numbers.
    pub gpu: PlatformNumbers,
}

impl Sec6Report {
    /// Latency advantage over the CPU (>1 means CIM is faster).
    pub fn latency_vs_cpu(&self) -> f64 {
        self.cpu.batch1_latency.as_secs_f64() / self.cim.batch1_latency.as_secs_f64()
    }

    /// Latency advantage over the GPU.
    pub fn latency_vs_gpu(&self) -> f64 {
        self.gpu.batch1_latency.as_secs_f64() / self.cim.batch1_latency.as_secs_f64()
    }

    /// Throughput advantage over the CPU.
    pub fn throughput_vs_cpu(&self) -> f64 {
        self.cim.throughput / self.cpu.throughput
    }

    /// Throughput advantage over the GPU.
    pub fn throughput_vs_gpu(&self) -> f64 {
        self.cim.throughput / self.gpu.throughput
    }

    /// Iso-throughput power advantage over the CPU.
    pub fn power_vs_cpu(&self) -> f64 {
        let rate = self.cpu.throughput;
        self.cpu.power_at(rate) / self.cim.power_at(rate)
    }

    /// Iso-throughput power advantage over the GPU.
    pub fn power_vs_gpu(&self) -> f64 {
        let rate = self.gpu.throughput;
        self.gpu.power_at(rate) / self.cim.power_at(rate)
    }
}

/// Builds the benchmark graph: one `dim × dim` dense layer + argmax.
fn layer_graph(dim: usize, seeds: SeedTree) -> (DataflowGraph, NodeRef) {
    let mut rng = seeds.rng("sec6-weights");
    let scale = 1.0 / (dim as f64).sqrt();
    let weights: Vec<f64> = (0..dim * dim)
        .map(|_| normal(&mut rng, 0.0, scale))
        .collect();
    let mut b = GraphBuilder::new();
    let src = b.add("input", Operation::Source { width: dim });
    let mv = b.add(
        "dense",
        Operation::MatVec {
            rows: dim,
            cols: dim,
            weights,
        },
    );
    let arg = b.add(
        "argmax",
        Operation::Reduce {
            kind: Reduction::ArgMax,
            width: dim,
        },
    );
    let sink = b.add("class", Operation::Sink { width: 1 });
    b.chain(&[src, mv, arg, sink]).expect("widths match");
    (b.build().expect("valid graph"), src)
}

/// Runs the comparison for a `dim × dim` layer with `stream_len` items in
/// the throughput phase. The paper-scale configuration is
/// `run(4096, 6)`; smaller dims keep CI fast while preserving shape.
pub fn run(dim: usize, stream_len: usize) -> Sec6Report {
    let seeds = SeedTree::new(0x5EC6);
    let (graph, src) = layer_graph(dim, seeds);

    // --- CIM fabric --------------------------------------------------------
    let mut device = CimDevice::new(FabricConfig {
        dpe: DpeConfig {
            // 4-bit inputs: the latency/energy ratios of §VI concern
            // inference-class precision. Devices are noise-free (accuracy
            // is the ABL-ADC experiment's concern) but the ADC stays at
            // the calibrated 8-bit design point — a 16-bit converter
            // would burn 4^8 more energy per sample and misprice the
            // engine.
            input_bits: 4,
            adc_bits: cim_sim::calib::dpe::ADC_BITS,
            device: cim_crossbar::device::DeviceParams::ideal(cim_sim::calib::dpe::CELL_BITS),
            ..DpeConfig::default()
        },
        ..FabricConfig::default()
    })
    .expect("default fabric");
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("graph fits");
    let one = vec![HashMap::from([(src, vec![0.25; dim])])];
    let single = device
        .execute_stream(&mut prog, &one, &StreamOptions::default())
        .expect("runs");
    device.reset_occupancy();
    let stream: Vec<_> = (0..stream_len)
        .map(|i| HashMap::from([(src, vec![(i % 3) as f64 / 4.0; dim])]))
        .collect();
    let streamed = device
        .execute_stream(&mut prog, &stream, &StreamOptions::default())
        .expect("runs");
    let cim = PlatformNumbers {
        batch1_latency: single.mean_latency(),
        throughput: streamed.throughput().expect("non-degenerate stream"),
        energy_per_item: single.energy,
    };

    // --- CPU ---------------------------------------------------------------
    let cpu_model = CpuModel::new(20).expect("20-core socket");
    let cpu_single = cpu_model.run_graph(&graph, 1);
    let cpu_stream = cpu_model.run_graph(&graph, stream_len.max(2));
    let cpu = PlatformNumbers {
        batch1_latency: cpu_single.latency,
        throughput: stream_len.max(2) as f64 / cpu_stream.latency.as_secs_f64(),
        energy_per_item: cpu_single.energy,
    };

    // --- GPU ---------------------------------------------------------------
    let gpu_model = GpuModel::new();
    let gpu_single = gpu_model.run_graph(&graph, 1);
    let gpu_batch = 128;
    let gpu_stream = gpu_model.run_graph(&graph, gpu_batch);
    let gpu = PlatformNumbers {
        batch1_latency: gpu_single.latency,
        throughput: gpu_batch as f64 / gpu_stream.latency.as_secs_f64(),
        energy_per_item: gpu_single.energy,
    };

    Sec6Report {
        model: format!("{dim}x{dim} dense layer + argmax"),
        cim,
        cpu,
        gpu,
    }
}

/// Renders the §VI comparison table.
pub fn render(r: &Sec6Report) -> String {
    let mut t = TextTable::new(["metric", "CIM (DPE)", "CPU", "GPU", "vs CPU", "vs GPU"]);
    t.row([
        "batch-1 latency".to_owned(),
        r.cim.batch1_latency.to_string(),
        r.cpu.batch1_latency.to_string(),
        r.gpu.batch1_latency.to_string(),
        ratio(r.latency_vs_cpu()),
        ratio(r.latency_vs_gpu()),
    ]);
    t.row([
        "throughput (items/s)".to_owned(),
        format!("{:.3e}", r.cim.throughput),
        format!("{:.3e}", r.cpu.throughput),
        format!("{:.3e}", r.gpu.throughput),
        ratio(r.throughput_vs_cpu()),
        ratio(r.throughput_vs_gpu()),
    ]);
    t.row([
        "energy / item".to_owned(),
        r.cim.energy_per_item.to_string(),
        r.cpu.energy_per_item.to_string(),
        r.gpu.energy_per_item.to_string(),
        ratio(r.power_vs_cpu()),
        ratio(r.power_vs_gpu()),
    ]);
    let mut out = format!("SEC6: Dot Product Engine vs CPU vs GPU ({})\n\n", r.model);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\npaper bands: latency 10-10^4x vs CPU (got {}), 10-10^2x vs GPU (got {});\n\
         throughput 10^3-10^6x vs CPU (got {}), ~GPU (got {});\n\
         power 10^3-10^6x vs CPU (got {}), 10-10^3x vs GPU (got {}).\n",
        ratio(r.latency_vs_cpu()),
        ratio(r.latency_vs_gpu()),
        ratio(r.throughput_vs_cpu()),
        ratio(r.throughput_vs_gpu()),
        ratio(r.power_vs_cpu()),
        ratio(r.power_vs_gpu()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared paper-scale run: the simulation grinds through ~10⁹
    /// analog cell-reads, so every test reads the same report.
    fn report() -> &'static Sec6Report {
        static REPORT: OnceLock<Sec6Report> = OnceLock::new();
        REPORT.get_or_init(|| run(4096, 6))
    }

    #[test]
    fn latency_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.latency_vs_cpu();
        let vs_gpu = r.latency_vs_gpu();
        assert!(
            (10.0..=10_000.0).contains(&vs_cpu),
            "latency vs CPU {vs_cpu} outside 10..10^4"
        );
        assert!(
            (10.0..=200.0).contains(&vs_gpu),
            "latency vs GPU {vs_gpu} outside ~10..10^2"
        );
    }

    #[test]
    fn throughput_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.throughput_vs_cpu();
        let vs_gpu = r.throughput_vs_gpu();
        assert!(
            (1_000.0..=1_000_000.0).contains(&vs_cpu),
            "throughput vs CPU {vs_cpu} outside 10^3..10^6"
        );
        assert!(
            (0.1..=10.0).contains(&vs_gpu),
            "throughput vs GPU {vs_gpu} should be comparable"
        );
    }

    #[test]
    fn power_lands_in_paper_bands() {
        let r = report();
        let vs_cpu = r.power_vs_cpu();
        let vs_gpu = r.power_vs_gpu();
        assert!(
            (1_000.0..=1_000_000.0).contains(&vs_cpu),
            "power vs CPU {vs_cpu} outside 10^3..10^6"
        );
        assert!(
            (10.0..=1_000.0).contains(&vs_gpu),
            "power vs GPU {vs_gpu} outside 10..10^3"
        );
    }

    #[test]
    fn render_summarizes_bands() {
        let s = render(report());
        assert!(s.contains("paper bands"));
        assert!(s.contains("4096x4096"));
    }
}
