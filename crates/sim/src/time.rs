//! Simulated time.
//!
//! All timing in the simulator is expressed in integer **picoseconds** so
//! that event ordering is exact and reproducible: no floating-point drift,
//! no platform-dependent rounding. A picosecond base unit comfortably spans
//! sub-nanosecond analog settling times (crossbar reads) up to multi-second
//! experiment horizons (`u64` picoseconds ≈ 213 days).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, in picoseconds.
///
/// `SimDuration` is the additive companion of [`SimTime`]: durations add to
/// times, times subtract to durations.
///
/// # Examples
///
/// ```
/// use cim_sim::time::SimDuration;
///
/// let latency = SimDuration::from_ns(100) + SimDuration::from_ps(500);
/// assert_eq!(latency.as_ps(), 100_500);
/// assert_eq!(latency.as_ns_f64(), 100.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from a floating-point nanosecond count,
    /// rounding to the nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration((ns * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a duration from a floating-point second count,
    /// rounding to the nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e12).round().max(0.0) as u64)
    }

    /// Duration in whole picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in nanoseconds as a float.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in microseconds as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Whether this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer count.
    #[inline]
    pub const fn checked_mul(self, n: u64) -> Option<SimDuration> {
        match self.0.checked_mul(n) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Scales the duration by a float factor, rounding to the nearest
    /// picosecond. Negative factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// An absolute instant on the simulated clock, in picoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use cim_sim::time::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_ns(5);
/// assert_eq!(t1 - t0, SimDuration::from_ns(5));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any reachable simulated instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from picoseconds since the epoch.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds since the epoch.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The duration since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    #[inline]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_ps())
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_ps();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_ps())
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_ps(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_ps(self.0))
    }
}

/// Converts a frequency in hertz to the period of one cycle.
///
/// # Panics
///
/// Panics if `hz` is not strictly positive.
///
/// # Examples
///
/// ```
/// use cim_sim::time::{period_of_hz, SimDuration};
///
/// assert_eq!(period_of_hz(1e9), SimDuration::from_ns(1));
/// ```
pub fn period_of_hz(hz: f64) -> SimDuration {
    assert!(hz > 0.0, "frequency must be positive, got {hz}");
    SimDuration::from_ps((1e12 / hz).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_unit_constructors_agree() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_ns(3);
        let b = SimDuration::from_ns(2);
        assert_eq!((a + b).as_ns_f64(), 5.0);
        assert_eq!((a - b).as_ns_f64(), 1.0);
        assert_eq!((a * 4).as_ns_f64(), 12.0);
        assert_eq!((a / 3).as_ps(), 1_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_ns_f64(1.5);
        assert_eq!(d.as_ps(), 1_500);
        assert_eq!(SimDuration::from_ns_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_ps(), 1);
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_ps(10);
        assert_eq!(d.mul_f64(1.26).as_ps(), 13);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_ordering_and_difference() {
        let t0 = SimTime::from_ns(10);
        let t1 = t0 + SimDuration::from_ns(7);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_ns(7));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_ns(7));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ps(12).to_string(), "12ps");
        assert_eq!(SimDuration::from_ns(1).to_string(), "1.000ns");
        assert_eq!(SimDuration::from_us(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert!(SimTime::from_ns(1).to_string().starts_with("t+"));
    }

    #[test]
    fn period_of_common_frequencies() {
        assert_eq!(period_of_hz(1e12).as_ps(), 1);
        assert_eq!(period_of_hz(2e9).as_ps(), 500);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn period_of_zero_panics() {
        let _ = period_of_hz(0.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn checked_mul_detects_overflow() {
        assert!(SimDuration::from_ps(u64::MAX).checked_mul(2).is_none());
        assert_eq!(
            SimDuration::from_ps(7).checked_mul(3),
            Some(SimDuration::from_ps(21))
        );
    }
}
