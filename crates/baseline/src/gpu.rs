//! GPU model (the paper's §VI "modern GPUs" comparator).
//!
//! A V100-class throughput machine: enormous peak FLOP rate and HBM
//! bandwidth, but every kernel pays a host launch overhead and weights
//! stream from HBM per kernel. The model captures exactly the two effects
//! §VI's latency comparison turns on: batch-1 inference is dominated by
//! launch overhead, and large batches amortize it until the roofline
//! binds.

use crate::cost::PlatformCost;
use cim_dataflow::graph::DataflowGraph;
use cim_dataflow::ops::Operation;
use cim_sim::calib::gpu as cal;
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// A GPU board.
///
/// # Examples
///
/// ```
/// use cim_baseline::gpu::GpuModel;
///
/// let gpu = GpuModel::new();
/// // Tiny kernel: launch overhead dominates.
/// let c = gpu.run_kernel(1_000, 1_000);
/// assert!(c.latency.as_us_f64() >= 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GpuModel {
    _private: (),
}

impl GpuModel {
    /// Creates the calibrated board model.
    pub fn new() -> Self {
        GpuModel { _private: () }
    }

    /// Runs one kernel of `flops` tensor-path FLOPs reading `hbm_bytes`
    /// from device memory. Includes one launch overhead.
    pub fn run_kernel(&self, flops: u64, hbm_bytes: u64) -> PlatformCost {
        let compute_s = flops as f64 / cal::TENSOR_FLOPS;
        let mem_s = hbm_bytes as f64 / cal::MEM_BW_BYTES;
        let latency = SimDuration::from_ps(cal::LAUNCH_OVERHEAD_PS)
            + SimDuration::from_ps(cal::HBM_LATENCY_PS)
            + SimDuration::from_secs_f64(compute_s.max(mem_s));
        let mut energy = Energy::from_fj(
            flops * cal::ENERGY_PER_FLOP_FJ + hbm_bytes * cal::ENERGY_PER_HBM_BYTE_FJ,
        );
        energy += Energy::from_joules(cal::STATIC_W * latency.as_secs_f64());
        PlatformCost { latency, energy }
    }

    /// Executes a dataflow graph `batch` times.
    ///
    /// Each `MatVec` node is one kernel launch processing the whole batch
    /// (the standard batched-GEMM mapping): weights stream from HBM once
    /// per launch, activations once per batch item. Non-matvec nodes fuse
    /// into the preceding kernel (standard elementwise fusion) and only
    /// add FLOPs.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run_graph(&self, graph: &DataflowGraph, batch: usize) -> PlatformCost {
        assert!(batch > 0, "batch must be positive");
        let mut total = PlatformCost::default();
        let mut fused_flops: u64 = 0;
        let mut launches = 0u32;
        for (_, node) in graph.nodes() {
            match &node.op {
                Operation::MatVec { rows, cols, .. } => {
                    let weight_bytes = (rows * cols * 8) as u64;
                    let act_bytes = ((rows + cols) * 8) as u64 * batch as u64;
                    let flops = node.op.flops() * batch as u64 + fused_flops;
                    fused_flops = 0;
                    launches += 1;
                    total = total.then(self.run_kernel(flops, weight_bytes + act_bytes));
                }
                op => fused_flops += op.flops() * batch as u64,
            }
        }
        if launches == 0 || fused_flops > 0 {
            // Graph with no matvec (or trailing elementwise work): one
            // catch-all kernel streaming the edge data.
            let m = graph.metrics();
            total = total.then(self.run_kernel(fused_flops, m.edge_bytes * batch as u64));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};

    fn mlp(dim: usize, layers: usize) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let src = b.add("in", Operation::Source { width: dim });
        let mut prev = src;
        for i in 0..layers {
            let mv = b.add(
                format!("fc{i}"),
                Operation::MatVec {
                    rows: dim,
                    cols: dim,
                    weights: vec![0.01; dim * dim],
                },
            );
            let act = b.add(
                format!("relu{i}"),
                Operation::Map {
                    func: Elementwise::Relu,
                    width: dim,
                },
            );
            b.chain(&[prev, mv, act]).unwrap();
            prev = act;
        }
        let out = b.add("out", Operation::Sink { width: dim });
        b.connect(prev, out, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn launch_overhead_dominates_batch_one() {
        let gpu = GpuModel::new();
        let g = mlp(64, 4);
        let c = gpu.run_graph(&g, 1);
        // 4 launches × ~5.4 us each.
        assert!(c.latency.as_us_f64() > 20.0);
        assert!(c.latency.as_us_f64() < 30.0);
    }

    #[test]
    fn batching_amortizes_launches() {
        let gpu = GpuModel::new();
        let g = mlp(256, 4);
        let t1 = gpu.run_graph(&g, 1).latency.as_secs_f64();
        let t256 = gpu.run_graph(&g, 256).latency.as_secs_f64() / 256.0;
        assert!(
            t1 / t256 > 20.0,
            "per-item latency should collapse with batch: {}",
            t1 / t256
        );
    }

    #[test]
    fn large_kernels_hit_the_roofline() {
        let gpu = GpuModel::new();
        // 1 TFLOP of compute, tiny memory traffic.
        let c = gpu.run_kernel(1_000_000_000_000, 1024);
        let expected = 1e12 / cal::TENSOR_FLOPS;
        let got = c.latency.as_secs_f64();
        assert!((got - expected).abs() / expected < 0.01, "got {got}");
    }

    #[test]
    fn memory_bound_kernels_limited_by_hbm() {
        let gpu = GpuModel::new();
        let bytes = 9_000_000_000u64; // 9 GB => 10 ms at 900 GB/s
        let c = gpu.run_kernel(1000, bytes);
        assert!((c.latency.as_secs_f64() - 0.01).abs() < 0.001);
    }

    #[test]
    fn energy_scales_with_work_plus_static() {
        let gpu = GpuModel::new();
        let small = gpu.run_kernel(0, 0);
        let big = gpu.run_kernel(1_000_000_000_000, 0);
        assert!(big.energy > small.energy * 10);
        assert!(small.energy.as_fj() > 0, "static power always burns");
    }

    #[test]
    fn graph_without_matvec_still_runs() {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 8 });
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width: 8,
            },
        );
        let k = b.add("k", Operation::Sink { width: 8 });
        b.chain(&[s, m, k]).unwrap();
        let g = b.build().unwrap();
        let c = GpuModel::new().run_graph(&g, 2);
        assert!(c.latency.as_us_f64() >= 5.0, "one catch-all launch");
    }
}
