//! Lifecycle integration: the runtime multiplexes tenants on one device
//! while self-programming patches and serviceability maintenance happen
//! around live jobs — the §III.E "native" end state where the fabric is
//! the computer.

use cim::crossbar::aging::{RetentionModel, YEAR_SECS};
use cim::crossbar::dpe::DpeConfig;
use cim::dataflow::program::Patch;
use cim::fabric::runtime::{CimRuntime, JobStatus};
use cim::fabric::serviceability::ServiceabilityMonitor;
use cim::fabric::{FabricConfig, MappingPolicy, StreamOptions};
use cim::sim::SeedTree;
use cim::workloads::nn::mlp_graph;
use std::collections::HashMap;

fn config() -> FabricConfig {
    FabricConfig {
        dpe: DpeConfig::ideal(),
        ..FabricConfig::default()
    }
}

#[test]
fn runtime_multiplexes_independent_tenants() {
    let mut rt = CimRuntime::new(config()).expect("boots");
    let (g1, s1, k1) = mlp_graph(&[16, 8, 4], SeedTree::new(1));
    let (g2, s2, k2) = mlp_graph(&[32, 16], SeedTree::new(2));
    let a = rt.submit(g1, MappingPolicy::LocalityAware).expect("admits");
    let b = rt.submit(g2, MappingPolicy::LocalityAware).expect("admits");
    assert!(matches!(a, JobStatus::Running(_)));
    assert!(matches!(b, JobStatus::Running(_)));

    let ra = rt
        .run(
            a.id(),
            &[HashMap::from([(s1, vec![0.5; 16])])],
            &StreamOptions::default(),
        )
        .expect("job A runs");
    let rb = rt
        .run(
            b.id(),
            &[HashMap::from([(s2, vec![0.25; 32])])],
            &StreamOptions::default(),
        )
        .expect("job B runs");
    assert_eq!(ra.outputs[0][&k1].len(), 4);
    assert_eq!(rb.outputs[0][&k2].len(), 16);
    assert!(rt.utilization() > 0.1);

    // Releasing A frees its units for reuse.
    let before = rt.free_units();
    rt.finish(a.id()).expect("finish A");
    assert!(rt.free_units() > before);
}

#[test]
fn queued_tenant_admits_after_release_and_computes_correctly() {
    // A device sized so two jobs cannot coexist.
    let mut rt = CimRuntime::new(FabricConfig {
        mesh_width: 3,
        mesh_height: 1,
        units_per_tile: 2,
        dpe: DpeConfig::ideal(),
        ..FabricConfig::default()
    })
    .expect("boots");
    let (g1, s1, _) = mlp_graph(&[8, 4, 2], SeedTree::new(3)); // 5 nodes of 6 units
    let (g2, s2, k2) = mlp_graph(&[4, 2], SeedTree::new(4)); // 3 nodes
    let a = rt.submit(g1, MappingPolicy::RoundRobin).expect("admits");
    let b = rt.submit(g2, MappingPolicy::RoundRobin).expect("queues");
    assert!(matches!(b, JobStatus::Queued(_)));

    // Run A, finish it, B admits and runs.
    rt.run(
        a.id(),
        &[HashMap::from([(s1, vec![0.5; 8])])],
        &StreamOptions::default(),
    )
    .expect("A runs");
    let admitted = rt.finish(a.id()).expect("finish");
    assert_eq!(admitted, vec![b.id()]);
    let rb = rt
        .run(
            b.id(),
            &[HashMap::from([(s2, vec![1.0; 4])])],
            &StreamOptions::default(),
        )
        .expect("B runs after admission");
    assert_eq!(rb.outputs[0][&k2].len(), 2);
}

#[test]
fn patch_then_service_then_run_all_interoperate() {
    use cim::dataflow::graph::GraphBuilder;
    use cim::dataflow::ops::{Elementwise, Operation};
    use cim::fabric::self_prog::apply_patch;
    use cim::fabric::CimDevice;
    use cim::sim::SimTime;

    let mut device = CimDevice::new(config()).expect("device");
    let mut b = GraphBuilder::new();
    let s = b.add("s", Operation::Source { width: 8 });
    let mv = b.add(
        "mv",
        Operation::MatVec {
            rows: 8,
            cols: 8,
            weights: (0..64)
                .map(|i| if i % 9 == 0 { 1.0 } else { 0.0 })
                .collect(),
        },
    );
    let m = b.add(
        "m",
        Operation::Map {
            func: Elementwise::Identity,
            width: 8,
        },
    );
    let k = b.add("k", Operation::Sink { width: 8 });
    b.chain(&[s, mv, m, k]).expect("chain");
    let g = b.build().expect("valid");
    let mut prog = device
        .load_program(&g, MappingPolicy::LocalityAware)
        .expect("fits");

    // 1. Patch the activation via self-programming.
    apply_patch(
        &mut device,
        &mut prog,
        &Patch::SetMapFunc {
            node: 2,
            func: Elementwise::Scale(10.0),
        },
        SimTime::ZERO,
    )
    .expect("patch applies");

    // 2. Age the device and service it.
    let mut mon = ServiceabilityMonitor::new(&device, RetentionModel::default(), 0.05, 0.99);
    mon.advance(&mut device, 10.0 * YEAR_SECS);
    let actions = mon
        .proactive_service(&mut device, &mut prog)
        .expect("services");
    assert!(!actions.is_empty(), "a decade of drift needs service");

    // 3. The serviced, patched program still computes the right thing.
    let report = device
        .execute_stream(
            &mut prog,
            &[HashMap::from([(s, vec![1.0; 8])])],
            &StreamOptions::default(),
        )
        .expect("runs");
    let out = &report.outputs[0][&k];
    // Identity matrix × 1.0, then ×10 gain, refreshed from golden weights.
    for v in out {
        assert!((v - 10.0).abs() < 0.5, "expected ~10, got {v}");
    }
}
