//! Neural-network building blocks for the §VI experiments.
//!
//! Provides random-weight MLP graphs (latency/throughput/power
//! benchmarks), a synthetic classification task with an analytically
//! derived template classifier (accuracy benchmarks — no training loop
//! needed), and helpers to score predictions.

use cim_dataflow::graph::{DataflowGraph, GraphBuilder, NodeRef};
use cim_dataflow::ops::{Elementwise, Operation, Reduction};
use cim_sim::rng::normal;
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// A dataflow MLP: `dims[0] → dims[1] → … → dims.last()`, ReLU between
/// layers, random Gaussian weights scaled 1/√fan_in.
///
/// Returns the graph plus its source and sink.
///
/// # Panics
///
/// Panics if `dims` has fewer than two entries or contains a zero.
///
/// # Examples
///
/// ```
/// use cim_workloads::nn::mlp_graph;
/// use cim_sim::SeedTree;
///
/// let (g, _src, _sink) = mlp_graph(&[64, 32, 10], SeedTree::new(1));
/// assert_eq!(g.metrics().state_bytes, (64 * 32 + 32 * 10) * 8);
/// ```
pub fn mlp_graph(dims: &[usize], seeds: SeedTree) -> (DataflowGraph, NodeRef, NodeRef) {
    assert!(dims.len() >= 2, "an MLP needs at least two dims");
    assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
    let mut rng = seeds.rng("mlp-weights");
    let mut b = GraphBuilder::new();
    let src = b.add("input", Operation::Source { width: dims[0] });
    let mut prev = src;
    for (i, w) in dims.windows(2).enumerate() {
        let (rows, cols) = (w[0], w[1]);
        let scale = 1.0 / (rows as f64).sqrt();
        let weights: Vec<f64> = (0..rows * cols)
            .map(|_| normal(&mut rng, 0.0, scale))
            .collect();
        let fc = b.add(
            format!("fc{i}"),
            Operation::MatVec {
                rows,
                cols,
                weights,
            },
        );
        b.connect(prev, fc, 0)
            .expect("widths match by construction");
        prev = fc;
        if i + 2 < dims.len() {
            let act = b.add(
                format!("relu{i}"),
                Operation::Map {
                    func: Elementwise::Relu,
                    width: cols,
                },
            );
            b.connect(prev, act, 0).expect("widths match");
            prev = act;
        }
    }
    let sink = b.add(
        "output",
        Operation::Sink {
            width: *dims.last().expect("non-empty"),
        },
    );
    b.connect(prev, sink, 0).expect("widths match");
    (b.build().expect("structurally valid MLP"), src, sink)
}

/// A labelled synthetic classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature vectors.
    pub samples: Vec<Vec<f64>>,
    /// Ground-truth class per sample.
    pub labels: Vec<usize>,
    /// Per-class mean vectors (the generative model).
    pub class_means: Vec<Vec<f64>>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.class_means.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_means.len()
    }
}

/// Generates a Gaussian-mixture classification task: `classes` unit-norm
/// mean vectors in `dim` dimensions, `per_class` samples each, with
/// isotropic noise of the given standard deviation.
///
/// # Panics
///
/// Panics for zero classes/dim/per_class or negative noise.
pub fn synthetic_classification(
    classes: usize,
    dim: usize,
    per_class: usize,
    noise: f64,
    seeds: SeedTree,
) -> Dataset {
    assert!(
        classes > 0 && dim > 0 && per_class > 0,
        "degenerate dataset"
    );
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut rng = seeds.rng("dataset");
    let class_means: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let mut v: Vec<f64> = (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect();
    let mut samples = Vec::with_capacity(classes * per_class);
    let mut labels = Vec::with_capacity(classes * per_class);
    // Interleave classes so stream prefixes stay balanced.
    for i in 0..per_class {
        for (c, mean) in class_means.iter().enumerate() {
            let _ = i;
            let s: Vec<f64> = mean
                .iter()
                .map(|&m| m + normal(&mut rng, 0.0, noise))
                .collect();
            samples.push(s);
            labels.push(c);
        }
    }
    Dataset {
        samples,
        labels,
        class_means,
    }
}

/// Builds the matched-filter (template) classifier for a dataset: a
/// `dim × classes` matvec whose columns are the class means, followed by
/// argmax. For a Gaussian mixture with equal priors this is the Bayes
/// classifier, so accuracy is high without any training loop.
pub fn template_classifier(dataset: &Dataset) -> (DataflowGraph, NodeRef, NodeRef) {
    let dim = dataset.dim();
    let classes = dataset.classes();
    let mut weights = vec![0.0; dim * classes];
    for (c, mean) in dataset.class_means.iter().enumerate() {
        for (d, &m) in mean.iter().enumerate() {
            weights[d * classes + c] = m;
        }
    }
    let mut b = GraphBuilder::new();
    let src = b.add("features", Operation::Source { width: dim });
    let mv = b.add(
        "templates",
        Operation::MatVec {
            rows: dim,
            cols: classes,
            weights,
        },
    );
    let arg = b.add(
        "argmax",
        Operation::Reduce {
            kind: Reduction::ArgMax,
            width: classes,
        },
    );
    let sink = b.add("class", Operation::Sink { width: 1 });
    b.chain(&[src, mv, arg, sink]).expect("widths match");
    (b.build().expect("valid classifier"), src, sink)
}

/// Fraction of predictions (argmax indices as `f64`) matching labels.
///
/// # Panics
///
/// Panics if lengths differ or `predictions` is empty.
pub fn accuracy(predictions: &[f64], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "no predictions");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, &l)| p.round() as usize == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Generates a batch of random input vectors in `[-1, 1]` for throughput
/// benchmarks.
pub fn random_inputs(n: usize, dim: usize, seeds: SeedTree) -> Vec<Vec<f64>> {
    let mut rng = seeds.rng("inputs");
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_dataflow::interpreter::execute;
    use std::collections::HashMap;

    #[test]
    fn mlp_graph_shape() {
        let (g, src, sink) = mlp_graph(&[16, 8, 4], SeedTree::new(3));
        // source + 2 matvec + 1 relu + sink
        assert_eq!(g.node_count(), 5);
        let out = execute(&g, &HashMap::from([(src, vec![0.1; 16])])).unwrap();
        assert_eq!(out[&sink].len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two dims")]
    fn mlp_needs_two_dims() {
        let _ = mlp_graph(&[4], SeedTree::new(0));
    }

    #[test]
    fn dataset_is_balanced_and_reproducible() {
        let d1 = synthetic_classification(4, 16, 25, 0.1, SeedTree::new(9));
        let d2 = synthetic_classification(4, 16, 25, 0.1, SeedTree::new(9));
        assert_eq!(d1.len(), 100);
        assert_eq!(d1.samples, d2.samples, "same seed, same data");
        let mut counts = [0usize; 4];
        for &l in &d1.labels {
            counts[l] += 1;
        }
        assert_eq!(counts, [25; 4]);
        assert_eq!(d1.dim(), 16);
        assert_eq!(d1.classes(), 4);
    }

    #[test]
    fn template_classifier_is_accurate_at_low_noise() {
        let data = synthetic_classification(8, 64, 40, 0.15, SeedTree::new(5));
        let (g, src, sink) = template_classifier(&data);
        let mut preds = Vec::new();
        for s in &data.samples {
            let out = execute(&g, &HashMap::from([(src, s.clone())])).unwrap();
            preds.push(out[&sink][0]);
        }
        let acc = accuracy(&preds, &data.labels);
        assert!(acc > 0.95, "Bayes-ish classifier should be accurate: {acc}");
    }

    #[test]
    fn accuracy_degrades_with_noise() {
        let mut accs = Vec::new();
        for noise in [0.1, 0.5, 1.2] {
            let data = synthetic_classification(8, 32, 30, noise, SeedTree::new(6));
            let (g, src, sink) = template_classifier(&data);
            let mut preds = Vec::new();
            for s in &data.samples {
                let out = execute(&g, &HashMap::from([(src, s.clone())])).unwrap();
                preds.push(out[&sink][0]);
            }
            accs.push(accuracy(&preds, &data.labels));
        }
        assert!(accs[0] > accs[2], "noise must hurt accuracy: {accs:?}");
        assert!(accs[2] > 1.0 / 8.0, "still above chance");
    }

    #[test]
    fn random_inputs_in_range() {
        let xs = random_inputs(10, 32, SeedTree::new(1));
        assert_eq!(xs.len(), 10);
        assert!(xs.iter().flatten().all(|&v| (-1.0..1.0).contains(&v)));
    }
}
