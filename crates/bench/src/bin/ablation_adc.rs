//! ABL-ADC: ADC resolution vs accuracy vs energy.
fn main() {
    let points = cim_bench::experiments::ablations::run_adc(&[2, 3, 4, 5, 6, 8, 10, 12]);
    print!("{}", cim_bench::experiments::ablations::render_adc(&points));
}
