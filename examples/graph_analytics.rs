//! Graph analytics with mid-stream fault recovery (paper §II.B
//! "Memory-centric computing" + §V.A failure tolerance).
//!
//! PageRank's stationary adjacency state is exactly the data the paper
//! says is "hard to reproduce after reboots/failures": here it lives in
//! crossbar conductances. We stream rank updates through the fabric, kill
//! the micro-unit holding the adjacency block mid-stream, and watch the
//! engine detect, re-map to a spare, reprogram, and replay — no items
//! lost.
//!
//! Run with `cargo run --release --example graph_analytics`.

use cim::fabric::reliability::{run_fault_campaign, ScheduledFault};
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::workloads::graphs::{pagerank, rmat, PageRank};
use cim::workloads::Workload;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Native PageRank for reference: a real RMAT graph.
    let g = rmat(10, 8, cim::sim::SeedTree::new(7));
    let (ranks, delta) = pagerank(&g, 15, 0.85);
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "native PageRank: {} nodes / {} edges, top node {} (rank {:.5}), final delta {:.2e}",
        g.nodes(),
        g.edges(),
        top.0,
        top.1,
        delta
    );

    // 2. The dataflow form on the CIM fabric.
    let wl = PageRank::default();
    let df = wl.dataflow().expect("pagerank lowers to dataflow");
    let chars = wl.characterize();
    println!(
        "characterization: {:.2} flops/byte traffic, parallelism {:.0}, {:.1} MB resident",
        chars.operational_intensity(),
        chars.parallelism(),
        chars.footprint_bytes as f64 / 1e6
    );

    let mut device = CimDevice::new(FabricConfig::default())?;
    let mut prog = device.load_program(&df.graph, MappingPolicy::LocalityAware)?;

    // A stream of rank vectors (power iteration steps as stream items).
    let n = 64;
    let items: Vec<_> = (0..12)
        .map(|_| HashMap::from([(df.source, vec![1.0 / n as f64; n])]))
        .collect();

    // 3. Kill the adjacency-holding unit before item 6.
    let matvec_node = df
        .graph
        .nodes()
        .find(|(_, node)| matches!(node.op, cim::dataflow::ops::Operation::MatVec { .. }))
        .map(|(r, _)| r.index())
        .expect("pagerank step has a matvec");
    let faults = [ScheduledFault {
        before_item: 6,
        node: matvec_node,
    }];
    let report = run_fault_campaign(
        &mut device,
        &mut prog,
        &items,
        &StreamOptions::default(),
        &faults,
    )?;

    println!(
        "stream: {} items in, {} items out ({} recoveries, {} delayed)",
        items.len(),
        report.stream.outputs.len(),
        report.stream.recoveries.len(),
        report.items_delayed
    );
    for r in &report.stream.recoveries {
        println!(
            "recovery: item {} — unit {} failed, remapped to unit {}, overhead {} \
             (dominated by reprogramming the adjacency into a spare crossbar)",
            r.item, r.failed_unit, r.replacement, r.overhead
        );
    }

    // 4. Results before and after the fault agree.
    let before: &Vec<f64> = &report.stream.outputs[0][&df.sink];
    let after: &Vec<f64> = &report.stream.outputs[11][&df.sink];
    let drift: f64 = before
        .iter()
        .zip(after)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!(
        "max |rank delta| between pre- and post-fault outputs: {drift:.3e} \
         (same input, same answer — upstream buffering lost nothing)"
    );
    println!("total stream energy: {}", report.stream.energy);
    Ok(())
}
