//! Multi-device serving fleet: tenant-aware routing and whole-device
//! failover (paper §IV.B/C at fleet scale, Table 1 made live).
//!
//! [`crate::service::CimService`] fronts one device; a production story
//! needs a *fleet*. [`CimFleet`] owns N simulated [`CimRuntime`] devices
//! and adds the router tier above them: each tenant class is sharded
//! onto a replica set of devices (resident programs on every replica),
//! arrivals are routed to the least-outstanding live replica, and a
//! whole-device outage ([`FleetEvent::DeviceDown`]) fences the device —
//! requests caught mid-execution are *voided* (their work discarded,
//! never double-counted) and re-dispatched to a surviving replica after
//! a short detection delay. [`FleetEvent::DeviceUp`] re-admits the
//! repaired device into routing.
//!
//! The contrast with a conventional cluster is the failover currency:
//! CIM replicas hold *resident* programmed conductances, so recovery
//! pays only detection plus re-execution, not the
//! checkpoint-shipping/state-transfer penalty `baseline::cluster`
//! charges (50 ms detection + state over the network). The fleet report
//! keeps the full arrival record so `baseline::serving` can replay the
//! identical workload through the cluster model — one harness, two
//! platforms, same chaos schedule.
//!
//! ```text
//!            ┌─ router: shard + replica set per class ─┐
//! arrivals ──┤  least-outstanding live replica          ├──► device 0..N
//!            └─ DeviceDown: void + re-route + detect ───┘
//! ```
//!
//! Everything runs in simulated time on the in-tree RNG: reports are
//! bit-identical at every `CIM_THREADS` setting, and
//! [`FleetReport::fingerprint`] condenses the whole run (outcomes,
//! dispositions, output bits) into one comparable word even when
//! outcome storage is turned off for soaks.

use crate::config::FabricConfig;
use crate::error::{FabricError, Result};
use crate::runtime::{CimRuntime, JobId, JobStatus};
use crate::service::{
    backoff_delay, weighted_pick, Disposition, LatencyStats, RequestOutcome, ServiceConfig,
    ServiceEvent,
};
use cim_dataflow::graph::{DataflowGraph, NodeRef};
use cim_sim::energy::Energy;
use cim_sim::rng::{exponential, splitmix64, Rng};
use cim_sim::stats::Samples;
use cim_sim::telemetry::{ComponentId, Telemetry, TelemetryLevel};
use cim_sim::time::{SimDuration, SimTime};
use cim_sim::SeedTree;
use std::collections::HashMap;

/// How the router picks among a class's live replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// The replica with the fewest requests still in flight; ties break
    /// round-robin on the request id so equally idle replicas share
    /// load instead of funnelling everything to the first.
    #[default]
    LeastOutstanding,
    /// Strict rotation by request id, ignoring load.
    RoundRobin,
}

/// Fleet-level knobs on top of the per-device [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Devices in the fleet.
    pub devices: usize,
    /// Replicas per tenant class (resident copies on distinct devices).
    pub replicas: usize,
    /// Per-device fabric template; device `i` gets a distinct derived
    /// seed so stochastic models decorrelate across the fleet.
    pub fabric: FabricConfig,
    /// Admission/retry policy, applied per device queue.
    pub service: ServiceConfig,
    /// Router policy.
    pub routing: RoutingPolicy,
    /// Delay between a device dying under a request and the router
    /// re-dispatching it to a replica — the CIM failover currency:
    /// replicas are already resident, so this is detection, not state
    /// transfer.
    pub failover_detect: SimDuration,
    /// Keep per-request outcomes on the report. Turn off for multi-
    /// million-request soaks; the fingerprint and counters still cover
    /// every request.
    pub keep_outcomes: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 4,
            replicas: 2,
            fabric: FabricConfig::default(),
            service: ServiceConfig::default(),
            routing: RoutingPolicy::LeastOutstanding,
            failover_detect: SimDuration::from_us(2),
            keep_outcomes: true,
        }
    }
}

/// A scheduled fleet-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Whole-device outage: the device is fenced from routing and every
    /// request caught mid-execution on it is voided and re-routed.
    DeviceDown {
        /// Simulated time the device dies.
        at: SimTime,
        /// Fleet device index.
        device: usize,
    },
    /// The device returns to service and rejoins routing.
    DeviceUp {
        /// Simulated time the device is healthy again.
        at: SimTime,
        /// Fleet device index.
        device: usize,
    },
    /// A device-local serviceability event (unit/link faults, repairs,
    /// injections), with unit/tile coordinates local to that device.
    Device {
        /// Fleet device index.
        device: usize,
        /// The device-local event.
        event: ServiceEvent,
    },
    /// An arrival burst at the fleet front door (see
    /// [`ServiceEvent::ArrivalBurst`]).
    ArrivalBurst {
        /// Simulated time the burst begins.
        at: SimTime,
        /// Arrivals beyond the first that land simultaneously.
        extra: u16,
    },
    /// Power loss on one device: it is fenced like a
    /// [`FleetEvent::DeviceDown`] with a known end, its volatile state
    /// is lost, and the [`crate::runtime::CimRuntime::power_cycle`]
    /// recovery pass restores the nonvolatile image when it rejoins
    /// routing at `at + restart_after`. In-flight work is voided and
    /// re-routed exactly like any whole-device failover.
    PowerLoss {
        /// Simulated time power is lost.
        at: SimTime,
        /// Fleet device index.
        device: usize,
        /// Outage duration: the device rejoins at `at + restart_after`.
        restart_after: SimDuration,
    },
}

impl FleetEvent {
    /// The simulated time this event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            FleetEvent::DeviceDown { at, .. }
            | FleetEvent::DeviceUp { at, .. }
            | FleetEvent::ArrivalBurst { at, .. }
            | FleetEvent::PowerLoss { at, .. } => at,
            FleetEvent::Device { event, .. } => event.at(),
        }
    }
}

/// Per-device accounting on the fleet report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceLoad {
    /// Execution attempts dispatched to this device.
    pub dispatched: u64,
    /// Attempts that completed here and counted (the request's final
    /// execution).
    pub served: u64,
    /// Attempts whose work was discarded because the device died before
    /// the result could leave it (re-routed elsewhere; never counted
    /// twice).
    pub voided: u64,
    /// Energy charged on this device's meter.
    pub energy: Energy,
}

/// SLO accounting for one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-request outcomes in arrival order; empty when
    /// [`FleetConfig::keep_outcomes`] is off (the fingerprint still
    /// covers them).
    pub outcomes: Vec<RequestOutcome>,
    /// `(arrival, class)` for every offered request, in order — the
    /// extracted workload `baseline::serving` replays through the
    /// cluster model for the like-for-like Table 1 comparison. Always
    /// recorded.
    pub arrivals: Vec<(SimTime, usize)>,
    /// Requests offered by the arrival process.
    pub offered: usize,
    /// Requests that passed admission on some device.
    pub admitted: usize,
    /// Requests shed at admission (queue full, or no live replica).
    pub shed: usize,
    /// Requests completed within deadline.
    pub completed: usize,
    /// Requests that finished or gave up past deadline.
    pub timed_out: usize,
    /// Requests whose retry budget ran out.
    pub failed: usize,
    /// §V.A mid-stream spare recoveries under successful attempts.
    pub recoveries: usize,
    /// Retry attempts beyond each request's first (not counting
    /// failover re-routes).
    pub retries: usize,
    /// Whole-device failover re-routes performed by the router.
    pub failovers: usize,
    /// Power-loss crashes recovered by devices (each one a
    /// [`crate::runtime::CimRuntime::power_cycle`] pass).
    pub crashes: usize,
    /// Crashes whose restore left non-pristine volatile state. Always 0
    /// under the shipped recovery pass; nonzero only when
    /// [`ServiceConfig::restore_clears_volatile`] is deliberately
    /// weakened.
    pub dirty_restores: usize,
    /// Latency distribution of requests that ran to completion.
    pub latency: LatencyStats,
    /// Per-device dispatch/void/energy accounting.
    pub per_device: Vec<DeviceLoad>,
    /// Total energy across every device meter.
    pub energy: Energy,
    /// FNV-1a digest of every outcome (id, class, arrival, disposition,
    /// output bits) — order-sensitive, collected streamingly so soaks
    /// with `keep_outcomes: false` still get an exact equality check.
    pub fingerprint: u64,
    /// SLO alert timeline (empty unless observability is enabled).
    pub alerts: Vec<cim_obs::AlertEvent>,
    /// `kind:"series"` JSON-lines export of the fleet time-series
    /// (empty unless observability is enabled).
    pub series_jsonl: String,
}

impl FleetReport {
    /// No admitted request was lost: every one completed or is a
    /// deliberate, accounted SLO miss.
    pub fn zero_lost(&self) -> bool {
        self.failed == 0 && self.completed + self.timed_out == self.admitted
    }

    /// Fraction of offered requests completed within deadline.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.completed as f64 / self.offered as f64
    }

    /// Total requests whose final execution each device served — must
    /// equal `completed + timed_out` when nothing double-executes.
    pub fn served_total(&self) -> u64 {
        self.per_device.iter().map(|d| d.served).sum()
    }

    /// Total voided (discarded, re-routed) executions — must equal
    /// `failovers` when every failover voids exactly one attempt.
    pub fn voided_total(&self) -> u64 {
        self.per_device.iter().map(|d| d.voided).sum()
    }
}

/// Streaming FNV-1a over little-endian words (same parameters as the
/// chaos runner's digest, so cross-layer comparisons stay cheap).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

struct FleetClass {
    name: String,
    src: NodeRef,
    sink: NodeRef,
    input_width: usize,
    deadline: SimDuration,
    weight: u32,
    /// `(device, resident job)` per replica, preference order.
    replicas: Vec<(usize, JobId)>,
}

struct FleetDevice {
    rt: CimRuntime,
    /// Departure times of requests whose final execution ran here.
    in_flight: Vec<SimTime>,
    dispatched: u64,
    served: u64,
    voided: u64,
    crashes: u64,
    dirty_restores: u64,
}

/// What one dispatch attempt on a device came back with.
enum Attempt {
    /// `(finished, recovered, output)` — the device survived to deliver.
    Delivered(SimTime, bool, Vec<f64>),
    /// The device died at the contained time before the result left it.
    DeviceLost(SimTime),
    /// Recoverable fault (no spare / no route): back off and retry.
    Recoverable,
}

/// The router tier over N CIM devices.
///
/// # Examples
///
/// ```
/// use cim_fabric::fleet::{CimFleet, FleetConfig};
/// use cim_sim::time::SimDuration;
/// use cim_sim::SeedTree;
/// use cim_dataflow::graph::GraphBuilder;
/// use cim_dataflow::ops::Operation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fleet = CimFleet::new(FleetConfig::default(), SeedTree::new(1))?;
/// let mut b = GraphBuilder::new();
/// let s = b.add("in", Operation::Source { width: 4 });
/// let k = b.add("out", Operation::Sink { width: 4 });
/// b.connect(s, k, 0)?;
/// fleet.register_class("echo", b.build()?, s, k, SimDuration::from_us(500), 1)?;
/// let report = fleet.run_open_loop(50_000.0, 20, &[])?;
/// assert_eq!(report.offered, 20);
/// assert!(report.zero_lost());
/// # Ok(())
/// # }
/// ```
pub struct CimFleet {
    cfg: FleetConfig,
    devices: Vec<FleetDevice>,
    classes: Vec<FleetClass>,
    seeds: SeedTree,
    /// Rotating shard anchor: consecutive classes start their replica
    /// sets on consecutive devices, spreading tenants across the fleet.
    next_shard: usize,
    next_request: u64,
    tel: Telemetry,
    obs: Option<cim_obs::ObsConfig>,
}

impl std::fmt::Debug for CimFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CimFleet")
            .field("devices", &self.devices.len())
            .field("classes", &self.classes.len())
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl CimFleet {
    /// Boots `cfg.devices` fresh devices. Device `i` derives its fabric
    /// seed from the template seed, so the fleet's stochastic models
    /// (noise, drift, cell faults) decorrelate across devices while the
    /// whole fleet stays a pure function of one root seed.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] for zero devices or a
    /// replica count outside `1..=devices`; propagates device
    /// construction failures.
    pub fn new(cfg: FleetConfig, seeds: SeedTree) -> Result<Self> {
        if cfg.devices == 0 {
            return Err(FabricError::InvalidConfig {
                reason: "fleet needs at least one device".into(),
            });
        }
        if cfg.replicas == 0 || cfg.replicas > cfg.devices {
            return Err(FabricError::InvalidConfig {
                reason: format!(
                    "replica count {} must be in 1..={} (device count)",
                    cfg.replicas, cfg.devices
                ),
            });
        }
        assert!(cfg.service.max_attempts >= 1, "need at least one attempt");
        assert!(
            cfg.service.queue_capacity >= 1,
            "queue capacity must be positive"
        );
        let mut devices = Vec::with_capacity(cfg.devices);
        for i in 0..cfg.devices {
            let fabric = FabricConfig {
                seed: splitmix64(cfg.fabric.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..cfg.fabric.clone()
            };
            devices.push(FleetDevice {
                rt: CimRuntime::new(fabric)?,
                in_flight: Vec::new(),
                dispatched: 0,
                served: 0,
                voided: 0,
                crashes: 0,
                dirty_restores: 0,
            });
        }
        Ok(CimFleet {
            cfg,
            devices,
            classes: Vec::new(),
            seeds,
            next_shard: 0,
            next_request: 0,
            tel: Telemetry::new(TelemetryLevel::Metrics),
            obs: None,
        })
    }

    /// Attaches the observability pipeline to subsequent
    /// [`CimFleet::run_open_loop`] calls. Empty
    /// [`cim_obs::ObsConfig::tracks`] default to
    /// [`cim_obs::TrackSpec::fleet_defaults`] scoped to this fleet's
    /// device count.
    pub fn enable_observability(&mut self, cfg: cim_obs::ObsConfig) {
        self.obs = Some(cfg);
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Device `i`'s runtime, read-only (placement/telemetry inspection).
    pub fn runtime(&self, device: usize) -> &CimRuntime {
        &self.devices[device].rt
    }

    /// Device `i`'s runtime, mutable (fault targeting).
    pub fn runtime_mut(&mut self, device: usize) -> &mut CimRuntime {
        &mut self.devices[device].rt
    }

    /// The devices hosting a class's replicas, preference order.
    pub fn replica_devices(&self, class: usize) -> Vec<usize> {
        self.classes
            .get(class)
            .map(|c| c.replicas.iter().map(|&(d, _)| d).collect())
            .unwrap_or_default()
    }

    /// Registered class names, in registration order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Registers a tenant class: loads its graph as a resident program
    /// on [`FleetConfig::replicas`] distinct devices (the replica set,
    /// anchored at a rotating shard cursor) and returns the class index.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityExceeded`] if any replica cannot
    /// be resident (the placements made so far are rolled back), or
    /// propagates programming failures.
    pub fn register_class(
        &mut self,
        name: &str,
        graph: DataflowGraph,
        src: NodeRef,
        sink: NodeRef,
        deadline: SimDuration,
        weight: u32,
    ) -> Result<usize> {
        let input_width = graph.node(src).op.output_width();
        let anchor = self.next_shard;
        let mut replicas = Vec::with_capacity(self.cfg.replicas);
        for k in 0..self.cfg.replicas {
            let d = (anchor + k) % self.devices.len();
            let nodes = graph.node_count();
            let free = self.devices[d].rt.free_units();
            let status = match self.devices[d]
                .rt
                .submit(graph.clone(), self.cfg.service.mapping)
            {
                Ok(s) => s,
                Err(e) => {
                    self.rollback(&replicas);
                    return Err(e);
                }
            };
            match status {
                JobStatus::Running(id) => replicas.push((d, id)),
                // Resident or bust, on every replica: a queued copy
                // could never serve and would wedge that device's FIFO.
                JobStatus::Queued(_) => {
                    self.rollback(&replicas);
                    return Err(FabricError::CapacityExceeded {
                        needed: nodes,
                        available: free,
                    });
                }
            }
        }
        self.next_shard = (self.next_shard + 1) % self.devices.len();
        self.classes.push(FleetClass {
            name: name.to_string(),
            src,
            sink,
            input_width,
            deadline,
            weight,
            replicas,
        });
        Ok(self.classes.len() - 1)
    }

    fn rollback(&mut self, placed: &[(usize, JobId)]) {
        for &(d, job) in placed {
            // Freshly submitted and never run; finish cannot fail.
            let _ = self.devices[d].rt.finish(job);
        }
    }

    /// Live replicas of `class` at time `when` (devices not fenced by a
    /// down interval), as indices into the class's replica list.
    fn live_replicas(
        &self,
        class: usize,
        when: SimTime,
        downs: &[Vec<(SimTime, SimTime)>],
    ) -> Vec<usize> {
        self.classes[class]
            .replicas
            .iter()
            .enumerate()
            .filter(|&(_, &(d, _))| !down_at(&downs[d], when))
            .map(|(i, _)| i)
            .collect()
    }

    /// Routes one request to a replica index, or `None` if every
    /// replica is fenced.
    fn route(
        &mut self,
        class: usize,
        id: u64,
        when: SimTime,
        downs: &[Vec<(SimTime, SimTime)>],
    ) -> Option<usize> {
        let live = self.live_replicas(class, when, downs);
        if live.is_empty() {
            return None;
        }
        let k = self.classes[class].replicas.len();
        match self.cfg.routing {
            RoutingPolicy::RoundRobin => {
                let want = (id as usize) % k;
                // The wanted replica, or the next live one after it.
                (0..k)
                    .map(|off| (want + off) % k)
                    .find(|r| live.contains(r))
            }
            RoutingPolicy::LeastOutstanding => {
                // Purge departed requests so counts reflect `when`, then
                // pick the emptiest queue; ties rotate on the request id.
                for &r in &live {
                    let d = self.classes[class].replicas[r].0;
                    self.devices[d].in_flight.retain(|&dep| dep > when);
                }
                live.iter().copied().min_by_key(|&r| {
                    let d = self.classes[class].replicas[r].0;
                    (
                        self.devices[d].in_flight.len(),
                        (k + r - id as usize % k) % k,
                    )
                })
            }
        }
    }

    /// One execution attempt on replica `r` of `class`, honouring the
    /// device's scheduled down intervals: a result that would land
    /// after the device dies is voided, not delivered.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        class: usize,
        r: usize,
        when: SimTime,
        input: &[f64],
        downs: &[Vec<(SimTime, SimTime)>],
        dev_events: &[Vec<ServiceEvent>],
        dev_cursor: &mut [usize],
        dev_comp: &[ComponentId],
    ) -> Result<Attempt> {
        let (d, job) = self.classes[class].replicas[r];
        let src = self.classes[class].src;
        self.tel.counter_add(dev_comp[d], "dispatched", 1);
        // Apply this device's events that are due, exactly once.
        while let Some(ev) = dev_events[d].get(dev_cursor[d]) {
            if ev.at() > when {
                break;
            }
            if let ServiceEvent::PowerLoss { .. } = ev {
                // The crash is in the past (its down interval already
                // fenced routing and voided straddled work); run the
                // recovery pass now, before this attempt touches state.
                let pristine = self.devices[d]
                    .rt
                    .power_cycle(self.cfg.service.restore_clears_volatile);
                self.devices[d].crashes += 1;
                self.tel.counter_add(dev_comp[d], "crashes", 1);
                if !pristine {
                    self.devices[d].dirty_restores += 1;
                    self.tel.counter_add(dev_comp[d], "dirty_restores", 1);
                }
            } else if let Some(inj) = ev.to_injection() {
                self.devices[d].rt.device_mut().apply_injection(&inj);
            }
            dev_cursor[d] += 1;
        }
        let opts = crate::engine::StreamOptions {
            start: when,
            injections: dev_events[d][dev_cursor[d]..]
                .iter()
                .filter_map(ServiceEvent::to_injection)
                .collect(),
            ..crate::engine::StreamOptions::default()
        };
        self.devices[d].dispatched += 1;
        let item = HashMap::from([(src, input.to_vec())]);
        match self.devices[d]
            .rt
            .run(job, std::slice::from_ref(&item), &opts)
        {
            Ok(report) => {
                let finished = report.completed[0];
                // Did the device die while this request was on it? The
                // schedule is known up front, so the check covers every
                // interval, not just ones already applied.
                if let Some(died) = first_down_start_in(&downs[d], when, finished) {
                    self.devices[d].voided += 1;
                    return Ok(Attempt::DeviceLost(died));
                }
                let sink = self.classes[class].sink;
                let output = report.outputs[0][&sink].clone();
                Ok(Attempt::Delivered(
                    finished,
                    !report.recoveries.is_empty(),
                    output,
                ))
            }
            Err(
                FabricError::NoSpareAvailable { .. }
                | FabricError::Noc(cim_noc::NocError::NoRoute { .. }),
            ) => Ok(Attempt::Recoverable),
            Err(e) => Err(e),
        }
    }

    /// Serves an open-loop arrival stream of `n` requests at `rate_hz`
    /// across the fleet. The arrival/class/input RNG streams match
    /// [`crate::service::CimService::run_open_loop`] draw for draw, so a
    /// fleet of one device sees the same workload a single service
    /// does.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] for no classes, all-zero
    /// weights, or an event naming a device outside the fleet;
    /// propagates non-recoverable execution errors.
    pub fn run_open_loop(
        &mut self,
        rate_hz: f64,
        n: usize,
        events: &[FleetEvent],
    ) -> Result<FleetReport> {
        if self.classes.is_empty() {
            return Err(FabricError::InvalidConfig {
                reason: "no request class registered".into(),
            });
        }
        let weights: Vec<u32> = self.classes.iter().map(|c| c.weight).collect();
        if weights.iter().all(|&w| w == 0) {
            return Err(FabricError::InvalidConfig {
                reason: "all class weights are zero".into(),
            });
        }
        assert!(rate_hz > 0.0, "offered rate must be positive");

        let mut events = events.to_vec();
        events.sort_by_key(FleetEvent::at);
        let n_devices = self.devices.len();
        // Split the fleet schedule into its three consumers: down
        // intervals per device (router fencing), device-local service
        // events (engine injections), and front-door bursts.
        let mut downs: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n_devices];
        let mut dev_events: Vec<Vec<ServiceEvent>> = vec![Vec::new(); n_devices];
        let mut bursts: Vec<(SimTime, u16)> = Vec::new();
        for ev in &events {
            match *ev {
                FleetEvent::DeviceDown { at, device } => {
                    check_device(device, n_devices)?;
                    // Ignore a down landing inside an existing outage,
                    // or inside the detection window of the previous
                    // down's start: the router has not yet re-admitted
                    // the device, so a flap inside the window is one
                    // outage, not two — fencing it twice would void
                    // attempts that were never dispatched.
                    let shadowed = down_at(&downs[device], at)
                        || downs[device]
                            .last()
                            .is_some_and(|&(s, _)| at < s + self.cfg.failover_detect);
                    if !shadowed {
                        downs[device].push((at, SimTime::MAX));
                    }
                }
                FleetEvent::DeviceUp { at, device } => {
                    check_device(device, n_devices)?;
                    // An up with no matching open down (the down was
                    // shadowed, or never happened) is a no-op.
                    if let Some(last) = downs[device].last_mut() {
                        if last.1 == SimTime::MAX && last.0 <= at {
                            last.1 = at;
                        }
                    }
                }
                FleetEvent::PowerLoss {
                    at,
                    device,
                    restart_after,
                } => {
                    check_device(device, n_devices)?;
                    // A crash while the device is already dark (or still
                    // inside the detection window) kills nothing new:
                    // full no-op, same shadowing rule as DeviceDown.
                    let shadowed = down_at(&downs[device], at)
                        || downs[device]
                            .last()
                            .is_some_and(|&(s, _)| at < s + self.cfg.failover_detect);
                    if !shadowed {
                        // Fence like an outage with a known end, and
                        // queue the recovery pass on the device's event
                        // feed so the power cycle applies exactly once,
                        // before the next attempt touches state.
                        downs[device].push((at, at + restart_after));
                        dev_events[device].push(ServiceEvent::PowerLoss { at, restart_after });
                    }
                }
                FleetEvent::Device { device, event } => {
                    check_device(device, n_devices)?;
                    dev_events[device].push(event);
                }
                FleetEvent::ArrivalBurst { at, extra } => bursts.push((at, extra)),
            }
        }
        let mut dev_cursor = vec![0usize; n_devices];
        let mut burst_idx = 0usize;
        let mut burst_left = 0u32;

        let mut arrivals_rng = self.seeds.rng("arrivals");
        let mut class_rng = self.seeds.rng("classes");
        let mut input_rng = self.seeds.rng("inputs");

        let tel = self.tel.clone();
        let comp = tel.component("fleet");
        let dev_comp: Vec<_> = (0..n_devices)
            .map(|i| tel.component(&format!("fleet/dev{i}")))
            .collect();
        let mut obs = self.obs.as_ref().map(|cfg| {
            let mut cfg = cfg.clone();
            if cfg.tracks.is_empty() {
                cfg.tracks = cim_obs::TrackSpec::fleet_defaults(n_devices);
            }
            let tenants: Vec<(String, SimDuration)> = self
                .classes
                .iter()
                .map(|c| (c.name.clone(), c.deadline))
                .collect();
            cim_obs::Observability::new(&cfg, &tenants, &tel)
        });

        let keep = self.cfg.keep_outcomes;
        let mut outcomes = Vec::with_capacity(if keep { n } else { 0 });
        let mut arrivals = Vec::with_capacity(n);
        let mut fnv = Fnv::new();
        let mut now = SimTime::ZERO;
        let mut latencies = Samples::new();
        let (mut admitted, mut shed, mut completed, mut timed_out, mut failed) = (0, 0, 0, 0, 0);
        let (mut recoveries, mut retries, mut failovers) = (0usize, 0usize, 0usize);

        for _ in 0..n {
            if burst_left > 0 {
                burst_left -= 1; // simultaneous with the previous arrival
            } else {
                now += SimDuration::from_secs_f64(exponential(&mut arrivals_rng, rate_hz));
                while burst_idx < bursts.len() && bursts[burst_idx].0 <= now {
                    burst_left += u32::from(bursts[burst_idx].1);
                    burst_idx += 1;
                }
            }
            let class = weighted_pick(&mut class_rng, &weights);
            let width = self.classes[class].input_width;
            let input: Vec<f64> = (0..width).map(|_| input_rng.gen_range(-1.0..1.0)).collect();

            let id = self.next_request;
            self.next_request += 1;
            arrivals.push((now, class));
            tel.counter_add(comp, "offered", 1);

            // Admission: route to a live replica and check its queue.
            // Both "every replica is down" and "the routed queue is
            // full" shed — fail fast at the front door rather than
            // letting doomed work occupy the fleet.
            let routed = self.route(class, id, now, &downs).and_then(|r| {
                let d = self.classes[class].replicas[r].0;
                self.devices[d].in_flight.retain(|&dep| dep > now);
                (self.devices[d].in_flight.len() < self.cfg.service.queue_capacity).then_some(r)
            });
            let disposition = match routed {
                None => {
                    shed += 1;
                    tel.counter_add(comp, "shed", 1);
                    Disposition::Shed
                }
                Some(r) => {
                    admitted += 1;
                    tel.counter_add(comp, "admitted", 1);
                    match self.dispatch(
                        class,
                        r,
                        now,
                        &input,
                        &downs,
                        &dev_events,
                        &mut dev_cursor,
                        &dev_comp,
                        &mut failovers,
                    ) {
                        Ok((finished, attempts, recovered, output, final_r)) => {
                            retries += (attempts - 1) as usize;
                            if recovered {
                                recoveries += 1;
                            }
                            tel.counter_add(comp, "retries", u64::from(attempts - 1));
                            tel.counter_add(comp, "recoveries", u64::from(recovered));
                            let d = self.classes[class].replicas[final_r].0;
                            self.devices[d].in_flight.push(finished);
                            self.devices[d].served += 1;
                            tel.counter_add(dev_comp[d], "served", 1);
                            let lat = finished.saturating_since(now);
                            tel.record(comp, "latency_ns", lat.as_ps() / 1000);
                            latencies.record(lat.as_us_f64());
                            if lat <= self.classes[class].deadline && !output.is_empty() {
                                completed += 1;
                                tel.counter_add(comp, "completed", 1);
                                Disposition::Completed {
                                    finished,
                                    attempts,
                                    recovered,
                                    output,
                                }
                            } else {
                                timed_out += 1;
                                tel.counter_add(comp, "timed_out", 1);
                                Disposition::TimedOut { finished, attempts }
                            }
                        }
                        Err(FabricError::RetriesExhausted { attempts }) => {
                            retries += (attempts - 1) as usize;
                            failed += 1;
                            tel.counter_add(comp, "retries", u64::from(attempts - 1));
                            tel.counter_add(comp, "failed", 1);
                            Disposition::Failed { attempts }
                        }
                        Err(e) => return Err(e),
                    }
                }
            };
            tel.gauge_set(
                comp,
                "queue_depth",
                self.devices
                    .iter()
                    .map(|d| d.in_flight.len())
                    .sum::<usize>() as f64,
            );
            for (i, dev) in self.devices.iter().enumerate() {
                tel.gauge_set(dev_comp[i], "in_flight", dev.in_flight.len() as f64);
            }
            if let Some(o) = obs.as_mut() {
                let (at, observed) = match &disposition {
                    Disposition::Completed { finished, .. } => (
                        *finished,
                        cim_obs::Observed::Done {
                            latency: finished.saturating_since(now),
                        },
                    ),
                    Disposition::TimedOut { finished, .. } => {
                        (*finished, cim_obs::Observed::TimedOut)
                    }
                    Disposition::Shed => (now, cim_obs::Observed::Shed),
                    Disposition::Failed { .. } => (now, cim_obs::Observed::Failed),
                };
                o.observe_request(class, at, observed);
                tel.with_registry(|r| o.sample_to(now, r));
            }
            // Fingerprint every outcome, storage or not.
            fnv.write_u64(id);
            fnv.write_u64(class as u64);
            fnv.write_u64(now.as_ps());
            match &disposition {
                Disposition::Completed {
                    finished,
                    attempts,
                    recovered,
                    output,
                } => {
                    fnv.write_u64(1);
                    fnv.write_u64(finished.as_ps());
                    fnv.write_u64(u64::from(*attempts));
                    fnv.write_u64(u64::from(*recovered));
                    for v in output {
                        fnv.write_u64(v.to_bits());
                    }
                }
                Disposition::TimedOut { finished, attempts } => {
                    fnv.write_u64(2);
                    fnv.write_u64(finished.as_ps());
                    fnv.write_u64(u64::from(*attempts));
                }
                Disposition::Shed => fnv.write_u64(3),
                Disposition::Failed { attempts } => {
                    fnv.write_u64(4);
                    fnv.write_u64(u64::from(*attempts));
                }
            }
            if keep {
                outcomes.push(RequestOutcome {
                    id,
                    class,
                    arrival: now,
                    disposition,
                });
            }
        }

        let latency = match latencies.percentiles(&[50.0, 95.0, 99.0]) {
            Some(ps) => LatencyStats {
                p50_us: ps[0],
                p95_us: ps[1],
                p99_us: ps[2],
                mean_us: latencies.mean(),
                max_us: latencies.percentile(100.0).unwrap_or(0.0),
            },
            None => LatencyStats::default(),
        };
        tel.counter_add(comp, "failovers", failovers as u64);
        tel.gauge_set(comp, "p99_us", latency.p99_us);
        tel.gauge_set(comp, "goodput", completed as f64 / n.max(1) as f64);

        let per_device: Vec<DeviceLoad> = self
            .devices
            .iter()
            .map(|d| DeviceLoad {
                dispatched: d.dispatched,
                served: d.served,
                voided: d.voided,
                energy: d.rt.device().meter().total(),
            })
            .collect();
        let energy = per_device
            .iter()
            .fold(Energy::ZERO, |acc, d| acc + d.energy);

        let (alerts, series_jsonl) = match obs {
            Some(mut o) => {
                tel.with_registry(|r| o.finalize(now, r));
                let qm = cim_sim::analytic::QueueModel::new(
                    rate_hz,
                    SimDuration::from_ns_f64(latency.mean_us * 1_000.0),
                );
                let synthetic =
                    (self.cfg.fabric.sim_mode == cim_sim::SimMode::Analytic).then_some((&qm, now));
                let rep = o.finish(synthetic);
                (rep.alerts, rep.series_jsonl)
            }
            None => (Vec::new(), String::new()),
        };

        Ok(FleetReport {
            outcomes,
            arrivals,
            offered: n,
            admitted,
            shed,
            completed,
            timed_out,
            failed,
            recoveries,
            retries,
            failovers,
            crashes: self.devices.iter().map(|d| d.crashes).sum::<u64>() as usize,
            dirty_restores: self.devices.iter().map(|d| d.dirty_restores).sum::<u64>() as usize,
            latency,
            per_device,
            energy,
            fingerprint: fnv.0,
            alerts,
            series_jsonl,
        })
    }

    /// Dispatches one admitted request with whole-device failover and
    /// deadline-aware bounded retry. Returns
    /// `(finished, attempts, recovered, output, final_replica)`.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        class: usize,
        first: usize,
        arrival: SimTime,
        input: &[f64],
        downs: &[Vec<(SimTime, SimTime)>],
        dev_events: &[Vec<ServiceEvent>],
        dev_cursor: &mut [usize],
        dev_comp: &[ComponentId],
        failovers: &mut usize,
    ) -> Result<(SimTime, u32, bool, Vec<f64>, usize)> {
        let deadline = arrival + self.classes[class].deadline;
        let id = self.next_request - 1;
        let mut when = arrival;
        let mut attempts = 0u32;
        let mut replica = Some(first);
        loop {
            let Some(r) = replica else {
                // Every replica fenced right now: burn a retry waiting
                // for a repair, like any other recoverable fault.
                attempts += 1;
                if attempts >= self.cfg.service.max_attempts {
                    return Err(FabricError::RetriesExhausted { attempts });
                }
                when += backoff_delay(self.cfg.service.backoff_base, attempts);
                if when > deadline {
                    return Ok((when, attempts, false, Vec::new(), first));
                }
                replica = self.route(class, id, when, downs);
                continue;
            };
            attempts += 1;
            match self.attempt(
                class, r, when, input, downs, dev_events, dev_cursor, dev_comp,
            )? {
                Attempt::Delivered(finished, recovered, output) => {
                    return Ok((finished, attempts, recovered, output, r));
                }
                Attempt::DeviceLost(died) => {
                    // Whole-device failover: the voided attempt never
                    // counts; after the detection delay the router
                    // re-dispatches to a surviving replica. Not charged
                    // against the retry budget — the device died, the
                    // request did nothing wrong — but the deadline
                    // still applies.
                    *failovers += 1;
                    attempts -= 1;
                    when = died + self.cfg.failover_detect;
                    if when > deadline {
                        return Ok((when, attempts.max(1), false, Vec::new(), r));
                    }
                    replica = self.route(class, id, when, downs);
                }
                Attempt::Recoverable => {
                    if attempts >= self.cfg.service.max_attempts {
                        return Err(FabricError::RetriesExhausted { attempts });
                    }
                    when += backoff_delay(self.cfg.service.backoff_base, attempts);
                    if when > deadline {
                        return Ok((when, attempts, false, Vec::new(), r));
                    }
                    replica = self.route(class, id, when, downs);
                }
            }
        }
    }
}

fn check_device(device: usize, n: usize) -> Result<()> {
    if device >= n {
        return Err(FabricError::InvalidConfig {
            reason: format!("event names device {device}, fleet has {n}"),
        });
    }
    Ok(())
}

/// Whether `t` falls inside any `[start, end)` down interval.
fn down_at(downs: &[(SimTime, SimTime)], t: SimTime) -> bool {
    downs.iter().any(|&(s, e)| s <= t && t < e)
}

/// The earliest down interval starting in `(after, until]`, if any — a
/// request executing over that window loses its device.
fn first_down_start_in(
    downs: &[(SimTime, SimTime)],
    after: SimTime,
    until: SimTime,
) -> Option<SimTime> {
    downs
        .iter()
        .map(|&(s, _)| s)
        .filter(|&s| after < s && s <= until)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};

    fn tiny_graph(width: usize) -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width });
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width,
            },
        );
        let k = b.add("k", Operation::Sink { width });
        b.chain(&[s, m, k]).expect("chain");
        (b.build().expect("valid"), s, k)
    }

    fn small_fleet_config(devices: usize, replicas: usize) -> FleetConfig {
        FleetConfig {
            devices,
            replicas,
            fabric: FabricConfig {
                mesh_width: 2,
                mesh_height: 2,
                units_per_tile: 1,
                dpe: DpeConfig::ideal(),
                ..FabricConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    fn fleet(devices: usize, replicas: usize) -> CimFleet {
        let mut f =
            CimFleet::new(small_fleet_config(devices, replicas), SeedTree::new(0x5EED)).unwrap();
        let (g, s, k) = tiny_graph(4);
        f.register_class("tiny", g, s, k, SimDuration::from_us(100), 1)
            .expect("resident");
        f
    }

    #[test]
    fn fleet_serves_and_spreads_load() {
        let mut f = fleet(4, 2);
        let r = f.run_open_loop(10_000.0, 100, &[]).expect("serves");
        assert_eq!(r.offered, 100);
        assert_eq!(r.completed, 100);
        assert!(r.zero_lost());
        assert_eq!(r.failovers, 0);
        assert_eq!(r.served_total(), 100);
        assert_eq!(r.voided_total(), 0);
        // Least-outstanding with rotating ties: both replicas serve.
        let dispatched: Vec<u64> = r.per_device.iter().map(|d| d.dispatched).collect();
        let active = dispatched.iter().filter(|&&d| d > 0).count();
        assert_eq!(active, 2, "both replica devices serve: {dispatched:?}");
        assert!(r.energy > Energy::ZERO);
    }

    #[test]
    fn classes_shard_across_the_fleet() {
        // 8 units per device: two resident 3-node classes fit on each.
        let mut cfg = small_fleet_config(4, 2);
        cfg.fabric.units_per_tile = 2;
        let mut f = CimFleet::new(cfg, SeedTree::new(7)).unwrap();
        for i in 0..4 {
            let (g, s, k) = tiny_graph(4);
            f.register_class(&format!("c{i}"), g, s, k, SimDuration::from_us(100), 1)
                .expect("resident");
        }
        // Rotating shard anchor: class i anchors at device i.
        for i in 0..4 {
            assert_eq!(f.replica_devices(i), vec![i, (i + 1) % 4]);
        }
    }

    #[test]
    fn device_down_fails_over_without_loss() {
        let mut f = fleet(4, 2);
        // Probe the span of the run so the outage lands mid-stream.
        let span = {
            let mut probe = fleet(4, 2);
            let r = probe.run_open_loop(10_000.0, 200, &[]).expect("probe");
            r.arrivals.last().unwrap().0
        };
        let down_at = SimTime::from_ps(span.as_ps() / 4);
        let up_at = SimTime::from_ps(span.as_ps() / 2);
        let events = [
            FleetEvent::DeviceDown {
                at: down_at,
                device: 0,
            },
            FleetEvent::DeviceUp {
                at: up_at,
                device: 0,
            },
        ];
        let r = f.run_open_loop(10_000.0, 200, &events).expect("serves");
        assert!(r.zero_lost(), "whole-device failover loses nothing: {r:?}");
        assert_eq!(r.failed, 0);
        // No double-execution: each surviving request served exactly
        // once, each failover voided exactly one attempt.
        assert_eq!(r.served_total() as usize, r.completed + r.timed_out);
        assert_eq!(r.voided_total() as usize, r.failovers);
        // The fenced window routed around device 0 and recovered after.
        assert!(
            r.per_device[0].dispatched > 0,
            "device 0 serves before and after the outage"
        );
    }

    #[test]
    fn power_loss_fails_over_and_recovers_without_loss() {
        let mut f = fleet(4, 2);
        let span = {
            let mut probe = fleet(4, 2);
            let r = probe.run_open_loop(10_000.0, 200, &[]).expect("probe");
            r.arrivals.last().unwrap().0
        };
        // Crash each replica of the class once, at staggered points.
        let events = [
            FleetEvent::PowerLoss {
                at: SimTime::from_ps(span.as_ps() / 4),
                device: 0,
                restart_after: SimDuration::from_us(20),
            },
            FleetEvent::PowerLoss {
                at: SimTime::from_ps(span.as_ps() / 2),
                device: 1,
                restart_after: SimDuration::from_us(20),
            },
        ];
        let r = f.run_open_loop(10_000.0, 200, &events).expect("serves");
        assert!(r.zero_lost(), "power loss loses nothing: {r:?}");
        assert_eq!(r.served_total() as usize, r.completed + r.timed_out);
        assert_eq!(r.voided_total() as usize, r.failovers);
        assert!(r.crashes >= 1, "a recovery pass ran: {r:?}");
        assert_eq!(r.dirty_restores, 0, "the shipped recovery restores clean");
    }

    #[test]
    fn shadowed_crash_and_flapping_down_are_no_ops() {
        // A second DeviceDown inside the 2 µs detection window of the
        // first, and a PowerLoss inside the open outage, must both be
        // no-ops: one outage, one failover currency, accounts intact.
        let mut f = fleet(4, 2);
        let span = {
            let mut probe = fleet(4, 2);
            let r = probe.run_open_loop(10_000.0, 200, &[]).expect("probe");
            r.arrivals.last().unwrap().0
        };
        let down = SimTime::from_ps(span.as_ps() / 4);
        let events = [
            FleetEvent::DeviceDown {
                at: down,
                device: 0,
            },
            // Flap: inside the detection window of the first down.
            FleetEvent::DeviceDown {
                at: down + SimDuration::from_us(1),
                device: 0,
            },
            // Crash while already dark: nothing left to kill.
            FleetEvent::PowerLoss {
                at: down + SimDuration::from_us(10),
                device: 0,
                restart_after: SimDuration::from_us(5),
            },
            FleetEvent::DeviceUp {
                at: SimTime::from_ps(span.as_ps() / 2),
                device: 0,
            },
            // Up with no matching open down: a no-op too.
            FleetEvent::DeviceUp {
                at: SimTime::from_ps(span.as_ps() / 2 + 1_000_000),
                device: 0,
            },
        ];
        let r = f.run_open_loop(10_000.0, 200, &events).expect("serves");
        assert!(r.zero_lost(), "{r:?}");
        assert_eq!(
            r.voided_total() as usize,
            r.failovers,
            "unmatched events must not skew the voided accounting: {r:?}"
        );
        assert_eq!(r.crashes, 0, "the shadowed crash never fires");
        assert_eq!(r.served_total() as usize, r.completed + r.timed_out);
    }

    #[test]
    fn all_replicas_down_sheds_at_the_door() {
        let mut f = fleet(2, 1);
        // The only replica of the class is down for the entire run.
        let events = [FleetEvent::DeviceDown {
            at: SimTime::ZERO,
            device: 0,
        }];
        let r = f.run_open_loop(10_000.0, 50, &events).expect("serves");
        assert_eq!(r.shed, 50, "no live replica: everything sheds");
        assert_eq!(r.admitted, 0);
        assert!(r.zero_lost(), "shed is accounted, not lost");
    }

    #[test]
    fn reports_and_fingerprints_are_deterministic() {
        let run = |keep: bool| {
            let mut cfg = small_fleet_config(4, 2);
            cfg.keep_outcomes = keep;
            let mut f = CimFleet::new(cfg, SeedTree::new(0x5EED)).unwrap();
            let (g, s, k) = tiny_graph(4);
            f.register_class("tiny", g, s, k, SimDuration::from_us(100), 1)
                .expect("resident");
            let events = [
                FleetEvent::DeviceDown {
                    at: SimTime::from_ns(500_000),
                    device: 1,
                },
                FleetEvent::DeviceUp {
                    at: SimTime::from_ns(2_000_000),
                    device: 1,
                },
            ];
            f.run_open_loop(50_000.0, 120, &events).expect("serves")
        };
        let a = run(true);
        let b = run(true);
        assert_eq!(a, b, "double runs are bit-identical");
        let slim = run(false);
        assert!(slim.outcomes.is_empty(), "soak mode stores no outcomes");
        assert_eq!(
            slim.fingerprint, a.fingerprint,
            "fingerprint is storage-independent"
        );
        assert_eq!(slim.arrivals, a.arrivals);
    }

    #[test]
    fn analytic_mode_serves_like_detailed_at_light_load() {
        let run = |mode: cim_sim::SimMode| {
            let mut cfg = small_fleet_config(4, 2);
            cfg.fabric.sim_mode = mode;
            let mut f = CimFleet::new(cfg, SeedTree::new(0x5EED)).unwrap();
            let (g, s, k) = tiny_graph(4);
            f.register_class("tiny", g, s, k, SimDuration::from_us(100), 1)
                .expect("resident");
            f.run_open_loop(10_000.0, 50, &[]).expect("serves")
        };
        let det = run(cim_sim::SimMode::Detailed);
        let ana = run(cim_sim::SimMode::Analytic);
        assert_eq!(det.completed, ana.completed);
        assert_eq!(det.outcomes, ana.outcomes);
    }

    #[test]
    fn invalid_configs_and_events_error() {
        assert!(CimFleet::new(
            FleetConfig {
                devices: 0,
                ..small_fleet_config(4, 2)
            },
            SeedTree::new(1)
        )
        .is_err());
        assert!(CimFleet::new(small_fleet_config(2, 3), SeedTree::new(1)).is_err());
        let mut f = fleet(2, 1);
        let events = [FleetEvent::DeviceDown {
            at: SimTime::ZERO,
            device: 9,
        }];
        assert!(matches!(
            f.run_open_loop(1_000.0, 1, &events),
            Err(FabricError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn observability_rides_the_fleet() {
        let mut f = fleet(4, 2);
        f.enable_observability(cim_obs::ObsConfig::default());
        let r = f.run_open_loop(10_000.0, 60, &[]).expect("serves");
        assert!(!r.series_jsonl.is_empty(), "fleet series exported");
        assert!(
            r.series_jsonl.contains("\"component\":\"fleet\""),
            "fleet-scoped series present"
        );
        assert!(
            r.series_jsonl.contains("\"component\":\"fleet/dev0\""),
            "per-device series present"
        );
        for line in r.series_jsonl.lines() {
            cim_sim::telemetry::validate_jsonl_line(line).expect("series schema");
        }
        assert!(r.alerts.is_empty(), "healthy fleet fires no alerts");
    }
}
