//! # cim-bench — experiment harness
//!
//! Regenerates every table and figure of *Computing In-Memory, Revisited*
//! (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded results). Each experiment lives in [`experiments`] as a
//! `run()` returning a typed report plus a `render()` producing the
//! table text; thin binaries under `src/bin/` print them, and the
//! benches under `benches/` (on the in-tree [`harness`]) time the
//! underlying hot paths.

pub mod experiments;
pub mod harness;
pub mod table;
pub mod telemetry_out;
