//! Von Neumann ⇄ CIM integration modes (paper Fig 6, §III.E–F).
//!
//! The paper sketches an evolution: CIM starts as a **slave** accelerator
//! behind a host (per-item offload), becomes **cooperative** (batched
//! host interaction), then **integrated** (coherent shared memory), and
//! finally **native** (CIM runs the whole pipeline, no host in the loop).
//! Each step removes host overhead from the datapath; this module makes
//! the four modes measurable on the same workload.

use crate::device::CimDevice;
use crate::engine::{MappedProgram, StreamOptions, StreamReport};
use crate::error::Result;
use cim_dataflow::graph::NodeRef;
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;
use std::collections::HashMap;

/// How the CIM device is attached to the Von Neumann host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntegrationMode {
    /// Classic accelerator: the host orchestrates *every item* over a
    /// PCIe-class link (Fig 6 step 1).
    Slave,
    /// The host submits batches; the device runs them autonomously
    /// (Fig 6 step 2).
    Cooperative,
    /// Coherent attach (CXL/GenZ-class): shared memory, low-overhead
    /// submission (Fig 6 step 3).
    Integrated,
    /// CIM-native: sources and sinks live in the fabric; the host is not
    /// on the datapath at all (Fig 6 step 4).
    Native,
}

impl IntegrationMode {
    /// All modes in evolution order.
    pub const ALL: [IntegrationMode; 4] = [
        IntegrationMode::Slave,
        IntegrationMode::Cooperative,
        IntegrationMode::Integrated,
        IntegrationMode::Native,
    ];

    /// Host-side orchestration overhead charged per item (Slave) or per
    /// batch (Cooperative / Integrated).
    fn host_overhead(self) -> SimDuration {
        match self {
            // User-space driver round trip + interrupt: ~10 us.
            IntegrationMode::Slave => SimDuration::from_us(10),
            IntegrationMode::Cooperative => SimDuration::from_us(10),
            // Coherent doorbell: ~1 us.
            IntegrationMode::Integrated => SimDuration::from_us(1),
            IntegrationMode::Native => SimDuration::ZERO,
        }
    }

    /// Host↔device transfer bandwidth for input/output payloads.
    fn link_bandwidth(self) -> Option<f64> {
        match self {
            // PCIe gen3 x16 effective.
            IntegrationMode::Slave | IntegrationMode::Cooperative => Some(12.5e9),
            // Coherent fabric.
            IntegrationMode::Integrated => Some(50e9),
            IntegrationMode::Native => None,
        }
    }

    /// Host CPU power while orchestrating, watts.
    const HOST_ACTIVE_W: f64 = 100.0;
}

/// Cost report for one integration mode.
#[derive(Debug, Clone)]
pub struct IntegrationReport {
    /// The mode measured.
    pub mode: IntegrationMode,
    /// Per-item end-to-end latency (host + transfer + fabric).
    pub per_item_latency: SimDuration,
    /// Total energy (host + transfer + fabric).
    pub energy: Energy,
    /// The underlying fabric report.
    pub fabric: StreamReport,
}

/// Runs `inputs` through a loaded program under the given integration
/// mode and prices the host side of the interaction.
///
/// Each call is an isolated measurement: device occupancy is reset first
/// so successive modes are compared on equal footing.
///
/// # Errors
///
/// Propagates fabric execution errors.
pub fn run_integrated(
    device: &mut CimDevice,
    prog: &mut MappedProgram,
    inputs: &[HashMap<NodeRef, Vec<f64>>],
    mode: IntegrationMode,
) -> Result<IntegrationReport> {
    device.reset_occupancy();
    let fabric = device.execute_stream(prog, inputs, &StreamOptions::default())?;
    let items = inputs.len().max(1) as u64;

    // Bytes crossing the host link per item: inputs + outputs.
    let bytes_per_item: u64 = {
        let in_bytes: usize = inputs
            .first()
            .map(|m| m.values().map(|v| v.len() * 8).sum())
            .unwrap_or(0);
        let out_bytes: usize = fabric
            .outputs
            .first()
            .map(|m| m.values().map(|v| v.len() * 8).sum())
            .unwrap_or(0);
        (in_bytes + out_bytes) as u64
    };

    let transfer_per_item = mode
        .link_bandwidth()
        .map(|bw| SimDuration::from_secs_f64(bytes_per_item as f64 / bw))
        .unwrap_or(SimDuration::ZERO);

    let host_per_item = match mode {
        IntegrationMode::Slave => mode.host_overhead(),
        IntegrationMode::Cooperative | IntegrationMode::Integrated => mode.host_overhead() / items,
        IntegrationMode::Native => SimDuration::ZERO,
    };

    // Sustained per-item cost: the pipeline's makespan divided by items
    // (mean residence latency would double-count queueing).
    let fabric_per_item = fabric.makespan() / items;
    let per_item_latency = fabric_per_item + transfer_per_item + host_per_item;

    let host_busy = (host_per_item + transfer_per_item) * items;
    let host_energy = Energy::from_joules(IntegrationMode::HOST_ACTIVE_W * host_busy.as_secs_f64());
    Ok(IntegrationReport {
        mode,
        per_item_latency,
        energy: fabric.energy + host_energy,
        fabric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::mapper::MappingPolicy;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::{DataflowGraph, GraphBuilder};
    use cim_dataflow::ops::{Elementwise, Operation};

    fn setup() -> (CimDevice, DataflowGraph, NodeRef) {
        let d = CimDevice::new(FabricConfig {
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .unwrap();
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 32 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 32,
                cols: 16,
                weights: vec![0.05; 512],
            },
        );
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width: 16,
            },
        );
        let k = b.add("k", Operation::Sink { width: 16 });
        b.chain(&[s, mv, m, k]).unwrap();
        (d, b.build().unwrap(), s)
    }

    fn batch(src: NodeRef, n: usize) -> Vec<HashMap<NodeRef, Vec<f64>>> {
        (0..n)
            .map(|i| HashMap::from([(src, vec![(i % 3) as f64 / 3.0; 32])]))
            .collect()
    }

    #[test]
    fn evolution_strictly_improves_latency() {
        let (mut d, g, s) = setup();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let inputs = batch(s, 16);
        let mut last = None;
        for mode in IntegrationMode::ALL {
            let r = run_integrated(&mut d, &mut prog, &inputs, mode).unwrap();
            if let Some(prev) = last {
                assert!(
                    r.per_item_latency < prev,
                    "{mode:?} must beat the previous mode ({prev} vs {})",
                    r.per_item_latency
                );
            }
            last = Some(r.per_item_latency);
        }
    }

    #[test]
    fn slave_mode_is_host_dominated() {
        let (mut d, g, s) = setup();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let inputs = batch(s, 4);
        let slave = run_integrated(&mut d, &mut prog, &inputs, IntegrationMode::Slave).unwrap();
        let fabric_per_item = slave.fabric.makespan() / 4;
        assert!(
            slave.per_item_latency > fabric_per_item * 2,
            "host overhead should dominate a small kernel"
        );
    }

    #[test]
    fn native_mode_adds_nothing() {
        let (mut d, g, s) = setup();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let inputs = batch(s, 4);
        let native = run_integrated(&mut d, &mut prog, &inputs, IntegrationMode::Native).unwrap();
        assert_eq!(native.per_item_latency, native.fabric.makespan() / 4);
        assert_eq!(native.energy, native.fabric.energy);
    }

    #[test]
    fn cooperative_amortizes_with_batch_size() {
        let (mut d, g, s) = setup();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let small = run_integrated(
            &mut d,
            &mut prog,
            &batch(s, 2),
            IntegrationMode::Cooperative,
        )
        .unwrap();
        let large = run_integrated(
            &mut d,
            &mut prog,
            &batch(s, 64),
            IntegrationMode::Cooperative,
        )
        .unwrap();
        assert!(large.per_item_latency < small.per_item_latency);
    }
}
