//! Graph-analytics workload (Table 2 row "Graph problems").
//!
//! An RMAT (Kronecker) graph generator plus PageRank. Graph analytics is
//! the paper's motivating memory-centric workload: huge stationary state,
//! light arithmetic per edge, chatty iterations, abundant parallelism —
//! so the compute should come to the data.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::{DataflowForm, Workload};
use cim_dataflow::graph::GraphBuilder;
use cim_dataflow::ops::{Elementwise, Operation};
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// A directed graph in CSR (compressed sparse row) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Row offsets, length `nodes + 1`.
    pub offsets: Vec<u32>,
    /// Destination node per edge.
    pub dests: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.dests.len()
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.dests[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Resident bytes of the CSR structure.
    pub fn bytes(&self) -> u64 {
        4 * (self.offsets.len() + self.dests.len()) as u64
    }
}

/// Generates an RMAT graph with `2^scale` nodes and `edge_factor` edges
/// per node, using the standard (0.57, 0.19, 0.19, 0.05) partition.
///
/// # Panics
///
/// Panics if `scale` is 0 or > 28, or `edge_factor` is 0.
pub fn rmat(scale: u32, edge_factor: usize, seeds: SeedTree) -> Csr {
    assert!((1..=28).contains(&scale), "scale must be 1..=28");
    assert!(edge_factor > 0, "edge_factor must be positive");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = seeds.rng("rmat");
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut src, mut dst) = (0u32, 0u32);
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        pairs.push((src, dst));
    }
    // Build CSR.
    let mut counts = vec![0u32; n + 1];
    for &(s, _) in &pairs {
        counts[s as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = offsets.clone();
    let mut dests = vec![0u32; m];
    for &(s, d) in &pairs {
        let at = cursor[s as usize];
        dests[at as usize] = d;
        cursor[s as usize] += 1;
    }
    Csr { offsets, dests }
}

/// Runs `iters` PageRank iterations; returns the rank vector and the
/// total L1 change of the final iteration (convergence telemetry).
pub fn pagerank(g: &Csr, iters: u32, damping: f64) -> (Vec<f64>, f64) {
    let n = g.nodes();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut delta = 0.0;
    for _ in 0..iters {
        next.iter_mut()
            .for_each(|v| *v = (1.0 - damping) / n as f64);
        for (u, &rank) in ranks.iter().enumerate() {
            let deg = g.degree(u);
            if deg == 0 {
                continue;
            }
            let share = damping * rank / deg as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        delta = ranks.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut ranks, &mut next);
    }
    (ranks, delta)
}

/// The PageRank workload.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// RMAT scale (nodes = 2^scale).
    pub scale: u32,
    /// Edges per node.
    pub edge_factor: usize,
    /// Iterations.
    pub iters: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PageRank {
    /// The standard TAB2 size: 2^18 nodes × 5 edges, 3 iterations.
    fn default() -> Self {
        PageRank {
            scale: 18,
            edge_factor: 5,
            iters: 3,
            seed: 17,
        }
    }
}

impl PageRank {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        PageRank {
            scale: 8,
            edge_factor: 4,
            iters: 3,
            seed: 17,
        }
    }
}

impl Workload for PageRank {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::GraphProblems
    }

    fn characterize(&self) -> Characteristics {
        let g = rmat(self.scale, self.edge_factor, SeedTree::new(self.seed));
        let (ranks, _) = pagerank(&g, self.iters, 0.85);
        std::hint::black_box(ranks.len());
        let n = g.nodes() as u64;
        let e = g.edges() as u64;
        let iters = u64::from(self.iters);
        // Per iteration: one divide+multiply per node, one add per edge.
        let flops = iters * (2 * n + e);
        let footprint = g.bytes() + 2 * 8 * n; // CSR + two rank vectors
                                               // Traffic: per edge read dest (4B) + read-modify-write accumulator
                                               // (16B); per node read rank + degree + init (24B).
        let moved = iters * (e * 20 + n * 24);
        // Each iteration republishes the whole rank vector to dependents.
        let comm = iters * 8 * n;
        // Span: iterations are sequential; inside one, the longest chain
        // is the serial accumulation into the hottest in-degree node.
        let mut indeg = vec![0u32; g.nodes()];
        for &d in &g.dests {
            indeg[d as usize] += 1;
        }
        let hottest = u64::from(indeg.iter().copied().max().unwrap_or(1));
        let span = iters * hottest;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }

    fn dataflow(&self) -> Option<DataflowForm> {
        // A scaled-down PageRank step as dataflow: ranks × (dampened
        // column-stochastic adjacency) + teleport.
        let n = 64usize;
        let g = rmat(6, self.edge_factor.min(8), SeedTree::new(self.seed));
        let mut weights = vec![0.0f64; n * n];
        for u in 0..n {
            let deg = g.degree(u).max(1) as f64;
            for &v in g.neighbors(u) {
                weights[u * n + (v as usize)] += 0.85 / deg;
            }
        }
        let mut b = GraphBuilder::new();
        let src = b.add("ranks", Operation::Source { width: n });
        let mv = b.add(
            "spread",
            Operation::MatVec {
                rows: n,
                cols: n,
                weights,
            },
        );
        let tel = b.add(
            "teleport",
            Operation::Map {
                func: Elementwise::Offset(0.15 / n as f64),
                width: n,
            },
        );
        let sink = b.add("next_ranks", Operation::Sink { width: n });
        b.chain(&[src, mv, tel, sink]).ok()?;
        let graph = b.build().ok()?;
        Some(DataflowForm {
            graph,
            source: src,
            sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn rmat_shape_and_determinism() {
        let g1 = rmat(8, 4, SeedTree::new(1));
        let g2 = rmat(8, 4, SeedTree::new(1));
        assert_eq!(g1, g2);
        assert_eq!(g1.nodes(), 256);
        assert_eq!(g1.edges(), 1024);
        // RMAT is skewed: max degree far above average.
        let max_deg = (0..g1.nodes()).map(|u| g1.degree(u)).max().unwrap();
        assert!(max_deg > 12, "power-law skew expected, got {max_deg}");
    }

    #[test]
    fn csr_neighbor_access() {
        let g = rmat(4, 2, SeedTree::new(2));
        let total: usize = (0..g.nodes()).map(|u| g.neighbors(u).len()).sum();
        assert_eq!(total, g.edges());
    }

    #[test]
    fn pagerank_conserves_probability_mass() {
        let g = rmat(8, 8, SeedTree::new(3));
        let (ranks, _) = pagerank(&g, 20, 0.85);
        let mass: f64 = ranks.iter().sum();
        // Dangling nodes leak a bit of mass; it stays in (0.3, 1.0].
        assert!(mass > 0.3 && mass <= 1.0 + 1e-9, "mass {mass}");
        assert!(ranks.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn pagerank_converges() {
        let g = rmat(8, 8, SeedTree::new(4));
        let (_, d5) = pagerank(&g, 5, 0.85);
        let (_, d50) = pagerank(&g, 50, 0.85);
        assert!(d50 < d5 / 10.0, "delta must shrink: {d5} -> {d50}");
    }

    #[test]
    fn default_buckets_match_paper_row_shape() {
        let l = PageRank::default().characterize().bucketize();
        assert_eq!(l.compute, Level::Low, "graph analytics is compute-light");
        assert_eq!(l.size, Level::High);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.parallelism, Level::High);
    }

    #[test]
    fn dataflow_form_is_one_step() {
        let df = PageRank::small().dataflow().unwrap();
        assert_eq!(df.graph.node_count(), 4);
        let m = df.graph.metrics();
        assert!(m.state_bytes > 0, "adjacency is stationary state");
    }
}
