//! Machine-learning and neural-network workloads (Table 2 rows 1–2).
//!
//! * [`MlTraining`] — a dense MLP training epoch (forward, backward,
//!   weight update) over a batch: high compute, high data, high
//!   operational intensity, no iterative communication, massive
//!   parallelism.
//! * [`CnnInference`] — im2col convolution + fully-connected inference
//!   over an image batch: the paper's flagship CIM workload.
//!
//! Both run real `f64` arithmetic with counters; both lower naturally to
//! dataflow graphs for CIM execution.

use crate::chars::Characteristics;
use crate::nn::mlp_graph;
use crate::spec::WorkloadClass;
use crate::workload::{DataflowForm, Workload};
use cim_sim::rng::normal;
use cim_sim::SeedTree;

/// Batched dense matmul `C[m×n] = A[m×k] · B[k×n]`, counting work.
/// Returns (flops, bytes_moved) — B is streamed once (tiled reuse),
/// A and C once each.
fn matmul(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) -> (u64, u64) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for row in 0..m {
        for kk in 0..k {
            let av = a[row * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[row * n..(row + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    let flops = 2 * (m * k * n) as u64;
    let moved = 8 * (m * k + k * n + 2 * m * n) as u64;
    (flops, moved)
}

/// An MLP training epoch (Table 2 "Machine learning").
#[derive(Debug, Clone)]
pub struct MlTraining {
    /// Layer dimensions.
    pub dims: Vec<usize>,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlTraining {
    /// The standard TAB2 size: `512→1024→512→64`, batch 32.
    fn default() -> Self {
        MlTraining {
            dims: vec![512, 1024, 512, 64],
            batch: 32,
            seed: 11,
        }
    }
}

impl MlTraining {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        MlTraining {
            dims: vec![32, 64, 16],
            batch: 4,
            seed: 11,
        }
    }
}

impl Workload for MlTraining {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::MachineLearning
    }

    fn characterize(&self) -> Characteristics {
        let seeds = SeedTree::new(self.seed);
        let mut rng = seeds.rng("ml-train");
        let b = self.batch;
        // Allocate weights and a batch.
        let weights: Vec<Vec<f64>> = self
            .dims
            .windows(2)
            .map(|w| {
                (0..w[0] * w[1])
                    .map(|_| normal(&mut rng, 0.0, 1.0 / (w[0] as f64).sqrt()))
                    .collect()
            })
            .collect();
        let x0: Vec<f64> = (0..b * self.dims[0])
            .map(|_| normal(&mut rng, 0.0, 1.0))
            .collect();

        let mut flops = 0u64;
        let mut moved = 0u64;
        // Forward pass, keeping activations.
        let mut acts: Vec<Vec<f64>> = vec![x0];
        for (l, w) in self.dims.windows(2).enumerate() {
            let (k, n) = (w[0], w[1]);
            let mut z = vec![0.0; b * n];
            let (f, m) = matmul(&acts[l], &weights[l], &mut z, b, k, n);
            flops += f;
            moved += m;
            // ReLU in place.
            for v in &mut z {
                *v = v.max(0.0);
            }
            flops += (b * n) as u64;
            moved += 8 * 2 * (b * n) as u64;
            acts.push(z);
        }
        // Backward pass: dX = dZ·Wᵀ and dW = Xᵀ·dZ per layer, plus update.
        let mut dz: Vec<f64> = acts.last().expect("forward ran").clone();
        for l in (0..self.dims.len() - 1).rev() {
            let (k, n) = (self.dims[l], self.dims[l + 1]);
            // dW = Xᵀ[k×b] · dZ[b×n]
            let xt: Vec<f64> = {
                let x = &acts[l];
                let mut t = vec![0.0; k * b];
                for r in 0..b {
                    for c in 0..k {
                        t[c * b + r] = x[r * k + c];
                    }
                }
                moved += 8 * 2 * (k * b) as u64;
                t
            };
            let mut dw = vec![0.0; k * n];
            let (f, m) = matmul(&xt, &dz, &mut dw, k, b, n);
            flops += f;
            moved += m;
            // dX = dZ[b×n] · Wᵀ[n×k]
            let wt: Vec<f64> = {
                let w = &weights[l];
                let mut t = vec![0.0; n * k];
                for r in 0..k {
                    for c in 0..n {
                        t[c * k + r] = w[r * n + c];
                    }
                }
                moved += 8 * 2 * (n * k) as u64;
                t
            };
            let mut dx = vec![0.0; b * k];
            let (f, m) = matmul(&dz, &wt, &mut dx, b, n, k);
            flops += f;
            moved += m;
            // SGD update (uses dw so the optimizer isn't dead code).
            let lr = 1e-3;
            let mut w_sum = 0.0;
            for (wv, g) in weights[l].iter().zip(&dw) {
                w_sum += wv - lr * g;
            }
            flops += 2 * (k * n) as u64;
            moved += 8 * 2 * (k * n) as u64;
            std::hint::black_box(w_sum);
            dz = dx;
        }

        let weight_bytes: u64 = weights.iter().map(|w| 8 * w.len() as u64).sum();
        let act_bytes: u64 = acts.iter().map(|a| 8 * a.len() as u64).sum();
        // Span: one dot-product chain per layer, three passes.
        let span: u64 = 3 * self.dims.windows(2).map(|w| 2 * w[0] as u64).sum::<u64>();
        Characteristics {
            flops,
            footprint_bytes: weight_bytes + act_bytes,
            bytes_moved: moved,
            comm_bytes: 0, // samples are independent; updates are local
            critical_path_flops: span,
        }
    }

    fn dataflow(&self) -> Option<DataflowForm> {
        let (graph, source, sink) = mlp_graph(&self.dims, SeedTree::new(self.seed));
        Some(DataflowForm {
            graph,
            source,
            sink,
        })
    }
}

/// CNN inference via im2col (Table 2 "Neural Networks").
#[derive(Debug, Clone)]
pub struct CnnInference {
    /// Square input image side.
    pub image: usize,
    /// Input channels.
    pub channels: usize,
    /// Convolution filters (3×3).
    pub filters: usize,
    /// Fully-connected output classes.
    pub classes: usize,
    /// Image batch.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CnnInference {
    /// The standard TAB2 size: 32×32×3 images, 16 filters, batch 64.
    fn default() -> Self {
        CnnInference {
            image: 32,
            channels: 3,
            filters: 16,
            classes: 64,
            batch: 64,
            seed: 13,
        }
    }
}

impl CnnInference {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        CnnInference {
            image: 8,
            channels: 1,
            filters: 4,
            classes: 4,
            batch: 2,
            seed: 13,
        }
    }

    fn patch_side(&self) -> usize {
        self.image - 2 // valid 3x3 convolution
    }
}

impl Workload for CnnInference {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::NeuralNetworks
    }

    fn characterize(&self) -> Characteristics {
        let seeds = SeedTree::new(self.seed);
        let mut rng = seeds.rng("cnn");
        let (img, ch, nf) = (self.image, self.channels, self.filters);
        let ps = self.patch_side();
        let patches = ps * ps;
        let k = 9 * ch;
        let conv_w: Vec<f64> = (0..k * nf).map(|_| normal(&mut rng, 0.0, 0.3)).collect();
        let flat = patches * nf;
        let fc_w: Vec<f64> = (0..flat * self.classes)
            .map(|_| normal(&mut rng, 0.0, 0.05))
            .collect();

        let mut flops = 0u64;
        let mut moved = 0u64;
        let mut act_bytes = 0u64;
        for _ in 0..self.batch {
            let image: Vec<f64> = (0..img * img * ch)
                .map(|_| normal(&mut rng, 0.0, 1.0))
                .collect();
            moved += 8 * image.len() as u64;
            // im2col.
            let mut cols = vec![0.0; patches * k];
            for py in 0..ps {
                for px in 0..ps {
                    let p = py * ps + px;
                    for c in 0..ch {
                        for dy in 0..3 {
                            for dx in 0..3 {
                                cols[p * k + c * 9 + dy * 3 + dx] =
                                    image[((py + dy) * img + (px + dx)) * ch + c];
                            }
                        }
                    }
                }
            }
            moved += 8 * 2 * cols.len() as u64;
            // Convolution as matmul, then ReLU.
            let mut fmap = vec![0.0; patches * nf];
            let (f, m) = matmul(&cols, &conv_w, &mut fmap, patches, k, nf);
            flops += f;
            moved += m;
            for v in &mut fmap {
                *v = v.max(0.0);
            }
            flops += fmap.len() as u64;
            // Fully connected head.
            let mut logits = vec![0.0; self.classes];
            let (f, m) = matmul(&fmap, &fc_w, &mut logits, 1, flat, self.classes);
            flops += f;
            moved += m;
            // Inference reuses the same per-image buffers; the resident
            // footprint is one image's worth, not the whole batch.
            act_bytes = act_bytes.max(8 * (image.len() + cols.len() + fmap.len()) as u64);
            std::hint::black_box(logits);
        }

        let weight_bytes = 8 * (conv_w.len() + fc_w.len()) as u64;
        // Span per image: conv dot chain + fc dot chain; images parallel.
        let span = (2 * k + 2 * flat) as u64;
        Characteristics {
            flops,
            footprint_bytes: weight_bytes + act_bytes,
            bytes_moved: moved,
            comm_bytes: 0,
            critical_path_flops: span,
        }
    }

    fn dataflow(&self) -> Option<DataflowForm> {
        // The im2col'd network is an MLP: flat conv matmul then fc.
        let k = 9 * self.channels;
        let dims = [k, self.filters * 4, self.classes];
        let (graph, source, sink) = mlp_graph(&dims, SeedTree::new(self.seed));
        Some(DataflowForm {
            graph,
            source,
            sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn matmul_is_correct() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        let (flops, moved) = matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        assert_eq!(flops, 16);
        assert!(moved > 0);
    }

    #[test]
    fn ml_small_counters_are_consistent() {
        let c = MlTraining::small().characterize();
        assert!(c.flops > 0);
        assert!(
            c.bytes_moved > c.footprint_bytes,
            "training re-streams data"
        );
        assert_eq!(c.comm_bytes, 0);
        assert!(c.parallelism() > 8.0);
    }

    #[test]
    fn ml_default_buckets_match_paper_row() {
        let l = MlTraining::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.bandwidth, Level::High);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.op_intensity, Level::High);
        assert_eq!(l.communication, Level::Low);
        assert_eq!(l.parallelism, Level::High);
    }

    #[test]
    fn cnn_default_buckets_match_paper_row() {
        let l = CnnInference::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.bandwidth, Level::High);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.communication, Level::Low);
        assert_eq!(l.parallelism, Level::High);
    }

    #[test]
    fn both_lower_to_dataflow() {
        assert!(MlTraining::small().dataflow().is_some());
        let df = CnnInference::small().dataflow().unwrap();
        assert!(df.graph.node_count() >= 4);
    }

    #[test]
    fn characterize_is_deterministic() {
        let a = MlTraining::small().characterize();
        let b = MlTraining::small().characterize();
        assert_eq!(a, b);
    }
}
