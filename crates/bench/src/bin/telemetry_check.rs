//! Validates a telemetry JSON-lines file (as written by `--telemetry`):
//! every non-empty line must parse as a JSON object carrying the
//! required `component`, `metric` and `value` keys. Exits non-zero with
//! the first offending line on failure — the in-tree CI checker, so the
//! hermetic build needs no external JSON tooling.
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1).map(PathBuf::from) else {
        eprintln!("usage: telemetry_check <file.jsonl>");
        return ExitCode::FAILURE;
    };
    match cim_bench::telemetry_out::validate_file(&path) {
        Ok(lines) => {
            println!("{}: {lines} valid telemetry lines", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}
