//! Self-programmable dataflow (paper §III.B, third model).
//!
//! "Carrying code as a part of the packets to dynamically program
//! functions as packets arrive." A [`Patch`] (defined in
//! `cim-dataflow`) is serialized into a control-class packet, travels
//! the NoC to the tile hosting the target node — encrypted and
//! authenticated like any other packet when the device is configured so
//! — and reprograms the node on arrival:
//!
//! * retuning a `Map` node is a cheap digital micro-program update;
//! * replacing `MatVec` weights pays the full crossbar write cost, the
//!   same asymmetry every other reconfiguration path exposes.
//!
//! Patches are structure-preserving (shape checked by
//! [`cim_dataflow::graph::DataflowGraph::replace_op`]); placements and
//! routes stay valid.

use crate::device::CimDevice;
use crate::engine::MappedProgram;
use crate::error::{FabricError, Result};
use cim_crossbar::array::OpCost;
use cim_dataflow::graph::NodeRef;
use cim_dataflow::ops::Operation;
use cim_dataflow::program::Patch;
use cim_noc::packet::{Packet, TrafficClass};
use cim_sim::energy::Energy;
use cim_sim::time::{SimDuration, SimTime};

/// Outcome of applying one code packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchOutcome {
    /// Graph node that was reprogrammed.
    pub node: usize,
    /// Unit that hosts it.
    pub unit: usize,
    /// When the patch took effect (delivery + reprogram).
    pub effective_at: SimTime,
    /// Cost of the reprogramming itself (excluding packet transit).
    pub apply_cost: OpCost,
}

/// Builds the code-carrying packet for a patch, addressed to the tile
/// hosting the patched node.
///
/// # Errors
///
/// Returns [`FabricError::InvalidConfig`] if the patch targets a node
/// outside the program.
pub fn encode_patch_packet(
    device: &mut CimDevice,
    prog: &MappedProgram,
    patch: &Patch,
    src: cim_noc::packet::NodeId,
) -> Result<Packet> {
    let node = patch_target(patch);
    if node >= prog.graph().node_count() {
        return Err(FabricError::InvalidConfig {
            reason: format!("patch targets node {node} outside the program"),
        });
    }
    let unit = prog.placement().unit_of(node);
    let dst = device.unit(unit).tile();
    let id = device.next_packet_id();
    Ok(Packet::new(id, src, dst, patch.encode())
        .with_stream(prog.stream_id)
        .with_class(TrafficClass::Control))
}

fn patch_target(patch: &Patch) -> usize {
    match patch {
        Patch::SetMapFunc { node, .. } | Patch::SetWeights { node, .. } => *node as usize,
    }
}

/// Builds a code-carrying packet for a patch *without* consulting any
/// mapped program — the attack surface the adversarial campaigns probe:
/// a compromised tile can serialize any patch it likes, stamp any stream
/// id, and address any tile. Nothing in the encoding stops it; the NoC
/// domain boundary check is what must refuse the delivery.
pub fn rogue_patch_packet(
    device: &mut CimDevice,
    patch: &Patch,
    src: cim_noc::packet::NodeId,
    dst: cim_noc::packet::NodeId,
    stream: u64,
) -> Packet {
    let id = device.next_packet_id();
    Packet::new(id, src, dst, patch.encode())
        .with_stream(stream)
        .with_class(TrafficClass::Control)
}

/// Delivers a code packet over the NoC and applies it on arrival.
///
/// # Errors
///
/// Propagates NoC errors (isolation, tampering), decode failures, shape
/// violations, and reprogramming errors.
pub fn deliver_and_apply(
    device: &mut CimDevice,
    prog: &mut MappedProgram,
    packet: &Packet,
    depart: SimTime,
) -> Result<PatchOutcome> {
    let (_, noc) = device.units_and_noc_mut();
    let delivery = noc.transmit(packet, depart).map_err(FabricError::from)?;
    device.meter_mut().charge("noc", delivery.energy);
    let patch = Patch::decode(&delivery.payload).map_err(FabricError::from)?;
    apply_patch(device, prog, &patch, delivery.arrival)
}

/// Applies a decoded patch directly (the local-control-port path).
///
/// # Errors
///
/// Returns [`FabricError::Dataflow`] for shape violations, or propagates
/// reprogramming errors.
pub fn apply_patch(
    device: &mut CimDevice,
    prog: &mut MappedProgram,
    patch: &Patch,
    at: SimTime,
) -> Result<PatchOutcome> {
    let node = patch_target(patch);
    if node >= prog.graph().node_count() {
        return Err(FabricError::InvalidConfig {
            reason: format!("patch targets node {node} outside the program"),
        });
    }
    let node_ref = NodeRef::from_index(node);
    let new_op: Operation = match patch {
        Patch::SetMapFunc { func, .. } => {
            let width = prog.graph().node(node_ref).op.output_width();
            Operation::Map { func: *func, width }
        }
        Patch::SetWeights { weights, .. } => match &prog.graph().node(node_ref).op {
            Operation::MatVec { rows, cols, .. } => Operation::MatVec {
                rows: *rows,
                cols: *cols,
                weights: weights.clone(),
            },
            other => {
                return Err(FabricError::InvalidConfig {
                    reason: format!("weight patch targets non-matvec node {node} ({other:?})"),
                })
            }
        },
    };
    prog.graph.replace_op(node_ref, new_op.clone())?;

    let unit = prog.placement().unit_of(node);
    let config = device.config().clone();
    let seeds = device.seeds().child("self-prog");
    let apply_cost = match &new_op {
        Operation::MatVec { .. } => {
            // Full crossbar reprogram: the §VI write asymmetry again.
            let cost = device
                .unit_mut(unit)
                .assign(node, &new_op, &config, seeds)?;
            device.meter_mut().charge("config", cost.energy);
            cost
        }
        _ => {
            // Digital micro-program update: one control write.
            let cost = OpCost {
                latency: SimDuration::from_ns(20),
                energy: Energy::from_pj(2.0),
            };
            device
                .unit_mut(unit)
                .assign(node, &new_op, &config, seeds)?;
            device.meter_mut().charge("config", cost.energy);
            cost
        }
    };
    Ok(PatchOutcome {
        node,
        unit,
        effective_at: at + apply_cost.latency,
        apply_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::engine::StreamOptions;
    use crate::mapper::MappingPolicy;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::{DataflowGraph, GraphBuilder};
    use cim_dataflow::ops::Elementwise;
    use cim_noc::packet::NodeId;
    use std::collections::HashMap;

    fn device() -> CimDevice {
        CimDevice::new(FabricConfig {
            dpe: DpeConfig::ideal(),
            encryption: true,
            ..FabricConfig::default()
        })
        .expect("fabric")
    }

    fn graph() -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 4 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 4,
                cols: 4,
                weights: vec![
                    0.5, 0.0, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.5,
                ],
            },
        );
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Identity,
                width: 4,
            },
        );
        let k = b.add("k", Operation::Sink { width: 4 });
        b.chain(&[s, mv, m, k]).expect("chain");
        (b.build().expect("valid"), s, k)
    }

    fn run_once(
        d: &mut CimDevice,
        prog: &mut MappedProgram,
        src: NodeRef,
        sink: NodeRef,
    ) -> Vec<f64> {
        let r = d
            .execute_stream(
                prog,
                &[HashMap::from([(src, vec![1.0, 2.0, -3.0, 4.0])])],
                &StreamOptions::default(),
            )
            .expect("runs");
        r.outputs[0][&sink].clone()
    }

    #[test]
    fn map_patch_changes_behaviour_cheaply() {
        let mut d = device();
        let (g, src, sink) = graph();
        let mut prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");
        let before = run_once(&mut d, &mut prog, src, sink);
        assert!(before[2] < 0.0, "identity passes the negative through");

        let patch = Patch::SetMapFunc {
            node: 2,
            func: Elementwise::Relu,
        };
        let outcome = apply_patch(&mut d, &mut prog, &patch, SimTime::ZERO).expect("applies");
        assert!(
            outcome.apply_cost.latency < SimDuration::from_us(1),
            "map patches are digital-cheap"
        );
        let after = run_once(&mut d, &mut prog, src, sink);
        assert_eq!(after[2], 0.0, "ReLU now clamps the negative lane");
        assert!(
            (after[0] - before[0]).abs() < 0.05,
            "positive lanes unchanged"
        );
    }

    #[test]
    fn weight_patch_pays_crossbar_write_cost() {
        let mut d = device();
        let (g, src, sink) = graph();
        let mut prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");
        let before = run_once(&mut d, &mut prog, src, sink);

        // Double the diagonal.
        let mut w = vec![0.0; 16];
        for i in 0..4 {
            w[i * 4 + i] = 1.0;
        }
        let patch = Patch::SetWeights {
            node: 1,
            weights: w,
        };
        let outcome = apply_patch(&mut d, &mut prog, &patch, SimTime::ZERO).expect("applies");
        assert!(
            outcome.apply_cost.latency > SimDuration::from_us(10),
            "weight patches reprogram the crossbar: {}",
            outcome.apply_cost.latency
        );
        let after = run_once(&mut d, &mut prog, src, sink);
        for (a, b) in after.iter().zip(&before) {
            assert!(
                (a - 2.0 * b).abs() < 0.1,
                "outputs should double: {a} vs {b}"
            );
        }
    }

    #[test]
    fn code_packet_rides_the_encrypted_noc() {
        let mut d = device();
        let (g, src, sink) = graph();
        let mut prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");
        let patch = Patch::SetMapFunc {
            node: 2,
            func: Elementwise::Scale(3.0),
        };
        let packet =
            encode_patch_packet(&mut d, &prog, &patch, NodeId::new(3, 3)).expect("encodes");
        assert_eq!(packet.class, TrafficClass::Control);
        let outcome =
            deliver_and_apply(&mut d, &mut prog, &packet, SimTime::ZERO).expect("applies");
        assert!(outcome.effective_at > SimTime::ZERO);
        let after = run_once(&mut d, &mut prog, src, sink);
        assert!(
            (after[0] - 1.5).abs() < 0.1,
            "0.5 * 3.0 = 1.5, got {}",
            after[0]
        );
    }

    #[test]
    fn malformed_and_shape_breaking_patches_rejected() {
        let mut d = device();
        let (g, _, _) = graph();
        let mut prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");

        // Wrong-length weights: shape violation.
        let bad = Patch::SetWeights {
            node: 1,
            weights: vec![1.0; 3],
        };
        assert!(apply_patch(&mut d, &mut prog, &bad, SimTime::ZERO).is_err());

        // Weight patch to a non-matvec node.
        let misdirected = Patch::SetWeights {
            node: 2,
            weights: vec![1.0; 16],
        };
        assert!(apply_patch(&mut d, &mut prog, &misdirected, SimTime::ZERO).is_err());

        // Out-of-range node.
        let oob = Patch::SetMapFunc {
            node: 99,
            func: Elementwise::Relu,
        };
        assert!(apply_patch(&mut d, &mut prog, &oob, SimTime::ZERO).is_err());

        // Garbage payload via the packet path.
        let id = d.next_packet_id();
        let tile = d.unit(prog.placement().unit_of(2)).tile();
        let garbage = Packet::new(id, NodeId::new(0, 0), tile, vec![0xFF, 0x01])
            .with_class(TrafficClass::Control);
        assert!(deliver_and_apply(&mut d, &mut prog, &garbage, SimTime::ZERO).is_err());
    }
}
