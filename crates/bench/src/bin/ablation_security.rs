//! ABL-SEC: link-encryption overhead and tamper detection.
fn main() {
    let report = cim_bench::experiments::ablations::run_security();
    print!(
        "{}",
        cim_bench::experiments::ablations::render_security(&report)
    );
}
