//! Single-memristor device model.
//!
//! A memristor cell stores one of `2^bits` discrete conductance levels.
//! The model captures the behaviours the paper leans on:
//!
//! * **read/write asymmetry** — reads are fast and cheap, SET/RESET
//!   programming pulses are ~10⁴× slower (§VI calls this the main scaling
//!   challenge);
//! * **programming variation** — the achieved conductance deviates from the
//!   target by a relative Gaussian error;
//! * **endurance wear** — each programming cycle consumes device lifetime;
//! * **stuck-at faults** — worn-out or defective cells pin at their lowest
//!   or highest conductance (fed by [`crate::faults`]).

use cim_sim::calib::dpe;
use cim_sim::rng::normal;
use cim_sim::rng::Rng;

/// Fault condition of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellFault {
    /// Operating normally.
    #[default]
    None,
    /// Stuck at minimum conductance (open device): reads as level 0.
    StuckOff,
    /// Stuck at maximum conductance (shorted device): reads as max level.
    StuckOn,
}

/// Static device parameters shared by all cells of an array.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Bits per cell; the cell stores `2^bits` levels.
    pub bits: u32,
    /// Relative std-dev of programmed conductance (write variation).
    pub program_sigma: f64,
    /// Relative std-dev of read current noise.
    pub read_sigma: f64,
    /// Programming cycles before the cell is considered worn out.
    pub endurance: u64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            bits: dpe::CELL_BITS,
            program_sigma: dpe::CONDUCTANCE_SIGMA,
            read_sigma: dpe::READ_NOISE_SIGMA,
            endurance: 1_000_000_000,
        }
    }
}

impl DeviceParams {
    /// An ideal device: no variation, no noise, infinite endurance.
    pub fn ideal(bits: u32) -> Self {
        DeviceParams {
            bits,
            program_sigma: 0.0,
            read_sigma: 0.0,
            endurance: u64::MAX,
        }
    }

    /// Number of distinct programmable levels.
    pub fn levels(&self) -> u16 {
        1u16 << self.bits
    }

    /// Highest programmable level value.
    pub fn max_level(&self) -> u16 {
        self.levels() - 1
    }
}

/// One memristor cell.
///
/// The stored state is an *analog* conductance in units of level-steps:
/// a perfectly programmed level-3 cell holds conductance 3.0; programming
/// variation leaves it at e.g. 2.94.
///
/// # Examples
///
/// ```
/// use cim_crossbar::device::{DeviceParams, MemristorCell};
/// use cim_sim::SeedTree;
///
/// let params = DeviceParams::ideal(2);
/// let mut rng = SeedTree::new(1).rng("cell");
/// let mut cell = MemristorCell::new();
/// cell.program(3, &params, &mut rng);
/// assert_eq!(cell.read(&params, &mut rng), 3.0);
/// assert_eq!(cell.write_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemristorCell {
    conductance: f64,
    target_level: u16,
    writes: u64,
    fault: CellFault,
}

impl MemristorCell {
    /// Creates a fresh cell at minimum conductance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs the cell to `level`, applying write variation and wear.
    ///
    /// Programming a faulty cell has no effect (the pulse is absorbed but
    /// the conductance stays pinned); wear still accumulates because the
    /// pulse still stresses the device.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the parameter set's maximum level.
    pub fn program<R: Rng + ?Sized>(&mut self, level: u16, params: &DeviceParams, rng: &mut R) {
        assert!(
            level <= params.max_level(),
            "level {level} exceeds max {}",
            params.max_level()
        );
        self.writes += 1;
        if self.writes >= params.endurance && self.fault == CellFault::None {
            // Worn-out devices fail toward the low-conductance state.
            self.fault = CellFault::StuckOff;
        }
        if self.fault != CellFault::None {
            return;
        }
        self.target_level = level;
        let noise = if params.program_sigma > 0.0 && level > 0 {
            normal(rng, 0.0, params.program_sigma * f64::from(level))
        } else {
            0.0
        };
        self.conductance = (f64::from(level) + noise).clamp(0.0, f64::from(params.max_level()));
    }

    /// Reads the effective conductance, applying read noise and faults.
    pub fn read<R: Rng + ?Sized>(&self, params: &DeviceParams, rng: &mut R) -> f64 {
        let base = match self.fault {
            CellFault::None => self.conductance,
            CellFault::StuckOff => 0.0,
            CellFault::StuckOn => f64::from(params.max_level()),
        };
        if params.read_sigma > 0.0 && base > 0.0 {
            (base + normal(rng, 0.0, params.read_sigma * base)).max(0.0)
        } else {
            base
        }
    }

    /// The level the cell was last asked to store.
    pub fn target_level(&self) -> u16 {
        self.target_level
    }

    /// Number of programming pulses the cell has absorbed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Current fault state.
    pub fn fault(&self) -> CellFault {
        self.fault
    }

    /// Injects (or clears) a fault, e.g. from a fault-injection campaign.
    pub fn set_fault(&mut self, fault: CellFault) {
        self.fault = fault;
    }

    /// Applies conductance drift: after `relative_age` of retention time
    /// (1.0 = nominal retention life), conductance decays toward zero by
    /// `drift_fraction` of its value per unit age.
    ///
    /// # Panics
    ///
    /// Panics if arguments are negative.
    pub fn drift(&mut self, relative_age: f64, drift_fraction: f64) {
        assert!(relative_age >= 0.0 && drift_fraction >= 0.0);
        let factor = (1.0 - drift_fraction * relative_age).max(0.0);
        self.conductance *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::SeedTree;

    fn rng() -> cim_sim::rng::Xoshiro256pp {
        SeedTree::new(99).rng("device-tests")
    }

    #[test]
    fn ideal_program_read_roundtrip() {
        let params = DeviceParams::ideal(2);
        let mut r = rng();
        let mut cell = MemristorCell::new();
        for level in 0..=3u16 {
            cell.program(level, &params, &mut r);
            assert_eq!(cell.read(&params, &mut r), f64::from(level));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn overrange_level_panics() {
        let params = DeviceParams::ideal(2);
        let mut r = rng();
        MemristorCell::new().program(4, &params, &mut r);
    }

    #[test]
    fn write_variation_is_bounded_and_nonzero() {
        let params = DeviceParams {
            program_sigma: 0.05,
            read_sigma: 0.0,
            ..DeviceParams::default()
        };
        let mut r = rng();
        let mut deviations = 0;
        for _ in 0..200 {
            let mut cell = MemristorCell::new();
            // Mid-range level so the clamp at max_level doesn't mask noise.
            cell.program(2, &params, &mut r);
            let v = cell.read(&params, &mut r);
            assert!((0.0..=3.0).contains(&v));
            if (v - 2.0).abs() > 1e-12 {
                deviations += 1;
            }
        }
        assert!(deviations > 150, "variation should almost always deviate");
    }

    #[test]
    fn read_noise_varies_per_read() {
        let params = DeviceParams {
            program_sigma: 0.0,
            read_sigma: 0.05,
            ..DeviceParams::default()
        };
        let mut r = rng();
        let mut cell = MemristorCell::new();
        cell.program(2, &params, &mut r);
        let a = cell.read(&params, &mut r);
        let b = cell.read(&params, &mut r);
        assert_ne!(a, b, "independent read noise expected");
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn stuck_faults_pin_reads() {
        let params = DeviceParams::ideal(2);
        let mut r = rng();
        let mut cell = MemristorCell::new();
        cell.program(2, &params, &mut r);
        cell.set_fault(CellFault::StuckOff);
        assert_eq!(cell.read(&params, &mut r), 0.0);
        cell.set_fault(CellFault::StuckOn);
        assert_eq!(cell.read(&params, &mut r), 3.0);
        // Programming while faulty does not unpin.
        cell.program(1, &params, &mut r);
        assert_eq!(cell.read(&params, &mut r), 3.0);
    }

    #[test]
    fn endurance_wear_causes_stuck_off() {
        let params = DeviceParams {
            endurance: 5,
            ..DeviceParams::ideal(2)
        };
        let mut r = rng();
        let mut cell = MemristorCell::new();
        for _ in 0..4 {
            cell.program(3, &params, &mut r);
            assert_eq!(cell.fault(), CellFault::None);
        }
        cell.program(3, &params, &mut r);
        assert_eq!(cell.fault(), CellFault::StuckOff);
        assert_eq!(cell.read(&params, &mut r), 0.0);
    }

    #[test]
    fn drift_decays_toward_zero() {
        let params = DeviceParams::ideal(2);
        let mut r = rng();
        let mut cell = MemristorCell::new();
        cell.program(3, &params, &mut r);
        cell.drift(0.5, 0.2);
        let v = cell.read(&params, &mut r);
        assert!((v - 2.7).abs() < 1e-12, "10% decay expected, got {v}");
        cell.drift(100.0, 1.0);
        assert_eq!(cell.read(&params, &mut r), 0.0, "drift clamps at zero");
    }

    #[test]
    fn levels_depend_on_bits() {
        assert_eq!(DeviceParams::ideal(1).levels(), 2);
        assert_eq!(DeviceParams::ideal(2).levels(), 4);
        assert_eq!(DeviceParams::ideal(4).max_level(), 15);
    }
}
