//! `--telemetry <path>` support for the experiment binaries.
//!
//! The implementation moved to [`cim_obs::export`] when the chaos bins
//! and `examples/serving.rs` grew the same flag; this module re-exports
//! it so existing `cim_bench::telemetry_out::...` callers are unchanged.

pub use cim_obs::export::{
    require_kinds, split_telemetry_arg, validate_file, write_export, write_export_with,
};
