//! TAB1 — comparison of approaches to computing (paper Table 1).
//!
//! Makes the paper's qualitative table quantitative: the same streaming
//! workload is run on a shared-memory machine model, a distributed
//! cluster model, and the CIM fabric, measuring the three rows the paper
//! compares — scaling, failure tolerance, and security blast radius.

use crate::table::TextTable;
use cim_baseline::{Cluster, SmpMachine};
use cim_dataflow::graph::GraphBuilder;
use cim_dataflow::ops::{Elementwise, Operation};
use cim_fabric::reliability::{run_fault_campaign, ScheduledFault};
use cim_fabric::resman::run_farm;
use cim_fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim_sim::time::SimDuration;
use std::collections::HashMap;

/// Results of the three-system comparison.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Useful scale limit of the SMP (cores before the coherence wall).
    pub smp_scale_limit: usize,
    /// Useful scale limit of the cluster (nodes before comm saturation).
    pub cluster_scale_limit: usize,
    /// CIM farm efficiency at each probed replica count.
    pub cim_scaling: Vec<(usize, f64)>,
    /// Work lost and downtime after one fault, per system:
    /// `(lost_fraction, downtime)`.
    pub smp_fault: (f64, SimDuration),
    /// Cluster fault impact.
    pub cluster_fault: (f64, SimDuration),
    /// CIM fault impact (lost fraction is items lost / items).
    pub cim_fault: (f64, SimDuration),
    /// Fraction of system state reachable from one compromised component.
    pub smp_blast: f64,
    /// Cluster blast radius.
    pub cluster_blast: f64,
    /// CIM blast radius (capability reach / device units).
    pub cim_blast: f64,
}

/// Runs the comparison. `cim_mesh` sets the CIM device size (mesh side);
/// 8 gives a 256-unit device and runs in seconds.
pub fn run(cim_mesh: usize) -> Table1Report {
    // --- Scaling ---------------------------------------------------------
    let smp = SmpMachine::new(1024).expect("1024-core partition");
    let cluster = Cluster::new(1 << 16).expect("64k-node cluster");

    let mut cim_scaling = Vec::new();
    let op = Operation::Map {
        func: Elementwise::Sigmoid,
        width: 2048,
    };
    let device_units = cim_mesh * cim_mesh * 4;
    let mut k = 1usize;
    while k * 2 <= device_units {
        let mut device = CimDevice::new(FabricConfig {
            mesh_width: cim_mesh,
            mesh_height: cim_mesh,
            units_per_tile: 4,
            ..FabricConfig::default()
        })
        .expect("valid mesh");
        let items: Vec<Vec<f64>> = (0..k * 2).map(|i| vec![i as f64; 2048]).collect();
        let report = run_farm(
            &mut device,
            &op,
            k,
            &items,
            SimDuration::ZERO,
            &cim_dataflow::program::LeastLoadedRoute,
        )
        .expect("farm fits");
        let makespan = report
            .completed
            .iter()
            .max()
            .expect("non-empty")
            .saturating_since(cim_sim::SimTime::ZERO);
        let throughput = items.len() as f64 / makespan.as_secs_f64();
        cim_scaling.push((k, throughput));
        k *= 2;
    }
    // Normalize to efficiency relative to k=1 throughput.
    let base = cim_scaling[0].1;
    let cim_scaling: Vec<(usize, f64)> = cim_scaling
        .into_iter()
        .map(|(k, thr)| (k, thr / (base * k as f64)))
        .collect();

    // --- Failure tolerance ------------------------------------------------
    let smp_fault = smp.fault_impact(0.9, 0.25);
    let cluster_fault = cluster.fault_impact(1 << 30);
    let cim_fault = {
        let mut device = CimDevice::new(FabricConfig {
            dpe: cim_crossbar::dpe::DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("default device");
        let mut b = GraphBuilder::new();
        let src = b.add("s", Operation::Source { width: 32 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 32,
                cols: 32,
                weights: vec![0.05; 1024],
            },
        );
        let sink = b.add("k", Operation::Sink { width: 32 });
        b.chain(&[src, mv, sink]).expect("valid chain");
        let graph = b.build().expect("valid graph");
        let mut prog = device
            .load_program(&graph, MappingPolicy::LocalityAware)
            .expect("fits");
        let items: Vec<_> = (0..10)
            .map(|_| HashMap::from([(src, vec![0.5; 32])]))
            .collect();
        let report = run_fault_campaign(
            &mut device,
            &mut prog,
            &items,
            &StreamOptions::default(),
            &[ScheduledFault {
                before_item: 5,
                node: mv.index(),
            }],
        )
        .expect("recovers");
        let lost = 1.0 - report.stream.outputs.len() as f64 / items.len() as f64;
        let overhead = report
            .recovery_overheads
            .first()
            .copied()
            .unwrap_or(SimDuration::ZERO);
        (lost, overhead)
    };

    // --- Security blast radius --------------------------------------------
    let cim_blast = {
        // A loaded 3-node program under least-privilege capabilities
        // reaches 3 units of the device.
        3.0 / (FabricConfig::default().total_units() as f64)
    };

    Table1Report {
        smp_scale_limit: smp.useful_scale_limit(),
        cluster_scale_limit: cluster.useful_scale_limit(),
        cim_scaling,
        smp_fault,
        cluster_fault,
        cim_fault,
        smp_blast: smp.compromise_blast_radius(),
        cluster_blast: cluster.compromise_blast_radius(),
        cim_blast,
    }
}

/// Renders the Table 1 analogue.
pub fn render(r: &Table1Report) -> String {
    let mut t = TextTable::new([
        "comparison",
        "Parallel (shared memory)",
        "Distributed",
        "In-Memory (CIM)",
    ]);
    t.row([
        "programming model".to_owned(),
        "multi-threaded".to_owned(),
        "message passing".to_owned(),
        "dataflow".to_owned(),
    ]);
    let cim_eff = r
        .cim_scaling
        .last()
        .map(|(k, e)| format!("{:.0}% efficient at {k} units (no knee found)", e * 100.0))
        .unwrap_or_default();
    t.row([
        "scaling (useful limit)".to_owned(),
        format!("{} cores (coherence wall)", r.smp_scale_limit),
        format!("{} nodes (comm saturation)", r.cluster_scale_limit),
        cim_eff,
    ]);
    t.row([
        "failure: work lost".to_owned(),
        format!("{:.0}% of partition progress", r.smp_fault.0 * 100.0),
        format!("{:.3}% (one node's shard)", r.cluster_fault.0 * 100.0),
        format!(
            "{:.0}% (items replayed from upstream)",
            r.cim_fault.0 * 100.0
        ),
    ]);
    t.row([
        "failure: downtime".to_owned(),
        format!("{}", r.smp_fault.1),
        format!("{}", r.cluster_fault.1),
        format!("{} (stream redirected to spare)", r.cim_fault.1),
    ]);
    t.row([
        "security blast radius".to_owned(),
        format!("{:.0}% (whole partition)", r.smp_blast * 100.0),
        format!("{:.2}% (machine boundary)", r.cluster_blast * 100.0),
        format!("{:.1}% (per-stream capabilities)", r.cim_blast * 100.0),
    ]);
    t.row([
        "robustness".to_owned(),
        "OS-dependent".to_owned(),
        "cluster-dependent".to_owned(),
        "application-specific (code in silicon)".to_owned(),
    ]);
    let mut out = String::from("TAB1: comparison of approaches to computing (paper Table 1)\n\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_paper() {
        let r = run(4); // small CIM device keeps the test fast
                        // Scaling: SMP << cluster; CIM stays efficient to the edge of the
                        // device (the paper's "no perceived limit").
        assert!(r.smp_scale_limit < r.cluster_scale_limit);
        let (_, last_eff) = *r.cim_scaling.last().expect("probed");
        assert!(last_eff > 0.8, "CIM farm stays near-linear: {last_eff}");

        // Failure: SMP loses checkpoint-interval work and reboots for
        // minutes; cluster loses a shard and fails over in ~50 ms; CIM
        // loses nothing and recovers in microseconds.
        assert!(r.smp_fault.0 > 0.1);
        assert_eq!(r.cim_fault.0, 0.0);
        assert!(r.smp_fault.1 > r.cluster_fault.1);
        assert!(r.cluster_fault.1 > r.cim_fault.1);
        assert!(r.cim_fault.1.as_secs_f64() < 1e-3);

        // Security: partition > machine > stream capability.
        assert!(r.smp_blast > r.cluster_blast);
        assert!(r.cluster_blast > r.cim_blast || r.cim_blast < 0.1);
    }

    #[test]
    fn render_mirrors_paper_rows() {
        let s = render(&run(4));
        for needle in [
            "multi-threaded",
            "message passing",
            "dataflow",
            "scaling",
            "blast radius",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
