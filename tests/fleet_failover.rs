//! Fleet failover soak: whole-device outages across a multi-device
//! CIM fleet, end to end through the public API — the acceptance gates
//! for the router tier.
//!
//! Run at `CIM_THREADS=1` and `=4` by `ci.sh`; every number asserted
//! here is modeled (sim-time), so thread count cannot move it. The
//! release-scale (one-million-request) version of the same gates is
//! `fleet_smoke`.

use cim::fabric::fleet::{CimFleet, FleetConfig, FleetEvent};
use cim::fabric::FabricConfig;
use cim::sim::time::{SimDuration, SimTime};
use cim::sim::{SeedTree, SimMode};
use cim::workloads::serving::standard_request_mix;
use cim_bench::experiments::fleet::{
    self, compare_with, engineered_outage, run_fleet_with, FleetScenario,
};

fn soak_scenario() -> FleetScenario {
    FleetScenario {
        devices: 4,
        replicas: 2,
        rate_hz: 200_000.0,
        requests: 20_000,
        seed: 0xF1EE7,
        mode: SimMode::Analytic,
        outage: true,
        keep_outcomes: false,
    }
}

/// The tentpole acceptance gate at test scale: a mid-soak whole-device
/// outage voids the requests it catches, re-routes them to surviving
/// replicas, and loses nothing — no double execution, every failover
/// accounted against exactly one voided attempt.
#[test]
fn device_outage_mid_soak_loses_nothing() {
    let s = soak_scenario();
    let r = run_fleet_with(&s, &engineered_outage(&s));
    assert_eq!(r.offered, s.requests);
    assert!(r.failovers >= 1, "outage must catch a request in flight");
    assert!(r.zero_lost(), "zero-loss contract: {r:?}");
    assert_eq!(r.failed, 0);
    assert_eq!(
        r.served_total() as usize,
        r.completed + r.timed_out,
        "no double execution"
    );
    assert_eq!(
        r.voided_total() as usize,
        r.failovers,
        "each failover voids exactly one attempt"
    );
    // The fenced device rejoined routing after DeviceUp.
    assert!(r.per_device[0].served > 0, "device 0 serves after repair");
}

/// Same soak, both platforms: the cluster baseline replays the
/// identical arrival record under mirrored machine outages and must
/// not out-serve the resident-replica fleet.
#[test]
fn cluster_baseline_replays_the_same_workload() {
    let s = FleetScenario {
        requests: 4_000,
        ..soak_scenario()
    };
    let c = compare_with(&s, &engineered_outage(&s));
    assert_eq!(c.cluster.offered, c.fleet.offered, "same arrivals");
    assert!(c.cluster.zero_lost(), "cluster accounts everything");
    assert!(
        c.fleet.goodput() >= c.cluster.goodput(),
        "fleet {:.5} vs cluster {:.5}",
        c.fleet.goodput(),
        c.cluster.goodput()
    );
    // The cluster pays the network on every request; the fleet does not.
    assert!(c.cluster.p50_us >= 2.0, "cluster p50 under the RTT floor");
}

/// Double-run determinism: the full report (fingerprint included) is
/// bit-identical run to run, and the streaming fingerprint covers
/// outcome storage being off.
#[test]
fn soak_reports_are_bit_identical() {
    let s = soak_scenario();
    let events = engineered_outage(&s);
    let a = run_fleet_with(&s, &events);
    let b = run_fleet_with(&s, &events);
    assert_eq!(a, b, "double runs diverge");
    let kept = run_fleet_with(
        &FleetScenario {
            keep_outcomes: true,
            ..s
        },
        &events,
    );
    assert_eq!(kept.fingerprint, a.fingerprint, "storage-independent");
    assert_eq!(kept.outcomes.len(), kept.offered);
}

/// Thread-count invariance: the comparison harness run on one host
/// thread and on four must produce bit-identical modeled results
/// (wall-clock excluded).
#[test]
fn fleet_comparisons_are_thread_invariant() {
    let scenarios = vec![
        FleetScenario {
            requests: 1_500,
            ..soak_scenario()
        },
        FleetScenario {
            requests: 1_500,
            seed: 0xF1EE8,
            ..soak_scenario()
        },
    ];
    let a = fleet::run_threads(&scenarios, 1);
    let b = fleet::run_threads(&scenarios, 4);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.fleet, y.fleet, "fleet side moved with thread count");
        assert_eq!(x.cluster, y.cluster, "cluster side moved with thread count");
    }
}

/// A fresh 4-device fleet with the standard mix resident, for the
/// unmatched-event and flap-semantics pins below.
fn boot() -> CimFleet {
    let mut fleet = CimFleet::new(
        FleetConfig {
            devices: 4,
            replicas: 2,
            fabric: FabricConfig {
                sim_mode: SimMode::Analytic,
                ..FabricConfig::default()
            },
            keep_outcomes: false,
            ..FleetConfig::default()
        },
        SeedTree::new(0xD0E),
    )
    .expect("fleet boots");
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(0xD0E ^ 0xC1A55));
        fleet
            .register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .expect("mix fits");
    }
    fleet
}

/// A DeviceUp with no preceding outage and an outage that never ends
/// both behave: the former is a no-op, the latter fences the device for
/// the rest of the run while its replica partner carries the class.
#[test]
fn unmatched_device_events_behave() {
    // Up with no outage: identical to no events at all.
    let clean = boot().run_open_loop(100_000.0, 500, &[]).expect("serves");
    let noop_up = boot()
        .run_open_loop(
            100_000.0,
            500,
            &[FleetEvent::DeviceUp {
                at: SimTime::from_ns(1_000),
                device: 2,
            }],
        )
        .expect("serves");
    assert_eq!(clean.fingerprint, noop_up.fingerprint);
    // Down forever: still zero-loss, the partner replica carries it.
    let fenced = boot()
        .run_open_loop(
            100_000.0,
            500,
            &[FleetEvent::DeviceDown {
                at: SimTime::from_ns(1_000),
                device: 0,
            }],
        )
        .expect("serves");
    assert!(fenced.zero_lost(), "{fenced:?}");
    assert!(
        fenced.per_device[1].served > 0,
        "replica partner carries the fenced device's class"
    );
}

/// Flapping and shadowed events are no-ops and failover accounting
/// stays exact: a second DeviceDown inside the detection window, a
/// crash while the device is already dark, and a second DeviceUp after
/// the repair all leave the run identical to the clean down/up pair —
/// and `voided_total() == failovers` throughout.
#[test]
fn flapping_and_shadowed_events_keep_failover_accounting_exact() {
    let down = SimTime::from_ns(1_000);
    let up = SimTime::from_ns(50_000);
    let clean = boot()
        .run_open_loop(
            100_000.0,
            500,
            &[
                FleetEvent::DeviceDown {
                    at: down,
                    device: 0,
                },
                FleetEvent::DeviceUp { at: up, device: 0 },
            ],
        )
        .expect("serves");
    let flapped = boot()
        .run_open_loop(
            100_000.0,
            500,
            &[
                FleetEvent::DeviceDown {
                    at: down,
                    device: 0,
                },
                // Inside the 2 µs detection window: shadowed.
                FleetEvent::DeviceDown {
                    at: down + SimDuration::from_ns(500),
                    device: 0,
                },
                // Crash while the device is already dark: shadowed too —
                // a device with no power cannot lose power again.
                FleetEvent::PowerLoss {
                    at: SimTime::from_ns(10_000),
                    device: 0,
                    restart_after: SimDuration::from_us(5),
                },
                FleetEvent::DeviceUp { at: up, device: 0 },
                // Second repair with nothing to repair: no-op.
                FleetEvent::DeviceUp {
                    at: up + SimDuration::from_us(10),
                    device: 0,
                },
            ],
        )
        .expect("serves");
    assert_eq!(
        clean.fingerprint, flapped.fingerprint,
        "shadowed/unmatched events must not perturb the run"
    );
    assert_eq!(flapped.crashes, 0, "a shadowed crash never fires");
    for r in [&clean, &flapped] {
        assert!(r.zero_lost(), "{r:?}");
        assert_eq!(
            r.voided_total() as usize,
            r.failovers,
            "each failover voids exactly one attempt"
        );
    }
}
