//! # cim — Computing In-Memory, Revisited (ICDCS 2018), reproduced in Rust
//!
//! An executable reproduction of Milojicic et al.'s Computing-In-Memory
//! vision paper: the memristor-crossbar Dot Product Engine, the
//! micro-unit/tile/device fabric with its packet interconnect, the three
//! dataflow programming models, the security/virtualization/reliability
//! machinery, the Von Neumann comparators (CPU, GPU, SMP, cluster), and
//! the 14-class Table 2 application suite — everything needed to
//! regenerate the paper's figures and tables (see `EXPERIMENTS.md`).
//!
//! This crate is a facade: it re-exports the workspace's sub-crates under
//! one namespace so examples and integration tests have a single import
//! surface.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `cim-sim` | event kernel, time/energy, stats, calibration |
//! | [`crossbar`] | `cim-crossbar` | memristor arrays, DPE, logic, TCAM |
//! | [`noc`] | `cim-noc` | packet mesh, QoS, isolation, crypto |
//! | [`dataflow`] | `cim-dataflow` | graph IR, interpreter, program models |
//! | [`fabric`] | `cim-fabric` | the CIM device and execution engine |
//! | [`baseline`] | `cim-baseline` | CPU/GPU/SMP/cluster comparators |
//! | [`workloads`] | `cim-workloads` | the Table 2 application suite |
//! | [`obs`] | `cim-obs` | time-series, SLO burn-rate alerts, flamegraphs |
//!
//! ## Quickstart
//!
//! ```
//! use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
//! use cim::workloads::nn::mlp_graph;
//! use cim::sim::SeedTree;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut device = CimDevice::new(FabricConfig::default())?;
//! let (graph, src, sink) = mlp_graph(&[64, 32, 8], SeedTree::new(1));
//! let mut prog = device.load_program(&graph, MappingPolicy::LocalityAware)?;
//! let report = device.execute_stream(
//!     &mut prog,
//!     &[HashMap::from([(src, vec![0.25; 64])])],
//!     &StreamOptions::default(),
//! )?;
//! assert_eq!(report.outputs[0][&sink].len(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use cim_baseline as baseline;
pub use cim_crossbar as crossbar;
pub use cim_dataflow as dataflow;
pub use cim_fabric as fabric;
pub use cim_noc as noc;
pub use cim_obs as obs;
pub use cim_sim as sim;
pub use cim_workloads as workloads;
