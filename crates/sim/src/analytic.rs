//! Analytical (closed-form) cost modelling — the fast tier of the
//! two-tier simulation.
//!
//! The detailed flow-level simulator resolves every read phase, flit hop
//! and queue slot; that fidelity is what the paper's §VI claims are
//! calibrated against, but it is far more than most sweeps need. This
//! module holds the shared vocabulary of the *analytic* tier:
//!
//! - [`SimMode`] — the switch threaded through `crossbar::dpe`,
//!   `cim_noc`, and `cim_fabric`, selecting detailed or analytic costing
//!   per device.
//! - [`mdl_wait`] — the M/D/1 mean-wait formula used for NoC link
//!   contention: deterministic service (fixed-size packets at a fixed
//!   link rate) fed by approximately-Poisson arrivals.
//! - [`ContentionModel`] — an M/D/1 wait with a single scale
//!   coefficient, fit from detailed-mode telemetry so the closed form
//!   tracks the DES on the workloads that matter.
//! - [`QueueModel`] — open-loop service-level queueing from arrival and
//!   served rates (utilisation, stability, predicted sojourn).
//!
//! The contract between the tiers is enforced by the `analytic_check`
//! harness (see `cim-bench`): sampled configurations replay through both
//! modes and must agree within declared bounds (latency ±10%, energy
//! ±5%, throughput ordering preserved). On contention-free single-op
//! cases the analytic tier is *exactly* the detailed tier's integer
//! cost — it replays the same integer cost arithmetic without the
//! per-cell analog work — so the bounds only absorb contention effects.

use crate::time::SimDuration;
use core::fmt;
use core::str::FromStr;

/// Which simulation tier a device models costs with.
///
/// # Examples
///
/// ```
/// use cim_sim::analytic::SimMode;
///
/// assert_eq!(SimMode::default(), SimMode::Detailed);
/// assert_eq!("analytic".parse(), Ok(SimMode::Analytic));
/// assert_eq!(SimMode::Analytic.to_string(), "analytic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Full flow-level simulation: per-cell analog reads, per-flit link
    /// occupancy, event-accurate queueing. The calibration reference.
    #[default]
    Detailed,
    /// Closed-form costs: crossbar latency/energy from the quantized
    /// digit pattern, NoC latency from the zero-load floor plus an
    /// M/D/1 contention term, service queueing from rates. No analog
    /// noise, no per-flit bookkeeping.
    Analytic,
}

impl SimMode {
    /// Canonical lower-case name (`"detailed"` / `"analytic"`).
    pub const fn as_str(self) -> &'static str {
        match self {
            SimMode::Detailed => "detailed",
            SimMode::Analytic => "analytic",
        }
    }
}

impl fmt::Display for SimMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SimMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "detailed" | "des" => Ok(SimMode::Detailed),
            "analytic" | "analytical" | "fast" => Ok(SimMode::Analytic),
            other => Err(format!(
                "unknown sim mode {other:?} (expected \"detailed\" or \"analytic\")"
            )),
        }
    }
}

/// Utilisation cap for the contention formulas: past this the M/D/1 wait
/// diverges, so predictions are clamped to stay finite (the detailed
/// tier is the trustworthy one near saturation — see EXPERIMENTS.md).
pub const MAX_RHO: f64 = 0.98;

/// M/D/1 mean queueing wait: `ρ·S / (2·(1−ρ))` for utilisation `rho`
/// and deterministic service time `service`.
///
/// `rho` is clamped to `[0, MAX_RHO]`; returns [`SimDuration::ZERO`]
/// for non-positive or non-finite utilisation.
///
/// # Examples
///
/// ```
/// use cim_sim::analytic::mdl_wait;
/// use cim_sim::time::SimDuration;
///
/// let s = SimDuration::from_ns(100);
/// assert_eq!(mdl_wait(0.0, s), SimDuration::ZERO);
/// // ρ = 0.5 → wait = 0.5·S / (2·0.5) = S/2.
/// assert_eq!(mdl_wait(0.5, s), SimDuration::from_ns(50));
/// assert!(mdl_wait(0.9, s) > mdl_wait(0.5, s));
/// ```
pub fn mdl_wait(rho: f64, service: SimDuration) -> SimDuration {
    if !rho.is_finite() || rho <= 0.0 {
        return SimDuration::ZERO;
    }
    let rho = rho.min(MAX_RHO);
    let wait_ps = service.as_ps() as f64 * rho / (2.0 * (1.0 - rho));
    SimDuration::from_ps(wait_ps.round() as u64)
}

/// An M/D/1 contention term with one fitted scale coefficient.
///
/// The pure M/D/1 formula assumes Poisson arrivals and a single queue;
/// real NoC traffic is burstier (stream batches) and multi-queue
/// (virtual channels share a link), so the closed form is scaled by
/// `alpha`, fit from detailed-mode telemetry: for each observed
/// `(utilisation, measured wait)` pair the least-squares-through-origin
/// estimate of `measured / mdl_wait` is taken.
///
/// # Examples
///
/// ```
/// use cim_sim::analytic::{mdl_wait, ContentionModel};
/// use cim_sim::time::SimDuration;
///
/// let s = SimDuration::from_ns(100);
/// // Synthetic telemetry where the DES waits exactly 2× M/D/1.
/// let samples: Vec<(f64, SimDuration)> = [0.2, 0.5, 0.8]
///     .iter()
///     .map(|&rho| (rho, mdl_wait(rho, s) * 2))
///     .collect();
/// let m = ContentionModel::fit(&samples, s);
/// assert!((m.alpha() - 2.0).abs() < 0.05);
/// assert_eq!(m.wait(0.5, s), SimDuration::from_ns(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    alpha: f64,
}

impl Default for ContentionModel {
    /// The un-fit model: pure M/D/1 (`alpha = 1`).
    fn default() -> Self {
        ContentionModel { alpha: 1.0 }
    }
}

impl ContentionModel {
    /// Creates a model with an explicit coefficient (clamped to
    /// non-negative finite).
    pub fn with_alpha(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.max(0.0)
        } else {
            1.0
        };
        ContentionModel { alpha }
    }

    /// The fitted scale coefficient.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fits `alpha` by least squares through the origin against
    /// `(utilisation, measured wait)` pairs observed from the detailed
    /// tier, for links with deterministic service time `service`.
    ///
    /// Pairs with zero predicted wait are ignored (they carry no signal
    /// about the contention slope). With no usable samples the pure
    /// M/D/1 model is returned.
    pub fn fit(samples: &[(f64, SimDuration)], service: SimDuration) -> Self {
        // Minimise Σ (measuredᵢ − α·predᵢ)² ⇒ α = Σ predᵢ·measuredᵢ / Σ predᵢ².
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(rho, measured) in samples {
            let pred = mdl_wait(rho, service).as_ps() as f64;
            if pred <= 0.0 {
                continue;
            }
            num += pred * measured.as_ps() as f64;
            den += pred * pred;
        }
        if den > 0.0 {
            ContentionModel::with_alpha(num / den)
        } else {
            ContentionModel::default()
        }
    }

    /// Predicted mean queueing wait at utilisation `rho` for a link
    /// with deterministic service time `service`.
    pub fn wait(&self, rho: f64, service: SimDuration) -> SimDuration {
        let base = mdl_wait(rho, service).as_ps() as f64;
        SimDuration::from_ps((base * self.alpha).round() as u64)
    }
}

/// Open-loop service queueing from arrival and served rates.
///
/// Captures the service-level closed form the analytic tier uses in
/// place of stepping admission/dispatch: offered load against measured
/// (or modeled) service capacity gives utilisation, stability, and an
/// M/D/1-style sojourn prediction.
///
/// # Examples
///
/// ```
/// use cim_sim::analytic::QueueModel;
/// use cim_sim::time::SimDuration;
///
/// let q = QueueModel::new(500.0, SimDuration::from_us(1));
/// // 500 req/s against a 1 µs service time: essentially idle.
/// assert!(q.is_stable());
/// assert!(q.utilization() < 0.001);
/// assert!(q.predicted_latency() >= SimDuration::from_us(1));
///
/// let hot = QueueModel::new(2_000_000.0, SimDuration::from_us(1));
/// assert!(!hot.is_stable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueModel {
    arrival_per_sec: f64,
    service: SimDuration,
}

impl QueueModel {
    /// Builds a queue model from an arrival rate (per second of
    /// simulated time) and a deterministic per-item service time.
    /// Non-finite or negative arrival rates clamp to zero.
    pub fn new(arrival_per_sec: f64, service: SimDuration) -> Self {
        let arrival_per_sec = if arrival_per_sec.is_finite() {
            arrival_per_sec.max(0.0)
        } else {
            0.0
        };
        QueueModel {
            arrival_per_sec,
            service,
        }
    }

    /// The per-item service time the model was built from.
    pub fn service(&self) -> SimDuration {
        self.service
    }

    /// Offered utilisation `ρ = λ·S` (uncapped — may exceed 1 for an
    /// unstable queue).
    pub fn utilization(&self) -> f64 {
        self.arrival_per_sec * self.service.as_secs_f64()
    }

    /// Whether the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Service rate `μ` in items per second of simulated time; zero for
    /// a zero service time is reported as `f64::INFINITY`.
    pub fn service_rate(&self) -> f64 {
        let s = self.service.as_secs_f64();
        if s > 0.0 {
            1.0 / s
        } else {
            f64::INFINITY
        }
    }

    /// Predicted mean queueing wait (M/D/1, utilisation clamped to
    /// [`MAX_RHO`] so saturated queues report a large finite wait).
    pub fn predicted_wait(&self) -> SimDuration {
        mdl_wait(self.utilization(), self.service)
    }

    /// Predicted mean sojourn latency: queueing wait plus service.
    pub fn predicted_latency(&self) -> SimDuration {
        self.predicted_wait() + self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_mode_parses_and_prints() {
        for (s, want) in [
            ("detailed", SimMode::Detailed),
            ("DES", SimMode::Detailed),
            ("analytic", SimMode::Analytic),
            (" Analytical ", SimMode::Analytic),
            ("fast", SimMode::Analytic),
        ] {
            assert_eq!(s.parse::<SimMode>(), Ok(want), "{s:?}");
        }
        assert!("quantum".parse::<SimMode>().is_err());
        assert_eq!(SimMode::Detailed.as_str(), "detailed");
        assert_eq!(format!("{}", SimMode::Analytic), "analytic");
        assert_eq!(SimMode::default(), SimMode::Detailed);
    }

    #[test]
    fn mdl_wait_shape() {
        let s = SimDuration::from_ns(64);
        assert_eq!(mdl_wait(-1.0, s), SimDuration::ZERO);
        assert_eq!(mdl_wait(f64::NAN, s), SimDuration::ZERO);
        assert_eq!(mdl_wait(0.0, s), SimDuration::ZERO);
        // Monotone in ρ.
        let mut prev = SimDuration::ZERO;
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9, 0.97] {
            let w = mdl_wait(rho, s);
            assert!(w >= prev, "wait must grow with utilisation");
            prev = w;
        }
        // Clamped past MAX_RHO: finite and equal at 2.0 and 100.0.
        assert_eq!(mdl_wait(2.0, s), mdl_wait(100.0, s));
        assert!(mdl_wait(2.0, s) > mdl_wait(0.9, s));
    }

    #[test]
    fn contention_fit_recovers_scale() {
        let s = SimDuration::from_ns(256);
        let truth = 1.7f64;
        let samples: Vec<(f64, SimDuration)> = [0.1, 0.25, 0.4, 0.6, 0.85]
            .iter()
            .map(|&rho| {
                let w = mdl_wait(rho, s).as_ps() as f64 * truth;
                (rho, SimDuration::from_ps(w.round() as u64))
            })
            .collect();
        let m = ContentionModel::fit(&samples, s);
        assert!(
            (m.alpha() - truth).abs() < 0.02,
            "fit alpha {} vs truth {truth}",
            m.alpha()
        );
    }

    #[test]
    fn contention_fit_degenerate_falls_back() {
        let s = SimDuration::from_ns(100);
        let m = ContentionModel::fit(&[], s);
        assert_eq!(m.alpha(), 1.0);
        // All-zero-utilisation samples carry no slope information.
        let m = ContentionModel::fit(&[(0.0, SimDuration::from_ns(5))], s);
        assert_eq!(m.alpha(), 1.0);
        let m = ContentionModel::with_alpha(f64::NAN);
        assert_eq!(m.alpha(), 1.0);
        let m = ContentionModel::with_alpha(-3.0);
        assert_eq!(m.alpha(), 0.0);
    }

    #[test]
    fn queue_model_rates_and_stability() {
        let q = QueueModel::new(1000.0, SimDuration::from_us(100));
        assert!((q.utilization() - 0.1).abs() < 1e-12);
        assert!(q.is_stable());
        assert!((q.service_rate() - 10_000.0).abs() < 1e-6);
        assert!(q.predicted_latency() > q.service);

        let saturated = QueueModel::new(20_000.0, SimDuration::from_us(100));
        assert!(saturated.utilization() > 1.0);
        assert!(!saturated.is_stable());
        // Saturated wait is clamped-finite and larger than any stable wait.
        assert!(saturated.predicted_wait() > q.predicted_wait());

        let degenerate = QueueModel::new(f64::NAN, SimDuration::ZERO);
        assert_eq!(degenerate.utilization(), 0.0);
        assert!(degenerate.service_rate().is_infinite());
    }
}
