//! Regenerates Table 1: shared-memory vs distributed vs in-memory.
fn main() {
    let report = cim_bench::experiments::table1::run(8);
    print!("{}", cim_bench::experiments::table1::render(&report));
}
