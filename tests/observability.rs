//! Integration tests for the observability pipeline (`cim_obs`): SLO
//! burn-rate alerting polarity on the serving stack, interpolated
//! histogram quantiles on a real workload, and span-profile totals
//! reconciling with the end-to-end run.

use cim::fabric::service::{CimService, ServiceConfig, ServiceReport};
use cim::fabric::FabricConfig;
use cim::obs::profile::Profile;
use cim::obs::{AlertSeverity, ObsConfig};
use cim::sim::telemetry::{Telemetry, TelemetryLevel};
use cim::sim::SeedTree;
use cim::workloads::serving::standard_request_mix;

fn serve(rate_hz: f64, n: usize, level: TelemetryLevel) -> (ServiceReport, Telemetry) {
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(0x0B5),
    )
    .expect("service boots");
    svc.runtime_mut().device_mut().enable_telemetry(level);
    svc.enable_observability(ObsConfig::default());
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(0x0B5 ^ 0x7E4A47));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .expect("mix is resident");
    }
    let r = svc.run_open_loop(rate_hz, n, &[]).expect("stream serves");
    let tel = svc.runtime().device().telemetry().clone();
    (r, tel)
}

#[test]
fn healthy_load_fires_no_alerts_and_overload_pages_deterministically() {
    let (healthy, _) = serve(100_000.0, 300, TelemetryLevel::Metrics);
    assert_eq!(healthy.shed, 0, "healthy point must not shed");
    assert!(
        healthy.alerts.is_empty(),
        "healthy point must not alert: {:?}",
        healthy.alerts
    );
    assert!(!healthy.series_jsonl.is_empty(), "series export present");

    let (overload, _) = serve(3_200_000.0, 300, TelemetryLevel::Metrics);
    assert!(overload.shed > 0, "overload must shed");
    let pages: Vec<_> = overload
        .alerts
        .iter()
        .filter(|a| a.severity == AlertSeverity::Page)
        .collect();
    assert!(
        !pages.is_empty(),
        "overload must page: {:?}",
        overload.alerts
    );
    // The alert timeline is a pure function of seed + workload: a second
    // run must reproduce every alert — rule, tenant, burn and sim time —
    // exactly, and the timeline is sorted by sim time.
    let (again, _) = serve(3_200_000.0, 300, TelemetryLevel::Metrics);
    assert_eq!(
        again.alerts, overload.alerts,
        "alert timeline is deterministic"
    );
    assert!(
        overload.alerts.windows(2).all(|w| w[0].at <= w[1].at),
        "alerts are time-sorted"
    );
    assert_eq!(
        again.series_jsonl, overload.series_jsonl,
        "series bytes stable"
    );
}

#[test]
fn interpolated_quantiles_track_exact_percentiles_on_a_serving_run() {
    // Latencies from a real serving run land in the registry's log2
    // histogram; the interpolated quantile must agree with the exact
    // sample percentile to within one histogram bucket width.
    let (r, tel) = serve(400_000.0, 300, TelemetryLevel::Metrics);
    assert!(r.completed > 50, "enough completions to compare quantiles");
    let service = tel.component("service");
    let hist = tel
        .with_registry(|reg| reg.histogram(service, "latency_ns").cloned())
        .flatten()
        .expect("service latency histogram exists");
    for q in [0.5, 0.95, 0.99] {
        let interp = hist.quantile(q).expect("non-empty histogram");
        assert!(interp.is_finite() && interp > 0.0, "q{q}: {interp}");
    }
    // p50 from the interpolated histogram vs the report's exact p50:
    // same histogram bucket (factor-of-2 bracket).
    let p50_ns = r.latency.p50_us * 1000.0;
    let interp50 = hist.quantile(0.5).unwrap();
    assert!(
        interp50 <= p50_ns * 2.0 && interp50 >= p50_ns / 2.0,
        "interpolated p50 {interp50} ns vs exact {p50_ns} ns"
    );
}

#[test]
fn span_profile_totals_reconcile_with_the_end_to_end_run() {
    let (r, tel) = serve(100_000.0, 100, TelemetryLevel::Full);
    assert_eq!(r.failed, 0, "healthy run");
    let profile = Profile::from_telemetry(&tel, 32);
    assert!(profile.span_count > 0, "full tracing records spans");
    // Self-time decomposition is exact: summed flamegraph self weights
    // equal the root spans' total duration and energy.
    assert_eq!(
        profile.total_self_ps, profile.root_ps,
        "self-time shares must sum to the end-to-end total"
    );
    assert_eq!(
        profile.total_self_fj, profile.root_fj,
        "self-energy shares must sum to the end-to-end total"
    );
    // Folded stacks parse as `frames weight` lines with positive weights
    // summing to the same totals.
    let folded = profile.folded_time();
    let mut sum: u64 = 0;
    for line in folded.lines() {
        let (stack, w) = line.rsplit_once(' ').expect("folded line");
        assert!(!stack.is_empty());
        sum += w.parse::<u64>().expect("weight parses");
    }
    assert_eq!(sum, profile.total_self_ps, "folded weights sum to total");
    // Profile JSONL validates and double-folding is byte-stable.
    for line in profile.export_jsonl().lines() {
        cim::sim::telemetry::validate_jsonl_line(line).expect("profile line valid");
    }
    let again = Profile::from_telemetry(&tel, 32);
    assert_eq!(again.folded_time(), folded, "folded stacks byte-stable");
}
