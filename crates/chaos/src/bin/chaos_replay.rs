//! Reproduces a chaos violation from its replay file.
//!
//! ```text
//! chaos_replay path/to/repro.jsonl [--telemetry PATH]
//! ```
//!
//! Parses the replay file, re-runs the recorded schedule under the
//! recorded config, and checks the violation reproduces: same
//! invariant, and — when the file carries one — a bit-identical run
//! fingerprint. The file's triage timeline (SLO alerts of the recorded
//! violating run) is printed before replaying so the operator sees
//! *when* the run went bad. Exit 0 on a faithful reproduction, 1
//! otherwise. Because the whole stack is deterministic, running this
//! under different `CIM_THREADS` settings must give the same result; CI
//! does exactly that.
//!
//! `--telemetry PATH` writes the replayed run's full observability
//! export (telemetry + time series + SLO alerts, one JSONL stream).

use cim_chaos::replay::parse_replay;
use cim_chaos::runner::{export_run, run_schedule};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut telemetry: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => match args.get(i + 1) {
                Some(p) => {
                    telemetry = Some(p.clone());
                    i += 2;
                }
                None => return usage("--telemetry needs a path"),
            },
            other if path.is_none() => {
                path = Some(other.to_owned());
                i += 1;
            }
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing replay file path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos_replay: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match parse_replay(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("chaos_replay: malformed replay file: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "replaying seed {:#018x}: {} events, recorded violation '{}' ({})",
        file.seed,
        file.schedule.events.len(),
        file.invariant,
        file.detail
    );
    if !file.triage.is_empty() {
        println!("triage timeline ({} alert(s)):", file.triage.len());
        for a in &file.triage {
            println!(
                "  t={:>12} ps  [{}] {} tenant={} burn={:.2}",
                a.at.as_ps(),
                a.severity.name(),
                a.rule,
                a.tenant,
                a.burn_rate
            );
        }
    }

    if let Some(out) = &telemetry {
        match export_run(&file.config, &file.schedule) {
            Ok(text) => match std::fs::write(out, text) {
                Ok(()) => println!("observability export written to {out}"),
                Err(e) => eprintln!("failed to write observability export {out}: {e}"),
            },
            Err(e) => eprintln!("observability export run aborted: {e}"),
        }
    }

    match run_schedule(&file.config, &file.schedule) {
        Ok(rec) => {
            eprintln!(
                "NOT REPRODUCED: the schedule now satisfies every invariant \
                 (fingerprint {:#018x})",
                rec.fingerprint
            );
            ExitCode::FAILURE
        }
        Err(v) => {
            if v.invariant != file.invariant {
                eprintln!(
                    "DIFFERENT VIOLATION: recorded '{}', observed '{}' ({})",
                    file.invariant, v.invariant, v.detail
                );
                return ExitCode::FAILURE;
            }
            match (file.fingerprint, v.fingerprint) {
                (Some(want), Some(got)) if want != got => {
                    eprintln!("FINGERPRINT MISMATCH: recorded {want:#018x}, observed {got:#018x}");
                    ExitCode::FAILURE
                }
                _ => {
                    println!(
                        "reproduced: '{}' ({}){}",
                        v.invariant,
                        v.detail,
                        v.fingerprint
                            .map(|fp| format!(", fingerprint {fp:#018x}"))
                            .unwrap_or_default()
                    );
                    ExitCode::SUCCESS
                }
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("chaos_replay: {err}");
    eprintln!("usage: chaos_replay path/to/repro.jsonl [--telemetry PATH]");
    ExitCode::FAILURE
}
