//! Reliability campaigns: detection, containment, prevention, recovery
//! (paper §V.A).
//!
//! The execution engine already performs inline recovery (detect → fence →
//! remap → reprogram → replay). This module adds the experiment harness on
//! top: scheduled fault campaigns against a running stream, and duplexed
//! (redundant) execution for silent-data-corruption detection — the
//! "fault prevention through redundancy of components" row of §V.A.

use crate::device::CimDevice;
use crate::engine::{MappedProgram, StreamOptions, StreamReport};
use crate::error::Result;
use crate::mapper::MappingPolicy;
use cim_dataflow::graph::{DataflowGraph, NodeRef};
use cim_sim::time::SimDuration;
use std::collections::HashMap;

/// A scheduled fault: before processing item `before_item`, the unit
/// currently hosting graph node `node` hard-fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Item index the fault precedes.
    pub before_item: usize,
    /// Graph node whose hosting unit fails.
    pub node: usize,
}

/// Outcome of a fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The merged stream report.
    pub stream: StreamReport,
    /// Overhead added by each recovery, in injection order.
    pub recovery_overheads: Vec<SimDuration>,
    /// Number of items whose results were produced after at least one
    /// recovery (delayed but not lost — §V.A upstream buffering).
    pub items_delayed: usize,
}

/// Runs `inputs` through a loaded program while injecting the scheduled
/// faults. No item is lost: faults only add recovery latency.
///
/// # Errors
///
/// Propagates execution errors (including spare exhaustion).
pub fn run_fault_campaign(
    device: &mut CimDevice,
    prog: &mut MappedProgram,
    inputs: &[HashMap<NodeRef, Vec<f64>>],
    opts: &StreamOptions,
    faults: &[ScheduledFault],
) -> Result<CampaignReport> {
    let mut sorted = faults.to_vec();
    sorted.sort_by_key(|f| f.before_item);

    let mut merged: Option<StreamReport> = None;
    let mut cursor = 0usize;
    let mut fault_iter = sorted.iter().peekable();

    while cursor < inputs.len() {
        // Inject every fault scheduled at this cursor.
        while let Some(f) = fault_iter.peek() {
            if f.before_item == cursor {
                let unit = prog.placement().unit_of(f.node);
                device.fail_unit(unit);
                fault_iter.next();
            } else {
                break;
            }
        }
        let next_stop = fault_iter
            .peek()
            .map(|f| f.before_item.min(inputs.len()))
            .unwrap_or(inputs.len())
            .max(cursor + 1);
        let chunk = &inputs[cursor..next_stop];
        let chunk_opts = StreamOptions {
            inter_arrival: opts.inter_arrival,
            start: opts.start + opts.inter_arrival * cursor as u64,
            capabilities: opts.capabilities.clone(),
            injections: opts.injections.clone(),
        };
        let report = device.execute_stream(prog, chunk, &chunk_opts)?;
        merged = Some(match merged {
            None => report,
            Some(mut acc) => {
                let item_offset = acc.outputs.len();
                acc.outputs.extend(report.outputs);
                acc.injected.extend(report.injected);
                acc.completed.extend(report.completed);
                acc.energy += report.energy;
                acc.recoveries
                    .extend(report.recoveries.into_iter().map(|mut r| {
                        r.item += item_offset;
                        r
                    }));
                acc
            }
        });
        cursor = next_stop;
    }

    let stream = merged.unwrap_or(StreamReport {
        outputs: Vec::new(),
        injected: Vec::new(),
        completed: Vec::new(),
        energy: cim_sim::Energy::ZERO,
        recoveries: Vec::new(),
    });
    let recovery_overheads: Vec<SimDuration> =
        stream.recoveries.iter().map(|r| r.overhead).collect();
    let delayed: std::collections::HashSet<usize> =
        stream.recoveries.iter().map(|r| r.item).collect();
    Ok(CampaignReport {
        items_delayed: delayed.len(),
        recovery_overheads,
        stream,
    })
}

/// Result of duplexed (dual-redundant) execution.
#[derive(Debug, Clone)]
pub struct DuplexReport {
    /// Items whose two replicas disagreed beyond `tolerance` — detected
    /// (would-be-silent) corruptions.
    pub mismatched_items: Vec<usize>,
    /// Primary replica's report.
    pub primary: StreamReport,
    /// Shadow replica's report.
    pub shadow: StreamReport,
}

/// Runs the same graph on two disjoint placements and compares sink
/// outputs element-wise; a disagreement beyond `tolerance` marks the item
/// as corrupted. This is §V.A's "any component can be replicated, just
/// like information can be protected using ECC".
///
/// # Errors
///
/// Propagates load/execution errors (the device needs 2× capacity).
pub fn run_duplex(
    device: &mut CimDevice,
    graph: &DataflowGraph,
    inputs: &[HashMap<NodeRef, Vec<f64>>],
    tolerance: f64,
) -> Result<DuplexReport> {
    let mut primary_prog = device.load_program(graph, MappingPolicy::LocalityAware)?;
    let mut shadow_prog = device.load_program(graph, MappingPolicy::LocalityAware)?;
    let opts = StreamOptions::default();
    let primary = device.execute_stream(&mut primary_prog, inputs, &opts)?;
    let shadow = device.execute_stream(&mut shadow_prog, inputs, &opts)?;
    let mut mismatched_items = Vec::new();
    for (i, (a, b)) in primary.outputs.iter().zip(&shadow.outputs).enumerate() {
        let mut bad = false;
        for (sink, va) in a {
            let vb = &b[sink];
            if va.iter().zip(vb).any(|(x, y)| (x - y).abs() > tolerance) {
                bad = true;
            }
        }
        if bad {
            mismatched_items.push(i);
        }
    }
    Ok(DuplexReport {
        mismatched_items,
        primary,
        shadow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use cim_crossbar::device::CellFault;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};

    fn device() -> CimDevice {
        CimDevice::new(FabricConfig {
            mesh_width: 4,
            mesh_height: 4,
            units_per_tile: 4,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .unwrap()
    }

    fn pipeline_graph() -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 8 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 8,
                cols: 8,
                weights: (0..64).map(|i| ((i % 9) as f64 - 4.0) / 10.0).collect(),
            },
        );
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width: 8,
            },
        );
        let k = b.add("k", Operation::Sink { width: 8 });
        b.chain(&[s, mv, m, k]).unwrap();
        let g = b.build().unwrap();
        (g, s, k)
    }

    fn inputs(src: NodeRef, n: usize) -> Vec<HashMap<NodeRef, Vec<f64>>> {
        (0..n)
            .map(|i| HashMap::from([(src, vec![(i % 5) as f64 / 5.0; 8])]))
            .collect()
    }

    #[test]
    fn campaign_loses_no_items() {
        let mut d = device();
        let (g, s, k) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 10);
        let faults = [
            ScheduledFault {
                before_item: 3,
                node: 1,
            },
            ScheduledFault {
                before_item: 7,
                node: 2,
            },
        ];
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &faults)
                .unwrap();
        assert_eq!(report.stream.outputs.len(), 10, "no item lost");
        assert_eq!(report.recovery_overheads.len(), 2);
        assert_eq!(report.items_delayed, 2);
        // Every item still has a sink value.
        for out in &report.stream.outputs {
            assert_eq!(out[&k].len(), 8);
        }
    }

    #[test]
    fn campaign_without_faults_is_plain_stream() {
        let mut d = device();
        let (g, s, _) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 5);
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &[]).unwrap();
        assert_eq!(report.stream.outputs.len(), 5);
        assert!(report.recovery_overheads.is_empty());
        assert_eq!(report.items_delayed, 0);
    }

    #[test]
    fn fault_before_the_first_item_recovers_item_zero() {
        let mut d = device();
        let (g, s, k) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 4);
        let faults = [ScheduledFault {
            before_item: 0,
            node: 1,
        }];
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &faults)
                .unwrap();
        assert_eq!(report.stream.outputs.len(), 4, "no item lost");
        assert_eq!(report.recovery_overheads.len(), 1);
        assert_eq!(report.stream.recoveries[0].item, 0, "item 0 recovers");
        for out in &report.stream.outputs {
            assert_eq!(out[&k].len(), 8);
        }
    }

    #[test]
    fn two_faults_before_the_same_item_both_recover() {
        let mut d = device();
        let (g, s, k) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 6);
        // Two different nodes lose their units at the same instant; the
        // stream must fence and replace both while item 2 is in flight.
        let faults = [
            ScheduledFault {
                before_item: 2,
                node: 1,
            },
            ScheduledFault {
                before_item: 2,
                node: 2,
            },
        ];
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &faults)
                .unwrap();
        assert_eq!(report.stream.outputs.len(), 6, "no item lost");
        assert_eq!(
            report.recovery_overheads.len(),
            2,
            "one overhead per injection"
        );
        assert_eq!(report.items_delayed, 1, "both faults hit the same item");
        for out in &report.stream.outputs {
            assert_eq!(out[&k].len(), 8);
        }
    }

    #[test]
    fn fault_before_the_final_item_still_completes_the_stream() {
        let mut d = device();
        let (g, s, k) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 5);
        let faults = [ScheduledFault {
            before_item: 4,
            node: 1,
        }];
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &faults)
                .unwrap();
        assert_eq!(report.stream.outputs.len(), 5, "no item lost");
        assert_eq!(report.recovery_overheads.len(), 1);
        assert_eq!(
            report.stream.recoveries[0].item, 4,
            "the final item is the one delayed"
        );
        assert_eq!(out_width(&report, k), 8);
    }

    fn out_width(report: &CampaignReport, k: NodeRef) -> usize {
        report.stream.outputs.last().unwrap()[&k].len()
    }

    #[test]
    fn recovery_overhead_is_dominated_by_reprogramming() {
        let mut d = device();
        let (g, s, _) = pipeline_graph();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let ins = inputs(s, 4);
        let faults = [ScheduledFault {
            before_item: 2,
            node: 1,
        }];
        let report =
            run_fault_campaign(&mut d, &mut prog, &ins, &StreamOptions::default(), &faults)
                .unwrap();
        // Reprogramming a matvec node costs >> detection (1 us).
        assert!(report.recovery_overheads[0] > SimDuration::from_us(2));
    }

    #[test]
    fn power_cycle_mid_stream_preserves_programmed_state() {
        // §V.A meets persistence: a power loss between items wipes the
        // volatile machinery but the programmed conductances are
        // memristive and survive, so the stream resumes bit-identically
        // without reprogramming.
        let (g, s, k) = pipeline_graph();
        let ins = inputs(s, 8);

        let mut base = device();
        let mut base_prog = base.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let uninterrupted = base
            .execute_stream(&mut base_prog, &ins, &StreamOptions::default())
            .unwrap();

        let mut d = device();
        let mut prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let first = d
            .execute_stream(&mut prog, &ins[..4], &StreamOptions::default())
            .unwrap();
        // The crash: snapshot the nonvolatile slice of every unit
        // (health, assignment, programmed engine — what the memristors
        // keep), wipe everything volatile, restore. This is the same
        // pass `CimRuntime::power_cycle` runs, exercised at device
        // level against an in-flight §V.A stream.
        let nv: Vec<_> = d
            .units()
            .iter()
            .map(|u| (u.health(), u.assigned_node(), u.dpe().cloned()))
            .collect();
        d.wipe_volatile();
        assert!(d.volatile_pristine(), "a wiped device looks freshly booted");
        for (i, (health, node, dpe)) in nv.into_iter().enumerate() {
            d.unit_mut(i).restore_nv(health, node, dpe);
        }
        let second = d
            .execute_stream(&mut prog, &ins[4..], &StreamOptions::default())
            .unwrap();

        for (i, out) in first.outputs.iter().chain(&second.outputs).enumerate() {
            assert_eq!(
                out[&k], uninterrupted.outputs[i][&k],
                "item {i} survives the crash bit-identically"
            );
        }
    }

    #[test]
    fn duplex_detects_injected_corruption() {
        let mut d = device();
        let (g, s, _) = pipeline_graph();
        let ins = inputs(s, 3);
        // Clean duplex first: ideal devices agree.
        let clean = run_duplex(&mut d, &g, &ins, 1e-6).unwrap();
        assert!(clean.mismatched_items.is_empty(), "ideal replicas agree");

        // Corrupt the primary's crossbar silently and re-run.
        let mut d = device();
        let mut primary_prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let mut shadow_prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        let victim = primary_prog.placement().unit_of(1);
        if let Some(dpe) = d.unit_mut(victim).dpe_mut() {
            dpe.for_each_array(|_, _, _, _, xbar| {
                for r in 0..4 {
                    xbar.inject_fault(r, 0, CellFault::StuckOn).unwrap();
                }
            });
        }
        let opts = StreamOptions::default();
        let p = d.execute_stream(&mut primary_prog, &ins, &opts).unwrap();
        let sh = d.execute_stream(&mut shadow_prog, &ins, &opts).unwrap();
        let disagree = p.outputs.iter().zip(&sh.outputs).any(|(a, b)| {
            a.iter()
                .any(|(sink, va)| va.iter().zip(&b[sink]).any(|(x, y)| (x - y).abs() > 1e-6))
        });
        assert!(disagree, "stuck-on cells must perturb the primary only");
    }
}
