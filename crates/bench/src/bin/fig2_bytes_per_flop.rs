//! Regenerates Fig 2: memory bandwidth per FLOP, 1949–2018.
fn main() {
    let report = cim_bench::experiments::fig2::run();
    print!("{}", cim_bench::experiments::fig2::render(&report));
}
