//! Historical machine dataset for Fig 2 (memory bandwidth per FLOP).
//!
//! The paper's Fig 2 plots the steady drop of the bytes/FLOP ratio from
//! ~1 (all of memory available at processor speed) to several orders of
//! magnitude lower. This module reproduces the figure from public peak
//! FLOP/s and memory-bandwidth numbers for representative machines from
//! EDVAC (1949) to Summit-era parts (2018). Figures are peak/vendor
//! numbers from the standard literature (Hennessy & Patterson, vendor
//! datasheets, TOP500 reports); they are order-of-magnitude data, which is
//! all the figure requires.

/// One machine's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Machine name.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u32,
    /// Peak floating-point rate, FLOP/s.
    pub flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub mem_bw: f64,
}

impl Machine {
    /// Memory bandwidth per FLOP — the paper's Fig 2 y-axis.
    pub fn bytes_per_flop(&self) -> f64 {
        self.mem_bw / self.flops
    }
}

/// The curated dataset, in chronological order.
pub const MACHINES: &[Machine] = &[
    Machine {
        name: "EDVAC",
        year: 1949,
        flops: 3.4e2,
        mem_bw: 4.0e2,
    },
    Machine {
        name: "UNIVAC I",
        year: 1951,
        flops: 4.6e2,
        mem_bw: 7.0e2,
    },
    Machine {
        name: "IBM 704",
        year: 1954,
        flops: 1.2e4,
        mem_bw: 2.0e4,
    },
    Machine {
        name: "IBM 7090",
        year: 1959,
        flops: 1.0e5,
        mem_bw: 2.2e5,
    },
    Machine {
        name: "CDC 6600",
        year: 1964,
        flops: 3.0e6,
        mem_bw: 4.8e6,
    },
    Machine {
        name: "IBM 360/91",
        year: 1967,
        flops: 1.6e7,
        mem_bw: 1.3e7,
    },
    Machine {
        name: "CDC 7600",
        year: 1969,
        flops: 3.6e7,
        mem_bw: 3.6e7,
    },
    Machine {
        name: "Cray-1",
        year: 1976,
        flops: 1.6e8,
        mem_bw: 6.4e8,
    },
    Machine {
        name: "Cray X-MP",
        year: 1983,
        flops: 8.0e8,
        mem_bw: 2.4e9,
    },
    Machine {
        name: "Cray-2",
        year: 1985,
        flops: 1.9e9,
        mem_bw: 2.0e9,
    },
    Machine {
        name: "Cray Y-MP",
        year: 1988,
        flops: 2.7e9,
        mem_bw: 5.4e9,
    },
    Machine {
        name: "Intel i860",
        year: 1989,
        flops: 8.0e7,
        mem_bw: 1.6e8,
    },
    Machine {
        name: "Pentium",
        year: 1993,
        flops: 6.6e7,
        mem_bw: 5.3e8,
    },
    Machine {
        name: "Cray T90",
        year: 1995,
        flops: 1.8e9,
        mem_bw: 1.4e10,
    },
    Machine {
        name: "Pentium II",
        year: 1997,
        flops: 3.0e8,
        mem_bw: 8.0e8,
    },
    Machine {
        name: "Pentium III",
        year: 1999,
        flops: 1.0e9,
        mem_bw: 1.1e9,
    },
    Machine {
        name: "Pentium 4",
        year: 2002,
        flops: 6.0e9,
        mem_bw: 3.2e9,
    },
    Machine {
        name: "AMD Opteron 250",
        year: 2005,
        flops: 9.6e9,
        mem_bw: 6.4e9,
    },
    Machine {
        name: "Core 2 Quad",
        year: 2007,
        flops: 3.8e10,
        mem_bw: 8.5e9,
    },
    Machine {
        name: "Nehalem-EP",
        year: 2009,
        flops: 5.1e10,
        mem_bw: 2.6e10,
    },
    Machine {
        name: "Sandy Bridge-EP",
        year: 2012,
        flops: 1.7e11,
        mem_bw: 5.1e10,
    },
    Machine {
        name: "Haswell-EP",
        year: 2014,
        flops: 5.0e11,
        mem_bw: 6.0e10,
    },
    Machine {
        name: "NVIDIA K80",
        year: 2014,
        flops: 2.9e12,
        mem_bw: 4.8e11,
    },
    Machine {
        name: "Xeon Phi KNL",
        year: 2016,
        flops: 3.0e12,
        mem_bw: 4.0e11,
    },
    Machine {
        name: "NVIDIA P100",
        year: 2016,
        flops: 5.3e12,
        mem_bw: 7.2e11,
    },
    Machine {
        name: "Skylake-SP 8160",
        year: 2017,
        flops: 1.6e12,
        mem_bw: 1.2e11,
    },
    Machine {
        name: "NVIDIA V100",
        year: 2017,
        flops: 7.8e12,
        mem_bw: 9.0e11,
    },
    Machine {
        name: "Summit node",
        year: 2018,
        flops: 4.9e13,
        mem_bw: 5.4e12,
    },
];

/// A fitted log-linear trend of the bytes/FLOP ratio over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trend {
    /// Slope in log10(bytes/FLOP) per year (negative = decline).
    pub log10_slope_per_year: f64,
    /// Intercept at year 0 (for reconstruction).
    pub log10_intercept: f64,
}

impl Trend {
    /// Change in orders of magnitude per decade.
    pub fn orders_per_decade(&self) -> f64 {
        self.log10_slope_per_year * 10.0
    }

    /// Predicted ratio at `year`.
    pub fn predict(&self, year: u32) -> f64 {
        10f64.powf(self.log10_intercept + self.log10_slope_per_year * year as f64)
    }
}

/// Ordinary-least-squares fit of `log10(bytes/FLOP)` against year over the
/// whole dataset.
pub fn fit_trend(machines: &[Machine]) -> Trend {
    assert!(machines.len() >= 2, "need at least two machines to fit");
    let n = machines.len() as f64;
    let xs: Vec<f64> = machines.iter().map(|m| m.year as f64).collect();
    let ys: Vec<f64> = machines
        .iter()
        .map(|m| m.bytes_per_flop().log10())
        .collect();
    let xm = xs.iter().sum::<f64>() / n;
    let ym = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - xm) * (y - ym)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - xm) * (x - xm)).sum();
    let slope = sxy / sxx;
    Trend {
        log10_slope_per_year: slope,
        log10_intercept: ym - slope * xm,
    }
}

/// Mean bytes/FLOP of machines introduced in `[start, end)`.
pub fn era_mean(machines: &[Machine], start: u32, end: u32) -> Option<f64> {
    let era: Vec<f64> = machines
        .iter()
        .filter(|m| m.year >= start && m.year < end)
        .map(|m| m.bytes_per_flop())
        .collect();
    if era.is_empty() {
        None
    } else {
        Some(era.iter().sum::<f64>() / era.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_chronological_and_plausible() {
        for pair in MACHINES.windows(2) {
            assert!(
                pair[0].year <= pair[1].year,
                "{} out of order",
                pair[1].name
            );
        }
        for m in MACHINES {
            assert!(m.flops > 0.0 && m.mem_bw > 0.0, "{} has bad data", m.name);
            let r = m.bytes_per_flop();
            assert!(r > 1e-4 && r < 100.0, "{} ratio {r} implausible", m.name);
        }
    }

    #[test]
    fn early_machines_near_parity_late_machines_starved() {
        let early = era_mean(MACHINES, 1940, 1980).expect("early era present");
        let late = era_mean(MACHINES, 2010, 2020).expect("late era present");
        assert!(early > 1.0, "pre-1980 machines were ~balanced, got {early}");
        assert!(late < 0.25, "modern machines are starved, got {late}");
        assert!(
            early / late > 10.0,
            "at least an order of magnitude decline: {early} -> {late}"
        );
    }

    #[test]
    fn trend_declines() {
        let t = fit_trend(MACHINES);
        assert!(
            t.log10_slope_per_year < 0.0,
            "Fig 2's decline must be negative, got {}",
            t.log10_slope_per_year
        );
        // Roughly a quarter to three-quarters of an order per decade.
        let opd = t.orders_per_decade();
        assert!((-1.2..=-0.1).contains(&opd), "orders/decade {opd}");
        // Prediction should decrease over time.
        assert!(t.predict(2018) < t.predict(1976));
    }

    #[test]
    fn era_mean_handles_empty_eras() {
        assert!(era_mean(MACHINES, 1900, 1940).is_none());
    }
}
