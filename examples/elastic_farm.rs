//! Dynamic dataflow with closed-loop resource management (paper §III.B
//! "dynamic dataflow" + §IV.C).
//!
//! A stage is replicated across micro-units and incoming items are routed
//! dynamically — explicitly (hash routing), or implicitly from fabric
//! state (least-loaded). An SLA controller then autoscales the replica
//! set until the p99 latency target is met.
//!
//! Run with `cargo run --release --example elastic_farm`.

use cim::dataflow::ops::{Elementwise, Operation};
use cim::dataflow::program::{HashRoute, LeastLoadedRoute};
use cim::fabric::resman::{run_farm, LoadReport, SlaController};
use cim::fabric::{CimDevice, FabricConfig};
use cim::sim::SimDuration;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A heavy elementwise stage (e.g. per-record feature extraction).
    let stage = Operation::Map {
        func: Elementwise::Sigmoid,
        width: 4096,
    };
    let items: Vec<Vec<f64>> = (0..96).map(|i| vec![f64::from(i % 7); 4096]).collect();

    // 1. Hash routing vs least-loaded routing on 4 replicas.
    for (name, policy) in [
        (
            "hash",
            &HashRoute as &dyn cim::dataflow::program::RoutePolicy,
        ),
        ("least-loaded", &LeastLoadedRoute),
    ] {
        let mut device = CimDevice::new(FabricConfig::default())?;
        let report = run_farm(&mut device, &stage, 4, &items, SimDuration::ZERO, policy)?;
        let p99 = report.latency_quantile(0.99);
        let load = LoadReport::capture(&device);
        let used: Vec<usize> = device
            .units()
            .iter()
            .filter(|u| u.items_processed() > 0)
            .map(|u| u.index())
            .collect();
        let imbalance = load.imbalance(&used).unwrap_or(1.0);
        println!(
            "{name:>12} routing: p99 {p99}, imbalance {imbalance:.2} \
             (assignments of first 8 items: {:?})",
            &report.assignments[..8]
        );
    }

    // 2. Closed-loop autoscaling to an SLA (§IV.C "enabling closed loops").
    let mut device = CimDevice::new(FabricConfig::default())?;
    // Find what a single replica achieves, then demand 4x better.
    let probe = {
        let mut d = CimDevice::new(FabricConfig::default())?;
        run_farm(
            &mut d,
            &stage,
            1,
            &items,
            SimDuration::ZERO,
            &LeastLoadedRoute,
        )?
        .latency_quantile(0.99)
    };
    let controller = SlaController {
        p99_target: probe / 4,
        max_replicas: 32,
    };
    println!(
        "\nSLA: single replica p99 is {probe}; target {} ",
        controller.p99_target
    );
    let (replicas, achieved) = controller.autoscale(
        &mut device,
        &stage,
        &items,
        SimDuration::ZERO,
        &LeastLoadedRoute,
    )?;
    println!("autoscaler settled at {replicas} replicas, achieved p99 {achieved}");
    Ok(())
}
