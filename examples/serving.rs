//! Serving: a CIM device as a multi-tenant inference service.
//!
//! Boots a [`CimService`], registers the standard three-tenant request
//! mix as resident programs, then drives an open-loop arrival stream
//! through three regimes:
//!
//! 1. light load — every request meets its SLO;
//! 2. saturation — the bounded admission queue sheds load and p99 of
//!    *admitted* requests stays bounded;
//! 3. faults — units die under the stream mid-flight; §V.A spare
//!    recovery plus service-level retry keep every request accounted.
//!
//! Run with `cargo run --release --example serving`.

use cim::fabric::service::{CimService, ServiceConfig, ServiceEvent};
use cim::fabric::FabricConfig;
use cim::sim::telemetry::TelemetryLevel;
use cim::sim::time::SimTime;
use cim::sim::SeedTree;
use cim::workloads::serving::standard_request_mix;
use std::error::Error;

fn boot(seed: u64) -> Result<CimService, Box<dyn Error>> {
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(seed),
    )?;
    svc.runtime_mut()
        .device_mut()
        .enable_telemetry(TelemetryLevel::Metrics);
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(seed ^ 0xC1A55));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)?;
    }
    Ok(svc)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== CIM serving: open-loop request stream ==\n");
    println!(
        "{:>12} {:>8} {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
        "rate(req/s)", "admitted", "shed", "t/o", "failed", "recov", "p50(us)", "p99(us)"
    );
    for rate in [20_000.0, 100_000.0, 400_000.0, 1_600_000.0] {
        let mut svc = boot(0x5E21)?;
        let r = svc.run_open_loop(rate, 400, &[])?;
        println!(
            "{:>12} {:>8} {:>6} {:>6} {:>8} {:>8} {:>9.1} {:>9.1}",
            rate as u64,
            r.admitted,
            r.shed,
            r.timed_out,
            r.failed,
            r.recoveries,
            r.latency.p50_us,
            r.latency.p99_us
        );
    }

    println!("\n== same stream, three unit failures injected ==\n");
    let mut svc = boot(0x5E21)?;
    // Kill three units that host nodes of the interactive tenant while
    // the stream is in flight.
    let job = svc.class_job(0).expect("registered");
    let prog = svc.runtime().program(job).expect("resident").clone();
    let victims: Vec<usize> = prog.placement().node_to_unit[1..4].to_vec();
    let events: Vec<ServiceEvent> = victims
        .iter()
        .enumerate()
        .map(|(i, &unit)| ServiceEvent::FailUnit {
            at: SimTime::from_ns(((i + 1) * 300_000) as u64),
            unit,
        })
        .collect();
    let r = svc.run_open_loop(100_000.0, 400, &events)?;
    println!(
        "failed units {:?}: admitted {}, shed {}, timed-out {}, failed {}, recoveries {}, \
         p99 {:.1} us, zero lost = {}",
        victims,
        r.admitted,
        r.shed,
        r.timed_out,
        r.failed,
        r.recoveries,
        r.latency.p99_us,
        r.zero_lost()
    );
    assert!(r.zero_lost(), "no request may be lost under unit failures");
    Ok(())
}
