//! The CIM device: a mesh of tiles of micro-units plus the interconnect.
//!
//! This is the paper's Fig 5 hierarchy made concrete: micro-units grouped
//! into tiles, tiles arranged in a 2-D mesh, packets between them carried
//! by [`cim_noc::NocNetwork`]. The device owns the global energy meter and
//! trace buffer every experiment reads.

use crate::config::FabricConfig;
use crate::error::{FabricError, Result};
use crate::security::{AdversaryState, AttackLog, ADVERSARY_DOMAIN};
use crate::unit::{MicroUnit, UnitHealth};
use cim_noc::network::NocNetwork;
use cim_noc::packet::NodeId;
use cim_sim::energy::EnergyMeter;
use cim_sim::rng::splitmix64;
use cim_sim::telemetry::{ComponentId, Telemetry, TelemetryLevel};
use cim_sim::time::SimDuration;
use cim_sim::trace::TraceBuffer;
use cim_sim::SeedTree;

/// A complete CIM device.
///
/// # Examples
///
/// ```
/// use cim_fabric::config::FabricConfig;
/// use cim_fabric::device::CimDevice;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let device = CimDevice::new(FabricConfig::default())?;
/// assert_eq!(device.units().len(), 64);
/// assert_eq!(device.healthy_unit_count(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CimDevice {
    config: FabricConfig,
    noc: NocNetwork,
    units: Vec<MicroUnit>,
    seeds: SeedTree,
    meter: EnergyMeter,
    trace: TraceBuffer,
    next_packet_id: u64,
    telemetry: Telemetry,
    tel_engine: ComponentId,
    tel_runtime: ComponentId,
    tel_noc: ComponentId,
    /// Armed-adversary state (compromised tile, token authority, attack
    /// ledger) — `None` unless a chaos harness armed the device.
    adversary: Option<AdversaryState>,
}

impl CimDevice {
    /// Builds a device from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] (or a wrapped layer error)
    /// if the configuration is unusable.
    pub fn new(config: FabricConfig) -> Result<Self> {
        config.validate()?;
        let mut noc = NocNetwork::new(config.mesh_width, config.mesh_height, config.seed)
            .map_err(FabricError::from)?;
        noc.set_encryption(config.encryption);
        noc.set_mode(config.sim_mode);
        let mut units = Vec::with_capacity(config.total_units());
        for y in 0..config.mesh_height {
            for x in 0..config.mesh_width {
                for _ in 0..config.units_per_tile {
                    let index = units.len();
                    units.push(MicroUnit::new(index, NodeId::new(x as u16, y as u16)));
                }
            }
        }
        Ok(CimDevice {
            seeds: SeedTree::new(config.seed),
            config,
            noc,
            units,
            meter: EnergyMeter::new(),
            trace: TraceBuffer::default(),
            next_packet_id: 0,
            telemetry: Telemetry::disabled(),
            tel_engine: ComponentId::NONE,
            tel_runtime: ComponentId::NONE,
            tel_noc: ComponentId::NONE,
            adversary: None,
        })
    }

    /// Enables telemetry at `level` for the whole device: the stream
    /// engine, the runtime, the NoC (under `noc/…`) and every micro-unit
    /// (under `tile(x,y)/mu{i}/…`). Returns the shared handle, which stays
    /// live after the device is dropped.
    pub fn enable_telemetry(&mut self, level: TelemetryLevel) -> Telemetry {
        let t = Telemetry::new(level);
        self.install_telemetry(&t);
        t
    }

    /// Installs an existing telemetry handle (e.g. one sink shared across
    /// devices). All component ids are interned up front so the hot paths
    /// do no string work.
    pub fn install_telemetry(&mut self, t: &Telemetry) {
        self.telemetry = t.clone();
        self.tel_engine = t.component("engine");
        self.tel_runtime = t.component("runtime");
        self.tel_noc = t.component("noc");
        self.noc.attach_telemetry(t, "noc");
        for u in &mut self.units {
            u.attach_telemetry(t);
        }
    }

    /// The device telemetry handle (disabled unless
    /// [`enable_telemetry`](Self::enable_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub(crate) fn engine_component(&self) -> ComponentId {
        self.tel_engine
    }

    pub(crate) fn runtime_component(&self) -> ComponentId {
        self.tel_runtime
    }

    pub(crate) fn noc_component(&self) -> ComponentId {
        self.tel_noc
    }

    /// Fault→recovery latencies, one per recovery, oldest first.
    ///
    /// Measured from the span tracer when span tracing is on
    /// ([`TelemetryLevel::Full`]): each `recovery` span runs from the
    /// fault's detection window to replay readiness. When spans are off,
    /// falls back to pairing component-scoped `fault detected` /
    /// `recovered` trace records via [`TraceBuffer::find_in`] — never the
    /// old whole-buffer substring search, which could match an unrelated
    /// unit's message.
    pub fn recovery_latencies(&self) -> Vec<SimDuration> {
        let spans = self.telemetry.completed_spans("recovery");
        if !spans.is_empty() {
            return spans.iter().filter_map(|s| s.duration()).collect();
        }
        let mut components: Vec<&str> = Vec::new();
        for r in self.trace.iter() {
            if r.message.contains("fault detected") && !components.contains(&r.component.as_str()) {
                components.push(&r.component);
            }
        }
        let mut out = Vec::new();
        for comp in components {
            let fault = self.trace.find_in(comp, "fault detected");
            let recovered = self.trace.find_in(comp, "recovered");
            if let (Some(f), Some(r)) = (fault, recovered) {
                out.push(r.at.saturating_since(f.at));
            }
        }
        out
    }

    /// The device configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// All micro-units, device-index order.
    pub fn units(&self) -> &[MicroUnit] {
        &self.units
    }

    /// One micro-unit.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn unit(&self, index: usize) -> &MicroUnit {
        &self.units[index]
    }

    /// One micro-unit, mutable.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn unit_mut(&mut self, index: usize) -> &mut MicroUnit {
        &mut self.units[index]
    }

    /// Units and NoC together (the executor needs both mutably).
    pub(crate) fn units_and_noc_mut(&mut self) -> (&mut Vec<MicroUnit>, &mut NocNetwork) {
        (&mut self.units, &mut self.noc)
    }

    /// Number of units currently healthy.
    pub fn healthy_unit_count(&self) -> usize {
        self.units
            .iter()
            .filter(|u| u.health() == UnitHealth::Healthy)
            .count()
    }

    /// The interconnect, read-only.
    pub fn noc(&self) -> &NocNetwork {
        &self.noc
    }

    /// The interconnect, mutable (link faults, isolation policy).
    pub fn noc_mut(&mut self) -> &mut NocNetwork {
        &mut self.noc
    }

    /// The device seed tree (deriving per-component streams).
    pub fn seeds(&self) -> SeedTree {
        self.seeds
    }

    /// Energy accounting across all subsystems.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Energy accounting, mutable (executors charge here).
    pub fn meter_mut(&mut self) -> &mut EnergyMeter {
        &mut self.meter
    }

    /// The trace buffer.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The trace buffer, mutable.
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Allocates a unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Injects a hard fault into a unit (§V.A fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn fail_unit(&mut self, unit: usize) {
        self.units[unit].set_health(UnitHealth::Failed);
    }

    /// Administratively fences a unit (containment, §V.A).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn disable_unit(&mut self, unit: usize) {
        self.units[unit].set_health(UnitHealth::Disabled);
    }

    /// Arms a compromised tile for the adversarial chaos campaigns, at
    /// boot: every unit on `tile` is fenced (the mapper never places an
    /// innocent tenant there) and the tile is assigned to
    /// [`ADVERSARY_DOMAIN`] on the NoC isolation policy, so every packet
    /// it originates or attracts crosses a domain boundary. Returns the
    /// fenced unit indices — the only units inside the adversary's
    /// legitimate blast radius.
    ///
    /// Arming is nonvolatile: `NocNetwork::reset` keeps the policy and
    /// fenced health survives the persist/restore pass, so a power cycle
    /// neither frees the tile nor clears the [`AttackLog`].
    pub fn arm_adversary(&mut self, tile: NodeId) -> Vec<usize> {
        let fenced = self.units_on_tile(tile);
        for &u in &fenced {
            self.disable_unit(u);
        }
        self.noc.policy_mut().assign(tile, ADVERSARY_DOMAIN);
        let secret = splitmix64(self.config.seed ^ 0xAD5E_C0DE);
        self.adversary = Some(AdversaryState::new(tile, secret));
        fenced
    }

    /// The compromised tile, if the device is armed.
    pub fn adversary_tile(&self) -> Option<NodeId> {
        self.adversary.as_ref().map(|a| a.tile)
    }

    /// The attack verdict ledger, if the device is armed.
    pub fn attack_log(&self) -> Option<&AttackLog> {
        self.adversary.as_ref().map(|a| &a.log)
    }

    /// Detaches the adversary state so a probe can mutate it while using
    /// the rest of the device; pair with
    /// [`put_adversary`](Self::put_adversary).
    pub(crate) fn take_adversary(&mut self) -> Option<AdversaryState> {
        self.adversary.take()
    }

    /// Re-attaches state taken by [`take_adversary`](Self::take_adversary).
    pub(crate) fn put_adversary(&mut self, adv: AdversaryState) {
        self.adversary = Some(adv);
    }

    /// Units on a given tile, device-index order.
    pub fn units_on_tile(&self, tile: NodeId) -> Vec<usize> {
        self.units
            .iter()
            .filter(|u| u.tile() == tile)
            .map(|u| u.index())
            .collect()
    }

    /// Resets all unit occupancy, NoC reservations, meter, trace and
    /// telemetry values — health and assignments (including programmed
    /// engines) are kept, as is the telemetry component interning.
    /// Call between independent experiments on the same loaded device.
    pub fn reset_occupancy(&mut self) {
        for u in &mut self.units {
            u.clear_occupancy();
        }
        self.noc.reset();
        self.meter.reset();
        self.trace.clear();
        self.telemetry.reset_values();
    }

    /// Power-loss amnesia: wipes every piece of device state that does
    /// *not* survive a crash — unit control state (occupancy, node
    /// assignments, programmed-engine handles; [`MicroUnit::reset`]),
    /// NoC reservations and gauges, the energy meter and the trace
    /// buffer. Unlike [`reset_occupancy`](Self::reset_occupancy) this
    /// deliberately does **not** touch the telemetry registry values:
    /// the registry is the *host-side* observer of the device and its
    /// counters (service accounting, alert history) must survive a
    /// device crash. Callers restore the nonvolatile slice afterwards
    /// from a [`crate::persist::PersistentImage`].
    pub fn wipe_volatile(&mut self) {
        for u in &mut self.units {
            u.reset();
        }
        self.noc.reset();
        self.meter.reset();
        self.trace.clear();
    }

    /// Whether the device's volatile state equals a fresh boot's: every
    /// unit idle with zero accumulated load, no NoC link reservations,
    /// an empty energy meter, an empty trace buffer. This is the
    /// post-restore half of the recovery contract — after
    /// [`wipe_volatile`](Self::wipe_volatile) + image restore it must
    /// hold, or the restart inherited stale run-time state.
    pub fn volatile_pristine(&self) -> bool {
        self.units.iter().all(MicroUnit::volatile_pristine)
            && self.noc.link_load().is_empty()
            && self.meter.total().as_fj() == 0
            && self.trace.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_lays_out_tiles_row_major() {
        let d = CimDevice::new(FabricConfig::default()).unwrap();
        assert_eq!(d.unit(0).tile(), NodeId::new(0, 0));
        assert_eq!(d.unit(3).tile(), NodeId::new(0, 0));
        assert_eq!(d.unit(4).tile(), NodeId::new(1, 0));
        let last = d.units().len() - 1;
        assert_eq!(d.unit(last).tile(), NodeId::new(3, 3));
    }

    #[test]
    fn invalid_config_rejected() {
        let c = FabricConfig {
            mesh_width: 0,
            ..FabricConfig::default()
        };
        assert!(CimDevice::new(c).is_err());
    }

    #[test]
    fn fault_injection_changes_health_counts() {
        let mut d = CimDevice::new(FabricConfig::default()).unwrap();
        d.fail_unit(0);
        d.disable_unit(1);
        assert_eq!(d.healthy_unit_count(), 62);
        assert_eq!(d.unit(0).health(), UnitHealth::Failed);
        assert_eq!(d.unit(1).health(), UnitHealth::Disabled);
    }

    #[test]
    fn units_on_tile_groups_correctly() {
        let d = CimDevice::new(FabricConfig::default()).unwrap();
        let units = d.units_on_tile(NodeId::new(2, 1));
        assert_eq!(units.len(), 4);
        for &u in &units {
            assert_eq!(d.unit(u).tile(), NodeId::new(2, 1));
        }
    }

    #[test]
    fn packet_ids_are_unique() {
        let mut d = CimDevice::new(FabricConfig::default()).unwrap();
        let a = d.next_packet_id();
        let b = d.next_packet_id();
        assert_ne!(a, b);
    }

    #[test]
    fn encryption_follows_config() {
        let c = FabricConfig {
            encryption: true,
            ..FabricConfig::default()
        };
        let d = CimDevice::new(c).unwrap();
        assert!(d.noc().encryption());
    }
}
