//! CI gate: adversarial isolation soak under the containment contract.
//!
//! ```text
//! adversarial_smoke [--requests N] [--devices N] [--replicas N] [--rate HZ]
//! ```
//!
//! Serves an open-loop stream across an adversary-armed CIM fleet
//! (link encryption on, the far-corner tile of every device fenced
//! into its own NoC isolation domain) while the engineered attack
//! campaign fires one of every attack archetype per device: forged
//! capability token, stale replayed token, cross-partition packet scan,
//! hostile self-programming patch and hostile dataflow scanner. The
//! gate enforces containment at soak scale:
//!
//! - every probe is blocked at the isolation boundary (`blocked ==
//!   attempts`, and the campaign actually fired: `attempts > 0`),
//! - zero cross-tenant reads: no victim byte reaches the adversary, no
//!   cross-partition packet delivers, no forged/replayed token is
//!   accepted,
//! - bounded blast radius: the attack touches no unit outside the
//!   adversary's own fenced tiles,
//! - innocent QoS: no request fails under a schedule whose only faults
//!   are (blocked) attacks, and admission accounting balances,
//! - double-run determinism: a second fresh soak yields a bit-identical
//!   fleet fingerprint,
//! - the detector is not vacuous: a negative-control run with the NoC
//!   boundary check disabled (`leak_cross_partition`) must observe
//!   leaked victim bytes.
//!
//! Any violation exits 1.

use cim_bench::experiments::fleet::{
    default_scenario, engineered_adversarial, run_fleet_armed, FleetScenario,
};
use std::process::ExitCode;

fn usage(err: &str) -> ExitCode {
    eprintln!("adversarial_smoke: {err}");
    eprintln!("usage: adversarial_smoke [--requests N] [--devices N] [--replicas N] [--rate HZ]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scenario = FleetScenario {
        requests: 100_000,
        outage: false,
        ..default_scenario()
    };

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match args[i].as_str() {
            "--requests" => match value.and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => scenario.requests = n,
                _ => return usage("--requests needs a positive count"),
            },
            "--devices" => match value.and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 2 => scenario.devices = n,
                _ => return usage("--devices needs a count >= 2"),
            },
            "--replicas" => match value.and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => scenario.replicas = n,
                _ => return usage("--replicas needs a positive count"),
            },
            "--rate" => match value.and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => scenario.rate_hz = r,
                _ => return usage("--rate needs a positive req/s rate"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if scenario.replicas > scenario.devices {
        return usage("--replicas cannot exceed --devices");
    }

    println!(
        "adversarial_smoke: {} requests at {:.0} req/s across {} armed devices (replicas {}), \
         attack campaign",
        scenario.requests, scenario.rate_hz, scenario.devices, scenario.replicas
    );
    let events = engineered_adversarial(&scenario);
    let (r, log) = run_fleet_armed(&scenario, &events, false);
    println!(
        "fleet fingerprint {:#018x}: {} probe attempts, {} blocked, {} cross deliveries, \
         {} leaked bytes, {} tokens accepted",
        r.fingerprint,
        log.attempts,
        log.blocked,
        log.cross_deliveries,
        log.leaked_bytes,
        log.tokens_accepted
    );

    let mut failed = false;
    let mut gate = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    gate(log.attempts > 0, "attack campaign fired no probes");
    gate(
        log.blocked == log.attempts,
        &format!(
            "isolation boundary let probes through: {} of {} blocked",
            log.blocked, log.attempts
        ),
    );
    gate(
        log.contained(),
        &format!(
            "cross-tenant read: {} leaked bytes, {} cross deliveries, {} tokens accepted",
            log.leaked_bytes, log.cross_deliveries, log.tokens_accepted
        ),
    );
    gate(
        log.touched_units.is_empty(),
        &format!(
            "blast radius beyond the adversary tile: touched {:?}",
            log.touched_units
        ),
    );
    gate(
        r.failed == 0,
        &format!(
            "{} innocent request(s) failed under blocked attacks",
            r.failed
        ),
    );
    gate(
        r.zero_lost(),
        &format!(
            "request accounting broke: admitted {} completed {} timed_out {} failed {}",
            r.admitted, r.completed, r.timed_out, r.failed
        ),
    );

    // Double-run determinism: the armed boot and the attack campaign
    // are part of the deterministic image.
    let (again, _) = run_fleet_armed(&scenario, &events, false);
    gate(
        again.fingerprint == r.fingerprint,
        &format!(
            "armed fleet is nondeterministic: {:#018x} != {:#018x}",
            again.fingerprint, r.fingerprint
        ),
    );

    // Negative control: with the NoC boundary check disabled the same
    // campaign MUST leak — otherwise the zero counts above prove
    // nothing.
    let (_, leaky) = run_fleet_armed(&scenario, &events, true);
    gate(
        leaky.leaked_bytes > 0 && leaky.cross_deliveries > 0,
        &format!(
            "leak control observed no leak ({} bytes, {} deliveries): detector is vacuous",
            leaky.leaked_bytes, leaky.cross_deliveries
        ),
    );

    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "adversarial_smoke: containment soak passed, goodput {:.4}, {} probes all blocked",
        r.goodput(),
        log.attempts
    );
    ExitCode::SUCCESS
}
