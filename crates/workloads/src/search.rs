//! Search / indexing workload (Table 2 row "Search (indexing problem)").
//!
//! Builds an inverted index over a synthetic corpus (tokenize → hash →
//! posting lists across shards), then serves scored queries (BM25-style
//! term scoring over posting lists). Indexing is hash-heavy, querying is
//! scoring-heavy, and shard merges/gathers make it chatty — the
//! compute-and-communication combination the paper rates a poor CIM fit
//! despite its data volume.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::Workload;
use cim_sim::rng::{splitmix64, Zipf};
use cim_sim::SeedTree;
use std::collections::HashMap;

/// The search workload.
#[derive(Debug, Clone)]
pub struct SearchIndexing {
    /// Documents in the corpus.
    pub docs: usize,
    /// Words per document.
    pub words_per_doc: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Queries served after indexing.
    pub queries: usize,
    /// Index shards.
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchIndexing {
    /// The standard TAB2 size: 20 k docs × 40 words, 600 queries.
    fn default() -> Self {
        SearchIndexing {
            docs: 20_000,
            words_per_doc: 40,
            vocab: 20_000,
            queries: 600,
            shards: 16,
            seed: 41,
        }
    }
}

impl SearchIndexing {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        SearchIndexing {
            docs: 500,
            words_per_doc: 20,
            vocab: 500,
            queries: 50,
            shards: 4,
            seed: 41,
        }
    }

    /// Builds the index and serves queries; returns
    /// `(postings_total, scored_total, top_hit_of_last_query)`.
    pub fn run(&self) -> (u64, u64, Option<u32>) {
        let mut rng = SeedTree::new(self.seed).rng("search");
        let zipf = Zipf::new(self.vocab, 1.0);
        // Index build: term -> postings (doc ids), sharded by term hash.
        let mut shards: Vec<HashMap<u32, Vec<u32>>> =
            (0..self.shards).map(|_| HashMap::new()).collect();
        let mut postings_total = 0u64;
        for doc in 0..self.docs as u32 {
            for _ in 0..self.words_per_doc {
                let term = zipf.sample(&mut rng) as u32;
                let shard = (splitmix64(u64::from(term)) % self.shards as u64) as usize;
                shards[shard].entry(term).or_default().push(doc);
                postings_total += 1;
            }
        }
        // Queries: 2 terms, BM25-ish scoring over both posting lists,
        // accumulated into a dense per-document score array.
        let n_docs = self.docs as f64;
        let mut scores = vec![0.0f64; self.docs];
        let mut scored_total = 0u64;
        let mut last_top = None;
        for _ in 0..self.queries {
            scores.iter_mut().for_each(|s| *s = 0.0);
            for _ in 0..2 {
                let term = zipf.sample(&mut rng) as u32;
                let shard = (splitmix64(u64::from(term)) % self.shards as u64) as usize;
                if let Some(postings) = shards[shard].get(&term) {
                    let idf = (n_docs / (postings.len() as f64 + 1.0)).ln();
                    for &doc in postings {
                        // tf is synthetic (1); the scoring arithmetic is real.
                        let tf = 1.0;
                        let score = idf * (tf * 2.2) / (tf + 1.2);
                        scores[doc as usize] += score;
                        scored_total += 1;
                    }
                }
            }
            last_top = scores
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 0.0)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores finite"))
                .map(|(d, _)| d as u32);
        }
        (postings_total, scored_total, last_top)
    }
}

impl Workload for SearchIndexing {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::SearchIndexing
    }

    fn characterize(&self) -> Characteristics {
        let (postings, scored, top) = self.run();
        std::hint::black_box(top);
        // Indexing: hash + shard route + append ≈ 8 ops per posting
        // (term hashing over ~6 chars at 2 ops/char counted once).
        let index_flops = postings * (8 + 12);
        // Query scoring: idf, tf normalization, accumulate ≈ 10 flops per
        // scored posting.
        let query_flops = scored * 10;
        let flops = index_flops + query_flops;
        // Corpus (term ids) + index (postings + hash overhead).
        let footprint = postings * 4 + postings * 8 + self.vocab as u64 * 16;
        let moved = postings * 24 + scored * 16;
        // Shard exchange during build (every posting crosses to its
        // shard) + query scatter/gather.
        let comm = postings * 8 + self.queries as u64 * self.shards as u64 * 16;
        // Queries are independent; within a query, scoring a posting list
        // accumulates serially per document map, bounded by the longest
        // posting list.
        let longest_posting = scored / self.queries.max(1) as u64;
        let span = longest_posting * 10;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn indexing_and_querying_work() {
        let (postings, scored, top) = SearchIndexing::small().run();
        assert_eq!(postings, 500 * 20);
        assert!(scored > 0, "queries must score postings");
        assert!(top.is_some(), "a top hit exists");
    }

    #[test]
    fn zipf_terms_make_postings_skewed() {
        let s = SearchIndexing::small();
        let (_, scored, _) = s.run();
        // Frequent terms have long posting lists, so scoring volume per
        // query far exceeds 2 (one doc per term).
        assert!(scored / s.queries as u64 > 10);
    }

    #[test]
    fn buckets_are_compute_and_comm_heavy() {
        let l = SearchIndexing::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.bandwidth, Level::High);
    }

    #[test]
    fn deterministic() {
        let a = SearchIndexing::small().run();
        let b = SearchIndexing::small().run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
