//! Flow-level network-on-chip model with QoS, isolation and encryption.
//!
//! The model tracks per-link, per-virtual-channel reservations: a packet
//! walking its route reserves each link for its serialization time, so
//! contention, head-of-line blocking within a class, and QoS separation
//! across classes all emerge without a cycle-level router simulation.
//! This is the "provision enough interconnect" machinery of §IV.B and the
//! packet-based security boundary of §IV.A.

use crate::crypto::{self, LinkKey};
use crate::error::{NocError, Result};
use crate::packet::{flit_count_for, NodeId, Packet, TrafficClass};
use crate::topology::{Link, Mesh};
use cim_sim::analytic::{ContentionModel, SimMode};
use cim_sim::calib::noc as cal;
use cim_sim::energy::Energy;
use cim_sim::stats::Summary;
use cim_sim::telemetry::{ComponentId, Telemetry};
use cim_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Histogram name per virtual channel (index = `virtual_channel()`).
const VC_LATENCY_METRIC: [&str; 3] = ["latency_ns_vc0", "latency_ns_vc1", "latency_ns_vc2"];

/// Assigns nodes to isolation domains and controls cross-domain traffic
/// (§IV.B "dynamic hardware isolation").
///
/// Nodes default to domain 0; traffic within a domain is always allowed,
/// cross-domain traffic only if explicitly permitted.
#[derive(Debug, Clone, Default)]
pub struct IsolationPolicy {
    domains: HashMap<NodeId, u32>,
    allowed: Vec<(u32, u32)>,
}

impl IsolationPolicy {
    /// Creates the default policy (everything in domain 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a node to a domain.
    pub fn assign(&mut self, node: NodeId, domain: u32) {
        self.domains.insert(node, domain);
    }

    /// The domain a node belongs to.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        self.domains.get(&node).copied().unwrap_or(0)
    }

    /// Permits traffic from domain `from` to domain `to` (directed).
    pub fn allow(&mut self, from: u32, to: u32) {
        if !self.allowed.contains(&(from, to)) {
            self.allowed.push((from, to));
        }
    }

    /// Revokes a previously granted cross-domain permission.
    pub fn revoke(&mut self, from: u32, to: u32) {
        self.allowed.retain(|&p| p != (from, to));
    }

    /// Whether traffic between two nodes is permitted.
    pub fn allows(&self, src: NodeId, dst: NodeId) -> bool {
        let (a, b) = (self.domain_of(src), self.domain_of(dst));
        a == b || self.allowed.contains(&(a, b))
    }
}

/// A man-in-the-middle hook used by the security experiments: receives
/// the wire payload at the route's midpoint and may mutate it.
pub type TamperFn<'a> = &'a dyn Fn(&mut Vec<u8>);

/// Outcome of one packet transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// When the tail flit arrived at the destination.
    pub arrival: SimTime,
    /// Total energy spent on the transfer (hops + crypto).
    pub energy: Energy,
    /// Hop count of the path taken.
    pub hops: u32,
    /// The payload as seen *on the wire* (ciphertext when encryption is
    /// on) — what a link tap would observe.
    pub wire_payload: Vec<u8>,
    /// The payload delivered to the destination (decrypted, verified).
    pub payload: Vec<u8>,
}

/// Outcome of one analytic-tier transfer estimate: the delivery record
/// without any payload movement (see [`NocNetwork::estimate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Predicted tail-flit arrival at the destination.
    pub arrival: SimTime,
    /// Predicted transfer energy (hops + crypto).
    pub energy: Energy,
    /// Hop count of the route.
    pub hops: u32,
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Packets delivered.
    pub packets: u64,
    /// Flit-hops traversed.
    pub flit_hops: u64,
    /// Total energy.
    pub energy: Energy,
    /// End-to-end latency summary (ns) per traffic class.
    pub latency_ns: [Summary; 3],
    /// Packets rejected by the isolation policy.
    pub isolation_rejects: u64,
    /// Packets that failed authentication.
    pub auth_failures: u64,
    /// Delivered packets whose endpoints sat in *different* isolation
    /// domains — legitimate only through an explicit `allow` edge (or
    /// the [`NocNetwork::set_leak_cross_partition`] fault injection).
    pub cross_domain_deliveries: u64,
}

/// The mesh network with per-link virtual-channel reservations.
///
/// # Examples
///
/// ```
/// use cim_noc::network::NocNetwork;
/// use cim_noc::packet::{NodeId, Packet};
/// use cim_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut noc = NocNetwork::new(4, 4, 42)?;
/// let p = Packet::new(1, NodeId::new(0, 0), NodeId::new(3, 3), vec![7u8; 64]);
/// let d = noc.transmit(&p, SimTime::ZERO)?;
/// assert_eq!(d.hops, 6);
/// assert_eq!(&d.payload[..], &[7u8; 64]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NocNetwork {
    mesh: Mesh,
    busy: HashMap<(Link, usize), SimTime>,
    /// Cumulative serialization time reserved per link (all VCs) — the
    /// §IV.C "load information" the resource manager reads.
    reserved: HashMap<Link, SimDuration>,
    policy: IsolationPolicy,
    encryption: bool,
    /// Fault injection: when set, the domain boundary check is skipped
    /// on every transfer (see
    /// [`set_leak_cross_partition`](Self::set_leak_cross_partition)).
    leak_cross_partition: bool,
    mode: SimMode,
    /// Contention term for the analytic tier: M/D/1 wait scaled by a
    /// coefficient fit from detailed-mode telemetry.
    contention: ContentionModel,
    master_seed: u64,
    stats: NocStats,
    tel: Telemetry,
    tel_root: ComponentId,
    /// Per-link component ids, interned on a link's first use so the
    /// steady-state transmit path never formats a path string.
    tel_links: HashMap<Link, ComponentId>,
    tel_prefix: String,
}

impl NocNetwork {
    /// Creates a `width × height` mesh network.
    ///
    /// Encryption is off by default; enable with
    /// [`set_encryption`](Self::set_encryption).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::UnknownNode`] if dimensions are degenerate.
    pub fn new(width: usize, height: usize, master_seed: u64) -> Result<Self> {
        let mesh = Mesh::new(width, height).ok_or(NocError::UnknownNode {
            node: NodeId::new(0, 0),
            width,
            height,
        })?;
        Ok(NocNetwork {
            mesh,
            busy: HashMap::new(),
            reserved: HashMap::new(),
            policy: IsolationPolicy::new(),
            encryption: false,
            leak_cross_partition: false,
            mode: SimMode::Detailed,
            contention: ContentionModel::default(),
            master_seed,
            stats: NocStats::default(),
            tel: Telemetry::disabled(),
            tel_root: ComponentId::NONE,
            tel_links: HashMap::new(),
            tel_prefix: String::new(),
        })
    }

    /// Attaches a telemetry sink under `prefix` (e.g. `"noc"`). Per-link
    /// utilization counters and queue gauges appear as
    /// `{prefix}/link(x0,y0)->(x1,y1)` components; packet/energy totals
    /// and per-class latency histograms live on `{prefix}` itself. Clones
    /// of this network share the sink.
    pub fn attach_telemetry(&mut self, t: &Telemetry, prefix: &str) {
        self.tel = t.clone();
        self.tel_root = t.component(prefix);
        self.tel_prefix = prefix.to_owned();
        self.tel_links.clear();
    }

    fn link_component(&mut self, link: Link) -> ComponentId {
        if let Some(&id) = self.tel_links.get(&link) {
            return id;
        }
        let id = self.tel.component(&format!(
            "{}/link({},{})->({},{})",
            self.tel_prefix, link.from.x, link.from.y, link.to.x, link.to.y
        ));
        self.tel_links.insert(link, id);
        id
    }

    /// The underlying mesh (for fault injection on links).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// The underlying mesh, read-only.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The isolation policy, mutable.
    pub fn policy_mut(&mut self) -> &mut IsolationPolicy {
        &mut self.policy
    }

    /// Enables or disables link encryption + authentication.
    pub fn set_encryption(&mut self, on: bool) {
        self.encryption = on;
    }

    /// Whether encryption is enabled.
    pub fn encryption(&self) -> bool {
        self.encryption
    }

    /// Fault injection for the chaos weakened self-check
    /// (`leak_cross_partition`): skips the isolation-policy boundary
    /// check on every subsequent transfer, so cross-domain packets —
    /// which a healthy boundary rejects before reserving a single link —
    /// are routed and delivered. Deliveries still count in
    /// [`NocStats::cross_domain_deliveries`], which is how the
    /// containment invariants observe the leak.
    pub fn set_leak_cross_partition(&mut self, on: bool) {
        self.leak_cross_partition = on;
    }

    /// Whether the boundary check is being skipped.
    pub fn leak_cross_partition(&self) -> bool {
        self.leak_cross_partition
    }

    /// Selects the simulation tier for subsequent transfers.
    ///
    /// In [`SimMode::Analytic`] every transmit routes and charges costs
    /// in closed form (zero-load floor plus a fitted M/D/1 contention
    /// term per link) without per-VC slot bookkeeping or payload cipher
    /// work; see [`estimate`](Self::estimate).
    pub fn set_mode(&mut self, mode: SimMode) {
        self.mode = mode;
    }

    /// The active simulation tier.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Replaces the analytic contention model (e.g. with one fit from
    /// detailed-mode telemetry via
    /// [`ContentionModel::fit`](cim_sim::analytic::ContentionModel::fit)).
    pub fn set_contention(&mut self, model: ContentionModel) {
        self.contention = model;
    }

    /// The analytic contention model in use.
    pub fn contention(&self) -> ContentionModel {
        self.contention
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Clears per-link reservations and statistics (fresh experiment).
    ///
    /// Runtime telemetry gauges (`backlog_ps` on every link this network
    /// ever touched) are zeroed too: a gauge is instantaneous state, and
    /// letting the last experiment's queue depth bleed into the next
    /// run's snapshot misreports a freshly reset network as loaded.
    pub fn reset(&mut self) {
        self.busy.clear();
        self.reserved.clear();
        self.stats = NocStats::default();
        if self.tel.is_enabled() {
            for &lid in self.tel_links.values() {
                self.tel.gauge_set(lid, "backlog_ps", 0.0);
            }
        }
    }

    /// Cumulative reserved (serialization) time per link, hottest first —
    /// the load telemetry §IV.C's "load information management" needs
    /// before balancing or re-provisioning.
    pub fn link_load(&self) -> Vec<(Link, SimDuration)> {
        let mut loads: Vec<(Link, SimDuration)> =
            self.reserved.iter().map(|(l, d)| (*l, *d)).collect();
        loads.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        loads
    }

    /// The most heavily reserved link, if any traffic has flowed.
    pub fn hottest_link(&self) -> Option<(Link, SimDuration)> {
        self.link_load().into_iter().next()
    }

    fn cycle() -> SimDuration {
        SimDuration::from_ps((1e12 / cal::CLOCK_HZ) as u64)
    }

    fn domain_key(&self, domain: u32) -> LinkKey {
        LinkKey::derive(self.master_seed, domain)
    }

    /// Sends one packet, reserving links along the way. Returns the
    /// delivery record; the network's clock state is the set of link
    /// reservations, so calls must be made in non-decreasing `depart`
    /// order per stream for meaningful contention results.
    ///
    /// # Errors
    ///
    /// * [`NocError::IsolationViolation`] if the policy forbids the pair;
    /// * [`NocError::NoRoute`] if link failures disconnect the pair;
    /// * [`NocError::AuthenticationFailed`] if the payload was tampered
    ///   with in flight (only detectable when encryption is on).
    pub fn transmit(&mut self, packet: &Packet, depart: SimTime) -> Result<Delivery> {
        self.transmit_with(packet, depart, None)
    }

    /// Like [`transmit`](Self::transmit), but optionally passes the
    /// payload through a man-in-the-middle closure at the half-way hop —
    /// the hook the security experiments use to model tampering.
    ///
    /// # Errors
    ///
    /// See [`transmit`](Self::transmit).
    pub fn transmit_with(
        &mut self,
        packet: &Packet,
        depart: SimTime,
        tamper: Option<TamperFn<'_>>,
    ) -> Result<Delivery> {
        if self.mode == SimMode::Analytic {
            // Closed-form tier: route + charge, no cipher work and no
            // per-VC slot bookkeeping. The tamper hook needs a wire to
            // tamper with, so it is a detailed-tier-only feature.
            let est = self.estimate(
                packet.src,
                packet.dst,
                packet.payload.len(),
                packet.class,
                depart,
            )?;
            let payload = packet.payload.clone();
            return Ok(Delivery {
                arrival: est.arrival,
                energy: est.energy,
                hops: est.hops,
                wire_payload: payload.clone(),
                payload,
            });
        }
        if !self.leak_cross_partition && !self.policy.allows(packet.src, packet.dst) {
            self.stats.isolation_rejects += 1;
            self.tel.counter_add(self.tel_root, "isolation_rejects", 1);
            return Err(NocError::IsolationViolation {
                src: packet.src,
                dst: packet.dst,
            });
        }
        let path = self.mesh.route(packet.src, packet.dst)?;
        let vc = packet.class.virtual_channel();
        let mut energy = Energy::ZERO;
        let mut cursor = depart;

        // Source boundary: encrypt + tag.
        let src_domain = self.policy.domain_of(packet.src);
        let nonce = packet.id;
        let (mut wire, tag) = if self.encryption {
            let key = self.domain_key(src_domain);
            let (cipher, cost) = crypto::encrypt(&packet.payload, key, nonce);
            cursor += cost.latency;
            energy += cost.energy;
            let tag = crypto::auth_tag(
                &cipher,
                key,
                packet.id ^ u64::from(packet.dst.x) << 16 ^ u64::from(packet.dst.y),
            );
            (cipher, Some(tag))
        } else {
            (packet.payload.clone(), None)
        };

        // Walk the path, reserving each link's virtual channel.
        let flits = packet.flit_count();
        let serialization = Self::cycle() * (flits * cal::LINK_CYCLES);
        let router_delay = Self::cycle() * cal::ROUTER_CYCLES;
        let crypto_link_delay = if self.encryption {
            Self::cycle() * cal::CRYPTO_CYCLES
        } else {
            SimDuration::ZERO
        };
        let hops = path.len().saturating_sub(1) as u32;
        for (i, w) in path.windows(2).enumerate() {
            let link = Link::new(w[0], w[1]);
            let slot = self.busy.entry((link, vc)).or_insert(SimTime::ZERO);
            let queue_wait = slot.saturating_since(cursor);
            let start = cursor.max(*slot) + router_delay + crypto_link_delay;
            let done = start + serialization;
            let backlog = done.saturating_since(cursor);
            *slot = done;
            *self.reserved.entry(link).or_insert(SimDuration::ZERO) += serialization;
            cursor = done;
            energy += Energy::from_fj(cal::FLIT_HOP_FJ * flits);
            self.stats.flit_hops += flits;
            if self.tel.is_enabled() {
                let lid = self.link_component(link);
                self.tel
                    .counter_add(lid, "reserved_ps", serialization.as_ps());
                self.tel.counter_add(lid, "flits", flits);
                // Instantaneous per-link state: how far this VC's queue
                // extends past the packet's own arrival at the link.
                self.tel
                    .gauge_set(lid, "backlog_ps", backlog.as_ps() as f64);
                self.tel
                    .record(self.tel_root, "queue_wait_ps", queue_wait.as_ps());
            }
            if i == (hops as usize) / 2 {
                if let Some(t) = tamper {
                    t(&mut wire);
                }
            }
        }

        // Destination boundary: verify + decrypt. `wire` is moved into the
        // delivery record, so the plaintext path delivers the single copy
        // made at the source boundary instead of cloning it twice.
        let (wire_payload, payload) = if self.encryption {
            let key = self.domain_key(src_domain);
            let expect = crypto::auth_tag(
                &wire,
                key,
                packet.id ^ u64::from(packet.dst.x) << 16 ^ u64::from(packet.dst.y),
            );
            if Some(expect) != tag {
                self.stats.auth_failures += 1;
                self.tel.counter_add(self.tel_root, "auth_failures", 1);
                self.tel.counter_add(self.tel_root, "drops", 1);
                return Err(NocError::AuthenticationFailed {
                    packet_id: packet.id,
                });
            }
            let (plain, cost) = crypto::decrypt(&wire, key, nonce);
            cursor += cost.latency;
            energy += cost.energy;
            (wire, plain)
        } else {
            let payload = wire.clone();
            (wire, payload)
        };

        self.stats.packets += 1;
        self.stats.energy += energy;
        if self.policy.domain_of(packet.src) != self.policy.domain_of(packet.dst) {
            self.stats.cross_domain_deliveries += 1;
            self.tel
                .counter_add(self.tel_root, "cross_domain_deliveries", 1);
        }
        self.stats.latency_ns[vc].record((cursor - depart).as_ns_f64());
        if self.tel.is_enabled() {
            self.tel.counter_add(self.tel_root, "packets", 1);
            self.tel
                .counter_add(self.tel_root, "flit_hops", flits * u64::from(hops));
            self.tel
                .counter_add(self.tel_root, "energy_fj", energy.as_fj());
            self.tel
                .counter_add(self.tel_root, "busy_ps", (cursor - depart).as_ps());
            self.tel.record(
                self.tel_root,
                VC_LATENCY_METRIC[vc],
                (cursor - depart).as_ps() / 1000,
            );
        }
        Ok(Delivery {
            arrival: cursor,
            energy,
            hops,
            wire_payload,
            payload,
        })
    }

    /// The zero-load latency of a packet over `hops` hops — the floor the
    /// QoS experiments compare against.
    ///
    /// With encryption on this includes everything an uncontended
    /// [`transmit`](Self::transmit) charges: the per-hop link crypto
    /// *and* the source-side encrypt plus destination-side decrypt at the
    /// boundaries (each a fixed [`cal::CRYPTO_CYCLES`], pipelined per
    /// byte), so floor == measured latency on an idle network.
    pub fn zero_load_latency(&self, packet: &Packet, hops: u32) -> SimDuration {
        self.zero_load_latency_flits(packet.flit_count(), hops)
    }

    fn zero_load_latency_flits(&self, flits: u64, hops: u32) -> SimDuration {
        let serialization = Self::cycle() * (flits * cal::LINK_CYCLES);
        let per_hop = Self::cycle() * cal::ROUTER_CYCLES + serialization;
        let crypto = if self.encryption {
            // hops link passes + 2 boundary operations (encrypt, decrypt).
            Self::cycle() * (cal::CRYPTO_CYCLES * (u64::from(hops) + 2))
        } else {
            SimDuration::ZERO
        };
        per_hop * u64::from(hops) + crypto
    }

    /// Analytic-tier transfer: predicts delivery time and energy for a
    /// `bytes`-long payload from `src` to `dst` in closed form, without
    /// moving any payload.
    ///
    /// Latency is the [`zero_load_latency`](Self::zero_load_latency)
    /// floor plus, per link on the route, an M/D/1-style contention wait
    /// at that link's observed utilisation (cumulative reserved
    /// serialization time over elapsed simulated time, the same signal
    /// [`link_load`](Self::link_load) reports). The link reservations
    /// are updated so later estimates see this transfer's load, and
    /// stats/telemetry mirror the detailed tier's totals; only the
    /// per-VC busy slots stay untouched.
    ///
    /// Energy charges the full detailed-tier composition: per-hop flit
    /// energy plus (with encryption on) one encrypt and one decrypt pass
    /// over the payload — without running the cipher.
    ///
    /// # Errors
    ///
    /// * [`NocError::IsolationViolation`] if the policy forbids the pair;
    /// * [`NocError::NoRoute`] if link failures disconnect the pair.
    pub fn estimate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        class: TrafficClass,
        depart: SimTime,
    ) -> Result<Estimate> {
        if !self.leak_cross_partition && !self.policy.allows(src, dst) {
            self.stats.isolation_rejects += 1;
            self.tel.counter_add(self.tel_root, "isolation_rejects", 1);
            return Err(NocError::IsolationViolation { src, dst });
        }
        let path = self.mesh.route(src, dst)?;
        let vc = class.virtual_channel();
        let flits = flit_count_for(bytes);
        let serialization = Self::cycle() * (flits * cal::LINK_CYCLES);
        let hops = path.len().saturating_sub(1) as u32;
        let elapsed_ps = depart.as_ps();

        let mut latency = self.zero_load_latency_flits(flits, hops);
        let mut energy = Energy::ZERO;
        if self.encryption {
            // Source encrypt + destination decrypt, charged analytically.
            energy += crypto::crypto_cost(bytes).energy * 2;
        }
        for w in path.windows(2) {
            let link = Link::new(w[0], w[1]);
            let reserved = self
                .reserved
                .get(&link)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            // Utilisation: fraction of elapsed simulated time this link
            // was reserved for serialization. Traffic before t=0 (or an
            // all-at-once burst at the origin) reads as fully loaded.
            let rho = if elapsed_ps > 0 {
                reserved.as_ps() as f64 / elapsed_ps as f64
            } else if reserved.is_zero() {
                0.0
            } else {
                1.0
            };
            let wait = self.contention.wait(rho, serialization);
            latency += wait;
            *self.reserved.entry(link).or_insert(SimDuration::ZERO) += serialization;
            energy += Energy::from_fj(cal::FLIT_HOP_FJ * flits);
            self.stats.flit_hops += flits;
            if self.tel.is_enabled() {
                let lid = self.link_component(link);
                self.tel
                    .counter_add(lid, "reserved_ps", serialization.as_ps());
                self.tel.counter_add(lid, "flits", flits);
                self.tel.gauge_set(lid, "backlog_ps", wait.as_ps() as f64);
                self.tel
                    .record(self.tel_root, "queue_wait_ps", wait.as_ps());
            }
        }

        self.stats.packets += 1;
        self.stats.energy += energy;
        if self.policy.domain_of(src) != self.policy.domain_of(dst) {
            self.stats.cross_domain_deliveries += 1;
            self.tel
                .counter_add(self.tel_root, "cross_domain_deliveries", 1);
        }
        self.stats.latency_ns[vc].record(latency.as_ns_f64());
        if self.tel.is_enabled() {
            self.tel.counter_add(self.tel_root, "packets", 1);
            self.tel
                .counter_add(self.tel_root, "flit_hops", flits * u64::from(hops));
            self.tel
                .counter_add(self.tel_root, "energy_fj", energy.as_fj());
            self.tel
                .counter_add(self.tel_root, "busy_ps", latency.as_ps());
            self.tel
                .record(self.tel_root, VC_LATENCY_METRIC[vc], latency.as_ps() / 1000);
        }
        Ok(Estimate {
            arrival: depart + latency,
            energy,
            hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;

    fn n(x: u16, y: u16) -> NodeId {
        NodeId::new(x, y)
    }

    fn net() -> NocNetwork {
        NocNetwork::new(8, 8, 1234).unwrap()
    }

    fn us(x: u64) -> SimTime {
        SimTime::from_ns(x * 1_000)
    }

    #[test]
    fn delivers_payload_intact_plaintext() {
        let mut noc = net();
        let p = Packet::new(1, n(0, 0), n(4, 4), vec![1, 2, 3, 4]);
        let d = noc.transmit(&p, SimTime::ZERO).unwrap();
        assert_eq!(&d.payload[..], &[1, 2, 3, 4]);
        assert_eq!(
            &d.wire_payload[..],
            &[1, 2, 3, 4],
            "no encryption: wire is plain"
        );
        assert_eq!(d.hops, 8);
        assert!(d.arrival > SimTime::ZERO);
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let mut noc = net();
        let near = Packet::new(1, n(0, 0), n(1, 0), vec![0u8; 16]);
        let far = Packet::new(2, n(0, 0), n(7, 7), vec![0u8; 16]);
        let big = Packet::new(3, n(0, 0), n(1, 0), vec![0u8; 1024]);
        let t_near = noc.transmit(&near, SimTime::ZERO).unwrap().arrival;
        noc.reset();
        let t_far = noc.transmit(&far, SimTime::ZERO).unwrap().arrival;
        noc.reset();
        let t_big = noc.transmit(&big, SimTime::ZERO).unwrap().arrival;
        assert!(t_far > t_near);
        assert!(t_big > t_near);
    }

    #[test]
    fn contention_delays_same_class_packets() {
        let mut noc = net();
        let a = Packet::new(1, n(0, 0), n(3, 0), vec![0u8; 256]);
        let b = Packet::new(2, n(0, 0), n(3, 0), vec![0u8; 256]);
        let d1 = noc.transmit(&a, SimTime::ZERO).unwrap();
        let d2 = noc.transmit(&b, SimTime::ZERO).unwrap();
        assert!(
            d2.arrival > d1.arrival,
            "second packet on the same links must queue"
        );
    }

    #[test]
    fn virtual_channels_isolate_classes() {
        let mut congested = net();
        // Saturate the best-effort VC along row 0.
        for i in 0..20 {
            let p = Packet::new(i, n(0, 0), n(7, 0), vec![0u8; 1024]);
            congested.transmit(&p, SimTime::ZERO).unwrap();
        }
        let ctrl =
            Packet::new(100, n(0, 0), n(7, 0), vec![0u8; 16]).with_class(TrafficClass::Control);
        let d = congested.transmit(&ctrl, SimTime::ZERO).unwrap();
        let floor = congested.zero_load_latency(&ctrl, 7);
        assert_eq!(
            (d.arrival - SimTime::ZERO).as_ps(),
            floor.as_ps(),
            "control traffic rides its own VC at zero-load latency"
        );
    }

    #[test]
    fn isolation_policy_blocks_cross_domain() {
        let mut noc = net();
        noc.policy_mut().assign(n(0, 0), 1);
        noc.policy_mut().assign(n(1, 0), 2);
        let p = Packet::new(1, n(0, 0), n(1, 0), vec![1]);
        assert!(matches!(
            noc.transmit(&p, SimTime::ZERO),
            Err(NocError::IsolationViolation { .. })
        ));
        assert_eq!(noc.stats().isolation_rejects, 1);
        noc.policy_mut().allow(1, 2);
        assert!(noc.transmit(&p, SimTime::ZERO).is_ok());
        noc.policy_mut().revoke(1, 2);
        assert!(noc.transmit(&p, SimTime::ZERO).is_err());
    }

    #[test]
    fn encryption_hides_wire_payload_and_roundtrips() {
        let mut noc = net();
        noc.set_encryption(true);
        let secret = b"model weights".to_vec();
        let p = Packet::new(1, n(0, 0), n(3, 3), secret.clone());
        let d = noc.transmit(&p, SimTime::ZERO).unwrap();
        assert_eq!(&d.payload[..], &secret[..]);
        assert_ne!(&d.wire_payload[..], &secret[..], "tap sees ciphertext");
    }

    #[test]
    fn tampering_is_detected_with_encryption() {
        let mut noc = net();
        noc.set_encryption(true);
        let p = Packet::new(1, n(0, 0), n(3, 3), vec![9u8; 32]);
        let flip = |buf: &mut Vec<u8>| buf[0] ^= 0xFF;
        let res = noc.transmit_with(&p, SimTime::ZERO, Some(&flip));
        assert_eq!(res, Err(NocError::AuthenticationFailed { packet_id: 1 }));
        assert_eq!(noc.stats().auth_failures, 1);
    }

    #[test]
    fn tampering_goes_undetected_without_encryption() {
        let mut noc = net();
        let p = Packet::new(1, n(0, 0), n(3, 3), vec![9u8; 32]);
        let flip = |buf: &mut Vec<u8>| buf[0] ^= 0xFF;
        let d = noc.transmit_with(&p, SimTime::ZERO, Some(&flip)).unwrap();
        assert_ne!(&d.payload[..], &[9u8; 32][..], "corruption reaches the app");
    }

    #[test]
    fn encryption_costs_latency_and_energy() {
        let p = Packet::new(1, n(0, 0), n(5, 5), vec![0u8; 512]);
        let mut plain = net();
        let d_plain = plain.transmit(&p, SimTime::ZERO).unwrap();
        let mut enc = net();
        enc.set_encryption(true);
        let d_enc = enc.transmit(&p, SimTime::ZERO).unwrap();
        assert!(d_enc.arrival > d_plain.arrival);
        assert!(d_enc.energy > d_plain.energy);
    }

    #[test]
    fn link_failure_reroutes() {
        let mut noc = net();
        noc.mesh_mut().fail_link(n(0, 0), n(1, 0));
        let p = Packet::new(1, n(0, 0), n(2, 0), vec![0u8; 8]);
        let d = noc.transmit(&p, SimTime::ZERO).unwrap();
        assert!(d.hops > 2, "detour is longer than the direct 2-hop path");
    }

    #[test]
    fn link_load_telemetry_finds_the_hot_path() {
        let mut noc = net();
        // Ten packets down row 0, one packet down row 7.
        for i in 0..10 {
            let p = Packet::new(i, n(0, 0), n(7, 0), vec![0u8; 256]);
            noc.transmit(&p, SimTime::ZERO).unwrap();
        }
        let lone = Packet::new(99, n(0, 7), n(7, 7), vec![0u8; 256]);
        noc.transmit(&lone, SimTime::ZERO).unwrap();

        let loads = noc.link_load();
        assert!(!loads.is_empty());
        let (hot, hot_load) = noc.hottest_link().unwrap();
        assert_eq!(hot.from.y, 0, "the hot path is row 0: {hot:?}");
        // Every row-0 link carries 10x the lone row-7 link's traffic.
        let cold = loads
            .iter()
            .find(|(l, _)| l.from.y == 7)
            .expect("row 7 link present");
        assert!(hot_load.as_ps() >= 10 * cold.1.as_ps() / 2);
        // Reset clears telemetry.
        noc.reset();
        assert!(noc.hottest_link().is_none());
    }

    #[test]
    fn telemetry_tracks_links_and_totals() {
        use cim_sim::telemetry::{MetricValue, Telemetry, TelemetryLevel};
        let t = Telemetry::new(TelemetryLevel::Metrics);
        let mut noc = net();
        noc.attach_telemetry(&t, "noc");
        for i in 0..4 {
            let p = Packet::new(i, n(0, 0), n(3, 0), vec![0u8; 256]);
            noc.transmit(&p, SimTime::ZERO).unwrap();
        }
        noc.policy_mut().assign(n(7, 7), 2);
        let blocked = Packet::new(9, n(0, 0), n(7, 7), vec![1]);
        assert!(noc.transmit(&blocked, SimTime::ZERO).is_err());

        let root = t.component("noc");
        t.with_registry(|r| {
            assert_eq!(r.counter(root, "packets"), 4);
            assert_eq!(r.counter(root, "isolation_rejects"), 1);
            assert_eq!(
                r.counter(root, "energy_fj"),
                noc.stats().energy.as_fj(),
                "telemetry energy mirrors NocStats"
            );
            // Queued packets show up in the wait histogram.
            let waits = r.histogram(root, "queue_wait_ps").expect("recorded");
            assert_eq!(waits.count(), 4 * 3, "3 hops per packet");
            assert!(waits.sum() > 0, "later packets queued behind the first");
        });
        // Per-link components carry utilization; link (0,0)->(1,0) saw
        // all four packets.
        let snap = t.snapshot();
        let hot = snap
            .iter()
            .find(|s| s.component == "noc/link(0,0)->(1,0)" && s.metric == "reserved_ps")
            .expect("hot link present");
        let load = noc
            .link_load()
            .into_iter()
            .find(|(l, _)| l.from == n(0, 0) && l.to == n(1, 0))
            .unwrap();
        assert_eq!(hot.as_counter(), Some(load.1.as_ps()));
        assert!(snap.iter().any(|s| s.component == "noc/link(0,0)->(1,0)"
            && s.metric == "backlog_ps"
            && matches!(s.value, MetricValue::Gauge(g) if g > 0.0)));
    }

    #[test]
    fn zero_load_latency_matches_uncontended_encrypted_transmit() {
        // Regression: the floor used to omit the source-side encrypt and
        // dest-side decrypt that transmit charges, underestimating true
        // uncontended latency whenever encryption was on.
        let mut noc = net();
        noc.set_encryption(true);
        for (dst, payload) in [(n(3, 3), 64usize), (n(7, 0), 16), (n(1, 0), 1024)] {
            let p = Packet::new(1, n(0, 0), dst, vec![0u8; payload]);
            let d = noc.transmit(&p, SimTime::ZERO).unwrap();
            let floor = noc.zero_load_latency(&p, d.hops);
            assert_eq!(
                (d.arrival - SimTime::ZERO).as_ps(),
                floor.as_ps(),
                "floor must equal measured uncontended latency (dst {dst:?})"
            );
            noc.reset();
        }
    }

    #[test]
    fn reset_zeroes_runtime_gauges() {
        use cim_sim::telemetry::{MetricValue, Telemetry, TelemetryLevel};
        let t = Telemetry::new(TelemetryLevel::Metrics);
        let mut noc = net();
        noc.attach_telemetry(&t, "noc");
        let p = Packet::new(1, n(0, 0), n(3, 0), vec![0u8; 512]);
        noc.transmit(&p, SimTime::ZERO).unwrap();
        let loaded = t.snapshot();
        assert!(
            loaded
                .iter()
                .any(|s| s.metric == "backlog_ps"
                    && matches!(s.value, MetricValue::Gauge(g) if g > 0.0)),
            "traffic must raise a backlog gauge"
        );
        // Regression: reset used to leave the last packet's backlog in
        // the gauges, so a fresh experiment's snapshot showed load.
        noc.reset();
        for s in t.snapshot() {
            if s.metric == "backlog_ps" {
                assert!(
                    matches!(s.value, MetricValue::Gauge(g) if g == 0.0),
                    "gauge {}/{} must be zero after reset",
                    s.component,
                    s.metric
                );
            }
        }
    }

    #[test]
    fn analytic_uncontended_matches_zero_load_floor() {
        // On an idle network the analytic estimate must equal the
        // detailed tier exactly — the contention term is zero and both
        // tiers share the zero-load formula.
        for encrypted in [false, true] {
            let mut det = net();
            det.set_encryption(encrypted);
            let mut ana = net();
            ana.set_encryption(encrypted);
            ana.set_mode(SimMode::Analytic);
            assert_eq!(ana.mode(), SimMode::Analytic);
            let p = Packet::new(1, n(0, 0), n(4, 2), vec![7u8; 200]);
            let d = det.transmit(&p, SimTime::ZERO).unwrap();
            let a = ana.transmit(&p, SimTime::ZERO).unwrap();
            assert_eq!(a.arrival, d.arrival, "encrypted={encrypted}");
            assert_eq!(a.energy, d.energy, "encrypted={encrypted}");
            assert_eq!(a.hops, d.hops);
            assert_eq!(&a.payload[..], &p.payload[..]);
        }
    }

    #[test]
    fn analytic_contention_grows_with_observed_load() {
        let mut noc = net();
        noc.set_mode(SimMode::Analytic);
        let p = Packet::new(1, n(0, 0), n(3, 0), vec![0u8; 512]);
        // Load the route over a window, then probe at a later departure
        // so utilisation is meaningful (reserved / elapsed).
        let idle = noc.transmit(&p, us(100)).unwrap();
        let idle_latency = idle.arrival - us(100);
        for i in 0..200 {
            noc.transmit(&p, us(101 + i)).unwrap();
        }
        let loaded = noc.transmit(&p, us(400)).unwrap();
        let loaded_latency = loaded.arrival - us(400);
        assert!(
            loaded_latency > idle_latency,
            "contention term must grow with link load: idle {idle_latency:?}, \
             loaded {loaded_latency:?}"
        );
        // Reservations feed link_load exactly as in detailed mode.
        assert!(noc.hottest_link().is_some());
        noc.reset();
        assert!(noc.hottest_link().is_none());
    }

    #[test]
    fn analytic_respects_isolation_and_routing() {
        let mut noc = net();
        noc.set_mode(SimMode::Analytic);
        noc.policy_mut().assign(n(0, 0), 1);
        noc.policy_mut().assign(n(1, 0), 2);
        let p = Packet::new(1, n(0, 0), n(1, 0), vec![1]);
        assert!(matches!(
            noc.transmit(&p, SimTime::ZERO),
            Err(NocError::IsolationViolation { .. })
        ));
        assert_eq!(noc.stats().isolation_rejects, 1);
        noc.policy_mut().allow(1, 2);
        // Failed links still reroute (the analytic tier runs the real
        // router, only the queueing is closed-form).
        noc.mesh_mut().fail_link(n(0, 0), n(1, 0));
        let d = noc.transmit(&p, SimTime::ZERO).unwrap();
        assert!(d.hops > 1, "detour is longer than the direct hop");
    }

    #[test]
    fn analytic_stats_and_telemetry_mirror_detailed_shape() {
        use cim_sim::telemetry::{Telemetry, TelemetryLevel};
        let t = Telemetry::new(TelemetryLevel::Metrics);
        let mut noc = net();
        noc.set_mode(SimMode::Analytic);
        noc.attach_telemetry(&t, "noc");
        for i in 0..4 {
            let p = Packet::new(i, n(0, 0), n(3, 0), vec![0u8; 256]);
            noc.transmit(&p, SimTime::ZERO).unwrap();
        }
        let s = noc.stats();
        assert_eq!(s.packets, 4);
        assert_eq!(s.latency_ns[0].count(), 4);
        assert!(s.energy.as_fj() > 0);
        let root = t.component("noc");
        t.with_registry(|r| {
            assert_eq!(r.counter(root, "packets"), 4);
            assert_eq!(r.counter(root, "energy_fj"), noc.stats().energy.as_fj());
        });
        // Per-link reservation counters exist like in detailed mode.
        assert!(t
            .snapshot()
            .iter()
            .any(|s| s.component == "noc/link(0,0)->(1,0)" && s.metric == "reserved_ps"));
    }

    #[test]
    fn fitted_contention_scales_the_wait() {
        let mut calm = net();
        calm.set_mode(SimMode::Analytic);
        calm.set_contention(ContentionModel::with_alpha(0.0));
        let mut hot = net();
        hot.set_mode(SimMode::Analytic);
        hot.set_contention(ContentionModel::with_alpha(4.0));
        assert!((hot.contention().alpha() - 4.0).abs() < 1e-12);
        let p = Packet::new(1, n(0, 0), n(3, 0), vec![0u8; 512]);
        // Pre-load both networks identically, then probe.
        for i in 0..100 {
            calm.transmit(&p, us(10 + i)).unwrap();
            hot.transmit(&p, us(10 + i)).unwrap();
        }
        let probe_at = us(200);
        let c = calm.transmit(&p, probe_at).unwrap();
        let h = hot.transmit(&p, probe_at).unwrap();
        assert!(
            h.arrival > c.arrival,
            "larger alpha must predict more queueing"
        );
        // Alpha 0 disables contention entirely: floor latency.
        let floor = calm.zero_load_latency(&p, c.hops);
        assert_eq!((c.arrival - probe_at).as_ps(), floor.as_ps());
    }

    #[test]
    fn stats_accumulate_per_class() {
        let mut noc = net();
        noc.transmit(
            &Packet::new(1, n(0, 0), n(1, 1), vec![0u8; 64]),
            SimTime::ZERO,
        )
        .unwrap();
        noc.transmit(
            &Packet::new(2, n(0, 0), n(1, 1), vec![0u8; 64]).with_class(TrafficClass::Control),
            SimTime::ZERO,
        )
        .unwrap();
        let s = noc.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.latency_ns[0].count(), 1);
        assert_eq!(s.latency_ns[2].count(), 1);
        assert!(s.energy.as_fj() > 0);
        assert!(s.flit_hops > 0);
    }
}
