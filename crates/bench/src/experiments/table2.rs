//! TAB2 — application suitability for CIM (paper Table 2 / Appendix A).
//!
//! Runs the whole instrumented workload suite, buckets the measured
//! counters onto the paper's low/medium/high vocabulary, derives a CIM
//! suitability with the executable classifier, and compares against the
//! paper's column.

use crate::table::TextTable;
use cim_workloads::spec::{paper_rating, Level, WorkloadClass};
use cim_workloads::{cim_suitability, standard_suite, MeasuredLevels};

/// One evaluated row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The application class.
    pub class: WorkloadClass,
    /// Measured characteristic levels.
    pub measured: MeasuredLevels,
    /// Suitability predicted from measurements.
    pub predicted: Level,
    /// The paper's rating.
    pub paper: Level,
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// All 14 rows in paper order.
    pub rows: Vec<Table2Row>,
}

impl Table2Report {
    /// Rows where prediction and paper agree.
    pub fn agreement(&self) -> usize {
        self.rows.iter().filter(|r| r.predicted == r.paper).count()
    }

    /// Mean distance (0–2 level steps) between prediction and paper.
    pub fn mean_distance(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| f64::from(r.predicted.distance(r.paper)))
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Runs the full suite (tens of seconds in release mode).
pub fn run() -> Table2Report {
    let rows = standard_suite()
        .iter()
        .map(|w| {
            let measured = w.characterize().bucketize();
            Table2Row {
                class: w.class(),
                measured,
                predicted: cim_suitability(measured),
                paper: paper_rating(w.class()).cim,
            }
        })
        .collect();
    Table2Report { rows }
}

/// Renders the table.
pub fn render(r: &Table2Report) -> String {
    let mut t = TextTable::new([
        "class",
        "compute",
        "bandwidth",
        "size",
        "op-int",
        "comm",
        "parallel",
        "CIM (measured)",
        "CIM (paper)",
        "",
    ]);
    for row in &r.rows {
        let mark = if row.predicted == row.paper { "=" } else { "!" };
        t.row([
            row.class.label().to_owned(),
            row.measured.compute.to_string(),
            row.measured.bandwidth.to_string(),
            row.measured.size.to_string(),
            row.measured.op_intensity.to_string(),
            row.measured.communication.to_string(),
            row.measured.parallelism.to_string(),
            row.predicted.to_string(),
            row.paper.to_string(),
            mark.to_owned(),
        ]);
    }
    let mut out =
        String::from("TAB2: suitability of application classes to CIM (paper Table 2)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nagreement with the paper's CIM column: {}/{} (mean distance {:.2} levels)\n\
         note: Table 2 itself is internally inconsistent on KVS vs DB-analytics\n\
         (identical characteristics, different ratings) — see EXPERIMENTS.md.\n",
        r.agreement(),
        r.rows.len(),
        r.mean_distance()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_agrees_with_paper_on_most_rows() {
        let r = run();
        assert_eq!(r.rows.len(), 14);
        assert!(
            r.agreement() >= 12,
            "agreement {} rows: {:?}",
            r.agreement(),
            r.rows
                .iter()
                .map(|x| (x.class, x.predicted, x.paper))
                .collect::<Vec<_>>()
        );
        assert!(r.mean_distance() <= 0.25);
    }

    #[test]
    fn anchors_are_correct() {
        let r = run();
        let get = |c: WorkloadClass| r.rows.iter().find(|x| x.class == c).expect("present");
        assert_eq!(get(WorkloadClass::NeuralNetworks).predicted, Level::High);
        assert_eq!(get(WorkloadClass::GraphProblems).predicted, Level::High);
        assert_eq!(get(WorkloadClass::Optimization).predicted, Level::Low);
        assert_eq!(get(WorkloadClass::MarkovChain).predicted, Level::Low);
    }

    #[test]
    fn render_has_all_rows() {
        let s = render(&run());
        assert!(s.contains("Machine learning"));
        assert!(s.contains("Signal (image) processing"));
        assert!(s.contains("agreement with the paper"));
    }
}
