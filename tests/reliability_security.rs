//! Cross-crate reliability and security integration: the §IV/§V story
//! exercised end to end — faults during real streams, duplexed detection
//! of silent corruption, encrypted tenant isolation, and capability
//! confinement, all on one device.

use cim::crossbar::device::CellFault;
use cim::crossbar::dpe::DpeConfig;
use cim::fabric::reliability::{run_duplex, run_fault_campaign, ScheduledFault};
use cim::fabric::security::{fence_tile, CapabilityTable};
use cim::fabric::virt::PartitionManager;
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions, UnitHealth};
use cim::noc::packet::NodeId;
use cim::sim::SeedTree;
use cim::workloads::nn::mlp_graph;
use std::collections::HashMap;

fn device() -> CimDevice {
    CimDevice::new(FabricConfig {
        dpe: DpeConfig::ideal(),
        ..FabricConfig::default()
    })
    .expect("fabric")
}

#[test]
fn cascading_faults_are_absorbed_until_spares_run_out() {
    let mut d = device();
    let (graph, src, _) = mlp_graph(&[32, 32, 32, 8], SeedTree::new(1));
    let mut prog = d
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let items: Vec<_> = (0..20)
        .map(|_| HashMap::from([(src, vec![0.5; 32])]))
        .collect();
    // Three separate faults against three different nodes mid-stream.
    let faults = [
        ScheduledFault {
            before_item: 4,
            node: 1,
        },
        ScheduledFault {
            before_item: 9,
            node: 3,
        },
        ScheduledFault {
            before_item: 14,
            node: 2,
        },
    ];
    let report = run_fault_campaign(
        &mut d,
        &mut prog,
        &items,
        &StreamOptions::default(),
        &faults,
    )
    .expect("spares cover all three");
    assert_eq!(report.stream.outputs.len(), 20, "no item lost");
    assert_eq!(report.stream.recoveries.len(), 3);
    // Each recovery picked a distinct replacement.
    let mut repl: Vec<usize> = report
        .stream
        .recoveries
        .iter()
        .map(|r| r.replacement)
        .collect();
    repl.sort_unstable();
    repl.dedup();
    assert_eq!(repl.len(), 3);
    // Failed units are really failed.
    for r in &report.stream.recoveries {
        assert_eq!(d.unit(r.failed_unit).health(), UnitHealth::Failed);
    }
}

#[test]
fn duplex_execution_flags_silent_corruption_only_when_present() {
    let (graph, src, _) = mlp_graph(&[16, 16, 4], SeedTree::new(2));
    let inputs: Vec<_> = (0..4)
        .map(|i| HashMap::from([(src, vec![0.2 + 0.1 * i as f64; 16])]))
        .collect();

    // Clean device: replicas agree.
    let mut clean = device();
    let dup = run_duplex(&mut clean, &graph, &inputs, 1e-9).expect("fits twice");
    assert!(dup.mismatched_items.is_empty());

    // Corrupt one replica's crossbar: duplexing detects it.
    let mut dirty = device();
    let mut primary = dirty
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let mut shadow = dirty
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let victim = primary.placement().unit_of(1);
    let dpe = dirty.unit_mut(victim).dpe_mut().expect("matvec unit");
    dpe.for_each_array(|_, _, _, _, xbar| {
        for r in 0..8 {
            xbar.inject_fault(r, r, CellFault::StuckOn)
                .expect("in bounds");
        }
    });
    let p = dirty
        .execute_stream(&mut primary, &inputs, &StreamOptions::default())
        .expect("runs");
    let s = dirty
        .execute_stream(&mut shadow, &inputs, &StreamOptions::default())
        .expect("runs");
    let mismatches = p
        .outputs
        .iter()
        .zip(&s.outputs)
        .filter(|(a, b)| {
            a.iter()
                .any(|(k, va)| va.iter().zip(&b[k]).any(|(x, y)| (x - y).abs() > 1e-9))
        })
        .count();
    assert!(mismatches > 0, "stuck-on cells must be caught by duplexing");
}

#[test]
fn tenants_cannot_reach_each_other_even_after_failover() {
    let mut d = device();
    let mut pm = PartitionManager::new();
    let col = |x: u16| (0..4).map(|y| NodeId::new(x, y)).collect::<Vec<_>>();
    pm.create(&mut d, 1, col(0)).expect("partition 1");
    pm.create(&mut d, 2, col(1)).expect("partition 2");
    pm.create(&mut d, 3, col(2)).expect("partition 3 (spare)");

    let (graph, src, sink) = mlp_graph(&[16, 8], SeedTree::new(3));
    let mut prog = pm
        .load_program_in(&mut d, 1, &graph, MappingPolicy::LocalityAware)
        .expect("fits in partition");
    let inputs = vec![HashMap::from([(src, vec![0.5; 16])])];
    let before = d
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .expect("runs");

    // Fail partition 1 over to partition 3.
    let cost = pm.fail_over(&mut d, &mut prog, 1, 3).expect("failover");
    assert!(cost.latency.as_ps() > 0);
    let after = d
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .expect("runs on new tiles");
    let a = &before.outputs[0][&sink];
    let b = &after.outputs[0][&sink];
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 0.05, "failover must preserve results");
    }

    // Partition 2 still cannot talk to partition 3.
    use cim::noc::packet::Packet;
    let cross = Packet::new(42, NodeId::new(1, 0), NodeId::new(2, 0), vec![1]);
    assert!(d
        .noc_mut()
        .transmit(&cross, cim::sim::SimTime::ZERO)
        .is_err());
}

#[test]
fn containment_fence_plus_capabilities_bound_a_compromise() {
    let mut d = device();
    let (graph, src, _) = mlp_graph(&[16, 8], SeedTree::new(4));
    let mut prog = d
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");

    // Least-privilege capabilities for the stream.
    let mut caps = CapabilityTable::new();
    caps.grant_placement(prog.stream_id, prog.placement());
    let reach_before = caps.reach(prog.stream_id);
    assert!(reach_before <= graph.node_count());

    // Containment: fence a tile suspected compromised.
    let fenced_tile = NodeId::new(3, 3);
    let fenced = fence_tile(&mut d, fenced_tile);
    assert_eq!(fenced.len(), 4);

    // The program (placed elsewhere) still runs under its capabilities.
    let report = d
        .execute_stream(
            &mut prog,
            &[HashMap::from([(src, vec![0.5; 16])])],
            &StreamOptions {
                capabilities: Some(caps),
                ..StreamOptions::default()
            },
        )
        .expect("unaffected by the fence");
    assert_eq!(report.outputs.len(), 1);
    // And the fenced units are not schedulable.
    for u in fenced {
        assert_ne!(d.unit(u).health(), UnitHealth::Healthy);
    }
}

#[test]
fn recovery_respects_capability_grants() {
    // After a recovery remaps a node to a spare, a stale capability table
    // (grants only the original placement) must deny the spare — the
    // secure default — until re-granted.
    let mut d = device();
    let (graph, src, _) = mlp_graph(&[16, 8], SeedTree::new(5));
    let mut prog = d
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let mut caps = CapabilityTable::new();
    caps.grant_placement(prog.stream_id, prog.placement());
    let victim = prog.placement().unit_of(1);
    d.fail_unit(victim);
    let res = d.execute_stream(
        &mut prog,
        &[HashMap::from([(src, vec![0.5; 16])])],
        &StreamOptions {
            capabilities: Some(caps.clone()),
            ..StreamOptions::default()
        },
    );
    // The recovery path must deny the ungranted spare (secure default),
    // reporting which unit needs a grant.
    let denied_unit = match res {
        Err(cim::fabric::FabricError::CapabilityDenied { unit, .. }) => unit,
        other => panic!("stale grants must not cover the spare: {other:?}"),
    };
    assert_ne!(
        denied_unit, victim,
        "the denial names the spare, not the victim"
    );
    // The orchestrator grants the spare and retries: recovery completes.
    caps.grant(prog.stream_id, denied_unit);
    let ok = d.execute_stream(
        &mut prog,
        &[HashMap::from([(src, vec![0.5; 16])])],
        &StreamOptions {
            capabilities: Some(caps),
            ..StreamOptions::default()
        },
    );
    assert!(ok.is_ok(), "granted spare completes the recovery: {ok:?}");
}
