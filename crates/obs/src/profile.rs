//! Span-derived profiling: flamegraph folded stacks and per-component
//! utilization.
//!
//! [`cim_sim::telemetry::SpanTracer`] records a causal tree (every span
//! knows its parent); this module folds that tree into the two classic
//! profiler views. **Folded stacks** attribute each span's *self* weight
//! — duration and energy minus what its children already account for —
//! to its root-to-leaf frame path, in the `a;b;c <weight>` format
//! standard flamegraph tooling consumes directly. **Utilization** merges
//! each component's span intervals into a busy/idle timeline. Both views
//! are pure functions of the span records, so they inherit the
//! workspace-wide determinism contract.

use cim_sim::telemetry::{json_f64, json_string, SpanId, Telemetry};
use cim_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One aggregated root-to-leaf stack with its self weights.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedStack {
    /// `;`-joined frames, root first; each frame is `component:span`.
    pub stack: String,
    /// Component path of the leaf frame (export attribution).
    pub leaf_component: String,
    /// Self time: the stack's span durations minus child time, ps.
    pub self_ps: u64,
    /// Self energy: span exit energy minus child energy, fJ.
    pub self_fj: u64,
}

/// One component's busy/idle view over the profiled window.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentUsage {
    /// Registry component path.
    pub component: String,
    /// Union of this component's span intervals, ps.
    pub busy_ps: u64,
    /// `busy_ps` over the whole profiled window.
    pub busy_fraction: f64,
    /// Self energy attributed to this component's frames, fJ.
    pub self_fj: u64,
    /// Busy fraction per timeline bucket (fixed bucket count over the
    /// window), for the idle-gap view in the text report.
    pub timeline: Vec<f64>,
}

/// A folded profile over one run's completed spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Aggregated stacks, sorted lexicographically by frame path.
    pub stacks: Vec<FoldedStack>,
    /// Per-component usage, sorted by component path.
    pub components: Vec<ComponentUsage>,
    /// Sum of root-span durations — the end-to-end time the profile must
    /// reconcile with, ps.
    pub root_ps: u64,
    /// Sum of root-span energies — the end-to-end energy total, fJ.
    pub root_fj: u64,
    /// Sum of self times across all stacks, ps (≤ `root_ps`; equality
    /// when children nest cleanly inside parents).
    pub total_self_ps: u64,
    /// Sum of self energies across all stacks, fJ.
    pub total_self_fj: u64,
    /// Completed spans folded in.
    pub span_count: usize,
    /// Start of the profiled window.
    pub start: SimTime,
    /// End of the profiled window.
    pub end: SimTime,
}

impl Profile {
    /// Folds the telemetry handle's completed spans into a profile with
    /// `timeline_buckets` utilization buckets per component. Returns a
    /// zeroed profile when no spans were recorded (telemetry below
    /// `Full`).
    pub fn from_telemetry(tel: &Telemetry, timeline_buckets: usize) -> Profile {
        let spans = tel.spans();
        let paths: Vec<String> = tel
            .with_registry(|r| {
                spans
                    .iter()
                    .map(|s| r.path_of(s.component).unwrap_or("?").to_owned())
                    .collect()
            })
            .unwrap_or_else(|| spans.iter().map(|_| "?".to_owned()).collect());

        // Index completed spans; open spans carry no weight and are not
        // valid parents for attribution.
        let mut index: HashMap<SpanId, usize> = HashMap::new();
        let mut completed: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            if s.end.is_some() {
                index.insert(s.id, i);
                completed.push(i);
            }
        }

        // Child sums per parent (time and energy already accounted below).
        let mut child_ps: HashMap<usize, u64> = HashMap::new();
        let mut child_fj: HashMap<usize, u64> = HashMap::new();
        for &i in &completed {
            if let Some(p) = spans[i].parent.and_then(|p| index.get(&p)).copied() {
                let d = spans[i].duration().map(|d| d.as_ps()).unwrap_or(0);
                *child_ps.entry(p).or_insert(0) += d;
                *child_fj.entry(p).or_insert(0) += spans[i].energy.as_fj();
            }
        }

        // Stack strings: parents enter before children (span ids are
        // handed out in enter order), so one forward pass resolves every
        // path. A parent that fell off the tracer ring makes its child a
        // root — degraded, still deterministic.
        let mut stack_of: HashMap<usize, String> = HashMap::new();
        let mut agg: BTreeMap<String, (String, u64, u64)> = BTreeMap::new();
        let mut root_ps = 0u64;
        let mut root_fj = 0u64;
        let mut start = SimTime::MAX;
        let mut end = SimTime::ZERO;
        for (order, &i) in completed.iter().enumerate() {
            let _ = order;
            let s = &spans[i];
            let frame = format!("{}:{}", paths[i], s.name);
            let stack = match s.parent.and_then(|p| index.get(&p)).copied() {
                Some(p) => {
                    let parent_stack = stack_of.get(&p).cloned().unwrap_or_else(|| frame.clone());
                    format!("{parent_stack};{frame}")
                }
                None => frame,
            };
            let dur = s.duration().map(|d| d.as_ps()).unwrap_or(0);
            let self_ps = dur.saturating_sub(child_ps.get(&i).copied().unwrap_or(0));
            let self_fj = s
                .energy
                .as_fj()
                .saturating_sub(child_fj.get(&i).copied().unwrap_or(0));
            if s.parent.and_then(|p| index.get(&p)).is_none() {
                root_ps += dur;
                root_fj += s.energy.as_fj();
            }
            start = start.min(s.start);
            if let Some(e) = s.end {
                end = end.max(e);
            }
            let entry = agg
                .entry(stack.clone())
                .or_insert_with(|| (paths[i].clone(), 0, 0));
            entry.1 += self_ps;
            entry.2 += self_fj;
            stack_of.insert(i, stack);
        }
        if completed.is_empty() {
            start = SimTime::ZERO;
        }

        let stacks: Vec<FoldedStack> = agg
            .into_iter()
            .map(|(stack, (leaf_component, self_ps, self_fj))| FoldedStack {
                stack,
                leaf_component,
                self_ps,
                self_fj,
            })
            .collect();
        let total_self_ps = stacks.iter().map(|s| s.self_ps).sum();
        let total_self_fj = stacks.iter().map(|s| s.self_fj).sum();

        // Per-component interval union + bucketed timeline.
        let mut by_component: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
        for &i in &completed {
            let s = &spans[i];
            if let Some(e) = s.end {
                by_component
                    .entry(paths[i].clone())
                    .or_default()
                    .push((s.start.as_ps(), e.as_ps()));
            }
        }
        let mut energy_by_component: BTreeMap<&str, u64> = BTreeMap::new();
        for st in &stacks {
            *energy_by_component
                .entry(st.leaf_component.as_str())
                .or_insert(0) += st.self_fj;
        }
        let window_ps = end.as_ps().saturating_sub(start.as_ps()).max(1);
        let buckets = timeline_buckets.max(1);
        let components = by_component
            .into_iter()
            .map(|(component, mut iv)| {
                iv.sort_unstable();
                let merged = merge_intervals(&iv);
                let busy_ps: u64 = merged.iter().map(|&(a, b)| b - a).sum();
                let mut timeline = vec![0.0; buckets];
                for (slot, frac) in timeline.iter_mut().enumerate() {
                    let lo = start.as_ps() + (window_ps * slot as u64) / buckets as u64;
                    let hi = start.as_ps() + (window_ps * (slot as u64 + 1)) / buckets as u64;
                    let width = (hi - lo).max(1);
                    let overlap: u64 = merged
                        .iter()
                        .map(|&(a, b)| b.min(hi).saturating_sub(a.max(lo)))
                        .sum();
                    *frac = overlap as f64 / width as f64;
                }
                let self_fj = energy_by_component
                    .get(component.as_str())
                    .copied()
                    .unwrap_or(0);
                ComponentUsage {
                    busy_fraction: busy_ps as f64 / window_ps as f64,
                    component,
                    busy_ps,
                    self_fj,
                    timeline,
                }
            })
            .collect();

        Profile {
            stacks,
            components,
            root_ps,
            root_fj,
            total_self_ps,
            total_self_fj,
            span_count: completed.len(),
            start,
            end,
        }
    }

    /// Folded stacks weighted by self *time* (ps), one `stack weight`
    /// line each — the format `flamegraph.pl` and speedscope ingest.
    /// Zero-weight stacks are kept: an all-zero line is still a frame
    /// the run visited.
    pub fn folded_time(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            let _ = writeln!(out, "{} {}", s.stack, s.self_ps);
        }
        out
    }

    /// Folded stacks weighted by self *energy* (fJ).
    pub fn folded_energy(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            let _ = writeln!(out, "{} {}", s.stack, s.self_fj);
        }
        out
    }

    /// The deterministic text report: reconciliation header, hottest
    /// stacks, and the per-component utilization table with an ASCII
    /// busy/idle timeline (`0`–`9` ≈ 0–90%+ busy per bucket).
    pub fn render_text(&self, max_stacks: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} spans over {} (self {} of {} root ps, {} of {} root fJ)",
            self.span_count,
            SimDuration::from_ps(self.end.as_ps().saturating_sub(self.start.as_ps())),
            self.total_self_ps,
            self.root_ps,
            self.total_self_fj,
            self.root_fj,
        );
        let mut hottest: Vec<&FoldedStack> = self.stacks.iter().collect();
        hottest.sort_by(|a, b| b.self_ps.cmp(&a.self_ps).then(a.stack.cmp(&b.stack)));
        for s in hottest.iter().take(max_stacks) {
            let _ = writeln!(
                out,
                "  {:>12} ps {:>12} fJ  {}",
                s.self_ps, s.self_fj, s.stack
            );
        }
        if hottest.len() > max_stacks {
            let _ = writeln!(out, "  … {} more stacks", hottest.len() - max_stacks);
        }
        let _ = writeln!(out, "utilization:");
        for c in &self.components {
            let spark: String = c
                .timeline
                .iter()
                .map(|f| char::from(b'0' + ((f * 10.0) as u8).min(9)))
                .collect();
            let _ = writeln!(
                out,
                "  {:<28} {:>5.1}% busy [{}] {} fJ",
                c.component,
                c.busy_fraction * 100.0,
                spark,
                c.self_fj,
            );
        }
        out
    }

    /// `kind:"profile"` JSON lines: per stack a `profile/time` (unit
    /// `ps`) and a `profile/energy` (unit `fj`) record, then one
    /// `profile/busy_fraction` (unit `fraction`) record per component.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            for (metric, value, unit) in [
                ("profile/time", s.self_ps as f64, "ps"),
                ("profile/energy", s.self_fj as f64, "fj"),
            ] {
                let _ = writeln!(
                    out,
                    "{{\"component\":{},\"metric\":{},\"kind\":\"profile\",\"value\":{},\
                     \"stack\":{},\"unit\":{}}}",
                    json_string(&s.leaf_component),
                    json_string(metric),
                    json_f64(value),
                    json_string(&s.stack),
                    json_string(unit),
                );
            }
        }
        for c in &self.components {
            let _ = writeln!(
                out,
                "{{\"component\":{},\"metric\":\"profile/busy_fraction\",\"kind\":\"profile\",\
                 \"value\":{},\"stack\":{},\"unit\":\"fraction\"}}",
                json_string(&c.component),
                json_f64(c.busy_fraction),
                json_string(&c.component),
            );
        }
        out
    }
}

/// Merges sorted, possibly-overlapping `(start, end)` intervals.
fn merge_intervals(sorted: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for &(a, b) in sorted {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::energy::Energy;
    use cim_sim::telemetry::{validate_jsonl_line, TelemetryLevel};

    /// item(0..100ns, 10 pJ) → { mvm(10..60ns, 6 pJ), route(60..90ns, 1 pJ) }
    fn traced() -> Telemetry {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let eng = tel.component("engine");
        let noc = tel.component("noc");
        let item = tel.span_enter(eng, "item", SimTime::ZERO);
        let mvm = tel.span_enter_child(item, eng, "mvm", SimTime::from_ns(10));
        tel.span_exit(mvm, SimTime::from_ns(60), Energy::from_pj(6.0));
        let route = tel.span_enter_child(item, noc, "route", SimTime::from_ns(60));
        tel.span_exit(route, SimTime::from_ns(90), Energy::from_pj(1.0));
        tel.span_exit(item, SimTime::from_ns(100), Energy::from_pj(10.0));
        tel
    }

    #[test]
    fn self_weights_subtract_children_and_reconcile_with_roots() {
        let p = Profile::from_telemetry(&traced(), 8);
        assert_eq!(p.span_count, 3);
        assert_eq!(p.root_ps, 100_000);
        assert_eq!(p.root_fj, 10_000);
        // item self = 100 - (50 + 30) ns; energies likewise nested.
        let by_stack: std::collections::HashMap<&str, &FoldedStack> =
            p.stacks.iter().map(|s| (s.stack.as_str(), s)).collect();
        assert_eq!(by_stack["engine:item"].self_ps, 20_000);
        assert_eq!(by_stack["engine:item;engine:mvm"].self_ps, 50_000);
        assert_eq!(by_stack["engine:item;noc:route"].self_ps, 30_000);
        assert_eq!(by_stack["engine:item"].self_fj, 3_000);
        assert_eq!(p.total_self_ps, p.root_ps, "clean nesting: exact");
        assert_eq!(p.total_self_fj, p.root_fj);
    }

    #[test]
    fn folded_output_is_sorted_and_deterministic() {
        let a = Profile::from_telemetry(&traced(), 8);
        let b = Profile::from_telemetry(&traced(), 8);
        assert_eq!(a, b);
        let folded = a.folded_time();
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "stacks are emitted in sorted order");
        assert_eq!(lines.len(), 3);
        assert!(folded.contains("engine:item;engine:mvm 50000"));
    }

    #[test]
    fn utilization_merges_overlaps_and_buckets_idle_gaps() {
        let p = Profile::from_telemetry(&traced(), 10);
        let eng = p
            .components
            .iter()
            .find(|c| c.component == "engine")
            .unwrap();
        // engine busy = union of item (0..100) and mvm (10..60) = 100ns.
        assert_eq!(eng.busy_ps, 100_000);
        assert!((eng.busy_fraction - 1.0).abs() < 1e-9);
        let noc = p.components.iter().find(|c| c.component == "noc").unwrap();
        assert_eq!(noc.busy_ps, 30_000);
        // noc idle in the first buckets, busy around 60–90ns.
        assert!(noc.timeline[0] < 0.01);
        assert!(noc.timeline[6] > 0.9);
    }

    #[test]
    fn text_and_jsonl_renderings_validate() {
        let p = Profile::from_telemetry(&traced(), 8);
        let text = p.render_text(2);
        assert!(text.contains("… 1 more stacks"));
        assert!(text.contains("utilization:"));
        for line in p.export_jsonl().lines() {
            validate_jsonl_line(line).expect("profile schema");
        }
        let empty = Profile::from_telemetry(&Telemetry::disabled(), 8);
        assert_eq!(empty.span_count, 0);
        assert!(empty.folded_time().is_empty());
    }
}
