//! Cross-crate integration: workloads lower to dataflow, dataflow runs on
//! the CIM fabric, and the fabric's answers match the reference
//! interpreter; the Von Neumann baselines price the same graphs so the
//! platforms are comparable end to end.

use cim::baseline::{CpuModel, GpuModel};
use cim::crossbar::dpe::DpeConfig;
use cim::dataflow::interpreter;
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::sim::SeedTree;
use cim::workloads::graphs::PageRank;
use cim::workloads::misc::FilterBank;
use cim::workloads::nn::{mlp_graph, synthetic_classification, template_classifier};
use cim::workloads::store::ColumnAnalytics;
use cim::workloads::Workload;
use std::collections::HashMap;

fn ideal_device() -> CimDevice {
    CimDevice::new(FabricConfig {
        dpe: DpeConfig::ideal(),
        ..FabricConfig::default()
    })
    .expect("valid fabric")
}

fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn fabric_matches_interpreter_on_workload_dataflow_forms() {
    // Every workload that lowers to dataflow must compute the same
    // function on the fabric (up to analog quantization) as the exact
    // interpreter.
    let forms: Vec<(&str, cim::workloads::DataflowForm, Vec<f64>)> = vec![
        {
            let df = PageRank::small().dataflow().expect("lowers");
            let n = df.graph.node(df.source).op.output_width();
            ("pagerank", df, vec![1.0 / n as f64; n])
        },
        {
            let df = FilterBank::small().dataflow().expect("lowers");
            let w = df.graph.node(df.source).op.output_width();
            (
                "filterbank",
                df,
                (0..w).map(|i| (i as f64 / w as f64) - 0.5).collect(),
            )
        },
        {
            let df = ColumnAnalytics::small().dataflow().expect("lowers");
            let w = df.graph.node(df.source).op.output_width();
            (
                "analytics",
                df,
                (0..w).map(|i| ((i % 5) as f64) - 2.0).collect(),
            )
        },
    ];
    for (name, df, input) in forms {
        let mut device = ideal_device();
        let mut prog = device
            .load_program(&df.graph, MappingPolicy::LocalityAware)
            .expect("fits");
        let report = device
            .execute_stream(
                &mut prog,
                &[HashMap::from([(df.source, input.clone())])],
                &StreamOptions::default(),
            )
            .expect("runs");
        let reference = interpreter::execute(&df.graph, &HashMap::from([(df.source, input)]))
            .expect("reference runs");
        let got = &report.outputs[0][&df.sink];
        let want = &reference[&df.sink];
        let scale = want.iter().fold(1e-9f64, |m, x| m.max(x.abs()));
        assert!(
            max_abs_err(got, want) / scale < 0.05,
            "{name}: fabric diverges from reference (err {})",
            max_abs_err(got, want) / scale
        );
    }
}

#[test]
fn analog_classifier_accuracy_tracks_exact_classifier() {
    let seeds = SeedTree::new(77);
    let data = synthetic_classification(6, 48, 20, 0.3, seeds);
    let (graph, src, sink) = template_classifier(&data);
    // Noisy (realistic) fabric this time.
    let mut device = CimDevice::new(FabricConfig::default()).expect("fabric");
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let inputs: Vec<_> = data
        .samples
        .iter()
        .map(|s| HashMap::from([(src, s.clone())]))
        .collect();
    let report = device
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .expect("runs");
    let preds: Vec<f64> = report.outputs.iter().map(|o| o[&sink][0]).collect();
    let acc = cim::workloads::nn::accuracy(&preds, &data.labels);
    assert!(
        acc > 0.85,
        "analog inference should stay close to the exact classifier: {acc}"
    );
}

#[test]
fn large_models_favor_cim_small_models_favor_baselines() {
    // The crossover the paper implies: once weights exceed the CPU's
    // caches, the CPU falls off the DRAM cliff while CIM latency stays
    // flat; for small cached models the baselines are competitive.
    let seeds = SeedTree::new(5);
    let cpu = CpuModel::new(20).expect("socket");

    let (small, _, _) = mlp_graph(&[128, 64], seeds);
    let (large, src, _) = mlp_graph(&[2048, 2048], seeds);

    let cpu_small = cpu.run_graph(&small, 1).latency;
    let cpu_large = cpu.run_graph(&large, 1).latency;
    assert!(
        cpu_large.as_secs_f64() > 100.0 * cpu_small.as_secs_f64(),
        "the DRAM cliff must separate the models"
    );

    let mut device = CimDevice::new(FabricConfig {
        dpe: DpeConfig {
            input_bits: 4,
            ..DpeConfig::noise_free()
        },
        ..FabricConfig::default()
    })
    .expect("fabric");
    let mut prog = device
        .load_program(&large, MappingPolicy::LocalityAware)
        .expect("fits");
    let report = device
        .execute_stream(
            &mut prog,
            &[HashMap::from([(src, vec![0.25; 2048])])],
            &StreamOptions::default(),
        )
        .expect("runs");
    let cim_large = report.mean_latency();
    assert!(
        cpu_large.as_secs_f64() / cim_large.as_secs_f64() > 10.0,
        "large model: CIM must beat the CPU by an order of magnitude \
         (cpu {cpu_large}, cim {cim_large})"
    );
}

#[test]
fn gpu_amortizes_cpu_does_not_cim_streams() {
    let seeds = SeedTree::new(6);
    let (graph, src, _) = mlp_graph(&[1024, 1024], seeds);
    let gpu = GpuModel::new();
    let t1 = gpu.run_graph(&graph, 1).latency.as_secs_f64();
    let t64 = gpu.run_graph(&graph, 64).latency.as_secs_f64() / 64.0;
    assert!(t1 / t64 > 5.0, "GPU batching must amortize launches");

    let mut device = CimDevice::new(FabricConfig {
        dpe: DpeConfig {
            input_bits: 4,
            ..DpeConfig::noise_free()
        },
        ..FabricConfig::default()
    })
    .expect("fabric");
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let items: Vec<_> = (0..8)
        .map(|_| HashMap::from([(src, vec![0.2; 1024])]))
        .collect();
    let report = device
        .execute_stream(&mut prog, &items, &StreamOptions::default())
        .expect("runs");
    // Pipelined streaming: sustained rate beats single-item residence.
    let sustained = report.makespan().as_secs_f64() / 8.0;
    assert!(sustained < report.mean_latency().as_secs_f64());
}

#[test]
fn configuration_cost_amortizes_over_the_stream() {
    // Static dataflow's bargain: pay the slow crossbar programming once,
    // then stream. After enough items, total CIM time (config + stream)
    // beats the CPU on the same stream.
    let seeds = SeedTree::new(8);
    let (graph, src, _) = mlp_graph(&[2048, 2048], seeds);
    let cpu = CpuModel::new(20).expect("socket");
    let n = 64;
    let cpu_total = cpu.run_graph(&graph, n).latency.as_secs_f64();

    let mut device = CimDevice::new(FabricConfig {
        dpe: DpeConfig {
            input_bits: 4,
            ..DpeConfig::noise_free()
        },
        ..FabricConfig::default()
    })
    .expect("fabric");
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .expect("fits");
    let items: Vec<_> = (0..n)
        .map(|_| HashMap::from([(src, vec![0.1; 2048])]))
        .collect();
    let report = device
        .execute_stream(&mut prog, &items, &StreamOptions::default())
        .expect("runs");
    let cim_total = prog.config_cost.latency.as_secs_f64() + report.makespan().as_secs_f64();
    assert!(
        cim_total < cpu_total,
        "after {n} items the configuration must have amortized \
         (cim {cim_total:.2e}s vs cpu {cpu_total:.2e}s)"
    );
}

#[test]
fn branchy_graphs_with_multi_input_ops_run_on_the_fabric() {
    // A residual-style block: the input forks into a matvec branch and a
    // scaling branch, re-joins through Add, and a Concat exposes both the
    // joined and raw views — multi-port operators crossing tiles.
    use cim::dataflow::graph::GraphBuilder;
    use cim::dataflow::ops::{Elementwise, Operation};

    let width = 8usize;
    let mut b = GraphBuilder::new();
    let src = b.add("in", Operation::Source { width });
    let mv = b.add(
        "mv",
        Operation::MatVec {
            rows: width,
            cols: width,
            weights: (0..width * width)
                .map(|i| if i % (width + 1) == 0 { 0.5 } else { 0.0 })
                .collect(),
        },
    );
    let scale = b.add(
        "scale",
        Operation::Map {
            func: Elementwise::Scale(0.25),
            width,
        },
    );
    let add = b.add("residual", Operation::Add { width });
    let cat = b.add(
        "concat",
        Operation::Concat {
            left: width,
            right: width,
        },
    );
    let sink = b.add("out", Operation::Sink { width: 2 * width });
    b.connect(src, mv, 0).expect("fork 1");
    b.connect(src, scale, 0).expect("fork 2");
    b.connect(mv, add, 0).expect("join 1");
    b.connect(scale, add, 1).expect("join 2");
    b.connect(add, cat, 0).expect("cat 1");
    b.connect(src, cat, 1).expect("cat 2");
    b.connect(cat, sink, 0).expect("sink");
    let graph = b.build().expect("valid branchy graph");

    let mut device = ideal_device();
    // RoundRobin placement forces cross-tile traffic on the joins.
    let mut prog = device
        .load_program(&graph, MappingPolicy::RoundRobin)
        .expect("fits");
    let x: Vec<f64> = (0..width).map(|i| i as f64 / 4.0).collect();
    let report = device
        .execute_stream(
            &mut prog,
            &[HashMap::from([(src, x.clone())])],
            &StreamOptions::default(),
        )
        .expect("runs");
    let reference =
        interpreter::execute(&graph, &HashMap::from([(src, x)])).expect("reference runs");
    let got = &report.outputs[0][&graph.sinks()[0]];
    let want = &reference[&graph.sinks()[0]];
    assert_eq!(got.len(), 2 * width);
    for (g, w) in got.iter().zip(want) {
        assert!((g - w).abs() < 0.02, "fabric {g} vs reference {w}");
    }
}

#[test]
fn workload_traces_exercise_the_memory_system_realistically() {
    // The locality cliff end to end: the analytics scan streams through
    // DRAM row buffers, the Zipf KVS pointer-chases into conflicts —
    // with the *same* trace-driven cache + DRAM models pricing both.
    use cim::workloads::store::{ColumnAnalytics, KvStore};

    let cpu = CpuModel::new(1).expect("core");
    let scan = ColumnAnalytics {
        rows: 200_000,
        partitions: 8,
        seed: 1,
    };
    let kvs = KvStore {
        keys: 200_000,
        value_bytes: 64,
        ops: 50_000,
        skew: 0.9,
        seed: 2,
    };
    let (scan_cost, scan_cache, scan_dram) = cpu.run_trace_with_dram(&scan.memory_trace());
    let (kvs_cost, kvs_cache, kvs_dram) = cpu.run_trace_with_dram(&kvs.memory_trace());

    // The scan streams: each 64-byte line serves 8 sequential accesses,
    // and DRAM misses land in open rows.
    assert!(
        scan_cache.l1_hits > scan_cache.dram_accesses * 4,
        "sequential scan mostly hits L1: {scan_cache:?}"
    );
    assert!(
        scan_dram.hit_rate() > 0.8,
        "scan misses stream through open rows: {:?}",
        scan_dram
    );
    // The KVS chases pointers: its DRAM accesses conflict.
    assert!(
        kvs_dram.hit_rate() < 0.5,
        "skewed point lookups thrash row buffers: {:?}",
        kvs_dram
    );
    // Per access, the random workload is far more expensive.
    let scan_per = scan_cost.latency.as_secs_f64() / scan.memory_trace().len() as f64;
    let kvs_per = kvs_cost.latency.as_secs_f64() / kvs.memory_trace().len() as f64;
    assert!(
        kvs_per > 3.0 * scan_per,
        "random access must cost multiples of streaming: {kvs_per:.2e} vs {scan_per:.2e}"
    );
    let _ = kvs_cache;
}
