//! A minimal CIM runtime (paper §III.E).
//!
//! "Initially CIM components will be used as slave devices… over time …
//! CIM computers can start running natively requiring full run time and
//! operating system support." This module is that runtime's kernel: it
//! owns the device, admits programs while free micro-units last, queues
//! the rest, and reclaims units when jobs finish — the resource-manager
//! role an OS plays for CPUs, at micro-unit granularity.

use crate::device::CimDevice;
use crate::engine::{MappedProgram, StreamOptions, StreamReport};
use crate::error::{FabricError, Result};
use crate::mapper::MappingPolicy;
use crate::unit::UnitHealth;
use cim_dataflow::graph::{DataflowGraph, NodeRef};
use std::collections::{HashMap, VecDeque};

/// Identifies a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Raw id (diagnostics).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Admission outcome of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Loaded onto the fabric and ready to run.
    Running(JobId),
    /// Waiting for micro-units to free up.
    Queued(JobId),
}

impl JobStatus {
    /// The job id regardless of state.
    pub fn id(self) -> JobId {
        match self {
            JobStatus::Running(id) | JobStatus::Queued(id) => id,
        }
    }
}

/// The multi-program device manager.
///
/// # Examples
///
/// ```
/// use cim_fabric::runtime::CimRuntime;
/// use cim_fabric::{FabricConfig, MappingPolicy};
/// use cim_dataflow::graph::GraphBuilder;
/// use cim_dataflow::ops::Operation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rt = CimRuntime::new(FabricConfig::default())?;
/// let mut b = GraphBuilder::new();
/// let s = b.add("s", Operation::Source { width: 2 });
/// let k = b.add("k", Operation::Sink { width: 2 });
/// b.connect(s, k, 0)?;
/// let status = rt.submit(b.build()?, MappingPolicy::LocalityAware)?;
/// assert!(matches!(status, cim_fabric::runtime::JobStatus::Running(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CimRuntime {
    pub(crate) device: CimDevice,
    pub(crate) jobs: HashMap<JobId, MappedProgram>,
    pub(crate) queue: VecDeque<(JobId, DataflowGraph, MappingPolicy)>,
    pub(crate) rejected: Vec<JobId>,
    pub(crate) next_id: u64,
}

impl CimRuntime {
    /// Boots a runtime on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates device-construction failures.
    pub fn new(config: crate::config::FabricConfig) -> Result<Self> {
        Ok(CimRuntime {
            device: CimDevice::new(config)?,
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            rejected: Vec::new(),
            next_id: 0,
        })
    }

    /// The device, read-only (telemetry).
    pub fn device(&self) -> &CimDevice {
        &self.device
    }

    /// The device, mutable (fault injection, telemetry setup).
    pub fn device_mut(&mut self) -> &mut CimDevice {
        &mut self.device
    }

    /// Publishes admission counters and scheduler gauges under the
    /// `runtime` component. No-ops (one branch) when telemetry is off.
    pub(crate) fn publish_sched_state(&mut self, counter: &'static str) {
        let tel = self.device.telemetry().clone();
        if !tel.is_enabled() {
            return;
        }
        let c = self.device.runtime_component();
        tel.counter_add(c, counter, 1);
        tel.gauge_set(c, "queue_depth", self.queue.len() as f64);
        tel.gauge_set(c, "utilization", self.utilization());
    }

    /// Free healthy micro-units right now.
    pub fn free_units(&self) -> usize {
        self.device
            .units()
            .iter()
            .filter(|u| u.health() == UnitHealth::Healthy && u.assigned_node().is_none())
            .count()
    }

    /// Fraction of healthy units currently assigned to jobs.
    pub fn utilization(&self) -> f64 {
        let healthy = self.device.healthy_unit_count();
        if healthy == 0 {
            return 0.0;
        }
        let busy = self
            .device
            .units()
            .iter()
            .filter(|u| u.health() == UnitHealth::Healthy && u.assigned_node().is_some())
            .count();
        busy as f64 / healthy as f64
    }

    /// Jobs currently loaded.
    pub fn running_jobs(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Jobs waiting for capacity, in arrival order.
    pub fn queued_jobs(&self) -> Vec<JobId> {
        self.queue.iter().map(|(id, _, _)| *id).collect()
    }

    /// Queued jobs dropped because permanent unit failures shrank the
    /// device below their footprint (they could never be admitted).
    pub fn rejected_jobs(&self) -> &[JobId] {
        &self.rejected
    }

    /// A loaded job's program (placement inspection, fault targeting).
    pub fn program(&self, job: JobId) -> Option<&MappedProgram> {
        self.jobs.get(&job)
    }

    fn fresh_id(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Submits a graph: loads it if enough units are free, queues it
    /// otherwise (FIFO admission — no overtaking).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityExceeded`] if the graph can *never*
    /// fit — more nodes than the device has *healthy* units (a job
    /// admitted against the total count would wedge the FIFO forever once
    /// permanent failures shrink the device) — or propagates programming
    /// failures.
    pub fn submit(&mut self, graph: DataflowGraph, policy: MappingPolicy) -> Result<JobStatus> {
        let healthy = self.device.healthy_unit_count();
        if graph.node_count() > healthy {
            return Err(FabricError::CapacityExceeded {
                needed: graph.node_count(),
                available: healthy,
            });
        }
        let id = self.fresh_id();
        // FIFO: if anything is already queued, join the queue.
        if !self.queue.is_empty() || graph.node_count() > self.free_units() {
            self.queue.push_back((id, graph, policy));
            self.publish_sched_state("jobs_queued");
            return Ok(JobStatus::Queued(id));
        }
        let prog = self.device.load_program(&graph, policy)?;
        self.jobs.insert(id, prog);
        self.publish_sched_state("jobs_admitted");
        Ok(JobStatus::Running(id))
    }

    /// Runs a stream of inputs through a loaded job.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] for unknown or queued jobs;
    /// propagates execution errors.
    pub fn run(
        &mut self,
        job: JobId,
        inputs: &[HashMap<NodeRef, Vec<f64>>],
        opts: &StreamOptions,
    ) -> Result<StreamReport> {
        let prog = self.jobs.get_mut(&job).ok_or(FabricError::InvalidConfig {
            reason: format!("job {} is not loaded (queued or unknown)", job.0),
        })?;
        self.device.execute_stream(prog, inputs, opts)
    }

    /// Finishes a job: releases its units and admits queued jobs that now
    /// fit (FIFO). Returns the newly admitted job ids.
    ///
    /// Queued jobs that can *never* fit any more — permanent unit failures
    /// shrank the healthy pool below their footprint while they waited —
    /// are dropped into [`rejected_jobs`](Self::rejected_jobs) rather than
    /// left to wedge the FIFO in front of admissible work.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] for unknown jobs; propagates
    /// programming failures during admission.
    pub fn finish(&mut self, job: JobId) -> Result<Vec<JobId>> {
        let prog = self.jobs.remove(&job).ok_or(FabricError::InvalidConfig {
            reason: format!("job {} is not loaded", job.0),
        })?;
        for &unit in &prog.placement().node_to_unit {
            self.device.unit_mut(unit).reset();
        }
        // FIFO admission: stop at the first job that does not fit *yet*;
        // drop jobs that cannot fit ever.
        let mut admitted = Vec::new();
        while let Some((id, graph, policy)) = self.queue.front().cloned() {
            if graph.node_count() > self.device.healthy_unit_count() {
                self.queue.pop_front();
                self.rejected.push(id);
                self.publish_sched_state("jobs_rejected");
                continue;
            }
            if graph.node_count() > self.free_units() {
                break;
            }
            self.queue.pop_front();
            let prog = self.device.load_program(&graph, policy)?;
            self.jobs.insert(id, prog);
            self.publish_sched_state("jobs_admitted");
            admitted.push(id);
        }
        self.publish_sched_state("jobs_finished");
        Ok(admitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};

    fn small_runtime(units: usize) -> CimRuntime {
        CimRuntime::new(FabricConfig {
            mesh_width: units,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("runtime boots")
    }

    fn chain(nodes: usize) -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 4 });
        let mut prev = s;
        for i in 0..nodes.saturating_sub(2) {
            let n = b.add(
                format!("m{i}"),
                Operation::Map {
                    func: Elementwise::Relu,
                    width: 4,
                },
            );
            b.connect(prev, n, 0).expect("chain");
            prev = n;
        }
        let k = b.add("k", Operation::Sink { width: 4 });
        b.connect(prev, k, 0).expect("chain");
        (b.build().expect("valid"), s, k)
    }

    #[test]
    fn admits_until_full_then_queues_fifo() {
        let mut rt = small_runtime(8);
        let (g1, _, _) = chain(4);
        let (g2, _, _) = chain(4);
        let (g3, _, _) = chain(3);
        let a = rt.submit(g1, MappingPolicy::RoundRobin).expect("fits");
        let b = rt.submit(g2, MappingPolicy::RoundRobin).expect("fits");
        let c = rt.submit(g3, MappingPolicy::RoundRobin).expect("queues");
        assert!(matches!(a, JobStatus::Running(_)));
        assert!(matches!(b, JobStatus::Running(_)));
        assert!(matches!(c, JobStatus::Queued(_)));
        assert_eq!(rt.running_jobs().len(), 2);
        assert_eq!(rt.queued_jobs(), vec![c.id()]);
        assert!((rt.utilization() - 1.0).abs() < 1e-12);

        // Finishing one job admits the queued one.
        let admitted = rt.finish(a.id()).expect("finish");
        assert_eq!(admitted, vec![c.id()]);
        assert_eq!(rt.running_jobs().len(), 2);
        assert!(rt.queued_jobs().is_empty());
    }

    #[test]
    fn fifo_prevents_overtaking() {
        let mut rt = small_runtime(8);
        let (g1, _, _) = chain(8);
        let (big, _, _) = chain(6);
        let (small, _, _) = chain(2);
        let a = rt.submit(g1, MappingPolicy::RoundRobin).expect("fits");
        let b = rt.submit(big, MappingPolicy::RoundRobin).expect("queues");
        let c = rt.submit(small, MappingPolicy::RoundRobin).expect("queues");
        assert!(matches!(b, JobStatus::Queued(_)));
        assert!(
            matches!(c, JobStatus::Queued(_)),
            "small job must not overtake the queued big one"
        );
        let admitted = rt.finish(a.id()).expect("finish");
        assert_eq!(admitted, vec![b.id(), c.id()], "admitted in order");
    }

    #[test]
    fn running_jobs_compute_queued_jobs_do_not() {
        let mut rt = small_runtime(4);
        let (g1, s1, k1) = chain(4);
        let (g2, _, _) = chain(4);
        let a = rt.submit(g1, MappingPolicy::RoundRobin).expect("fits");
        let b = rt.submit(g2, MappingPolicy::RoundRobin).expect("queues");

        let report = rt
            .run(
                a.id(),
                &[HashMap::from([(s1, vec![-1.0, 2.0, -3.0, 4.0])])],
                &StreamOptions::default(),
            )
            .expect("runs");
        assert_eq!(report.outputs[0][&k1], vec![0.0, 2.0, 0.0, 4.0]);

        let err = rt.run(b.id(), &[], &StreamOptions::default());
        assert!(matches!(err, Err(FabricError::InvalidConfig { .. })));
    }

    #[test]
    fn impossible_jobs_rejected_immediately() {
        let mut rt = small_runtime(4);
        let (g, _, _) = chain(10);
        assert!(matches!(
            rt.submit(g, MappingPolicy::RoundRobin),
            Err(FabricError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn admission_checks_healthy_units_not_total() {
        let mut rt = small_runtime(4);
        rt.device_mut().fail_unit(0);
        // 4 total units but only 3 healthy: a 4-node job can never fit.
        let (g, _, _) = chain(4);
        assert!(matches!(
            rt.submit(g, MappingPolicy::RoundRobin),
            Err(FabricError::CapacityExceeded {
                needed: 4,
                available: 3,
            })
        ));
        // A 3-node job still goes straight to Running.
        let (g3, _, _) = chain(3);
        let s = rt.submit(g3, MappingPolicy::RoundRobin).expect("fits");
        assert!(matches!(s, JobStatus::Running(_)));
    }

    #[test]
    fn permanently_unfittable_queued_job_is_dropped_not_wedged() {
        let mut rt = small_runtime(4);
        let (g1, _, _) = chain(4);
        let (g2, _, _) = chain(4);
        let (g3, _, _) = chain(2);
        let a = rt.submit(g1, MappingPolicy::RoundRobin).expect("fits");
        let b = rt.submit(g2, MappingPolicy::RoundRobin).expect("queues");
        let c = rt.submit(g3, MappingPolicy::RoundRobin).expect("queues");
        assert!(matches!(b, JobStatus::Queued(_)));

        // A permanent failure shrinks the device to 3 healthy units while
        // the 4-node job waits: it can never run again.
        rt.device_mut().fail_unit(0);
        let admitted = rt.finish(a.id()).expect("finish");
        // The dead job is dropped instead of blocking the FIFO, and the
        // 2-node job behind it is admitted.
        assert_eq!(admitted, vec![c.id()]);
        assert_eq!(rt.rejected_jobs(), &[b.id()]);
        assert!(rt.queued_jobs().is_empty());
        assert_eq!(rt.running_jobs(), vec![c.id()]);
    }

    #[test]
    fn finish_unknown_job_errors() {
        let mut rt = small_runtime(4);
        assert!(rt.finish(JobId(42)).is_err());
    }
}
