//! Deterministic random-number utilities.
//!
//! Every stochastic model (device noise, workload generators, fault
//! injection) draws from an RNG derived from a single experiment seed, so
//! whole experiments replay bit-identically. Component streams are derived
//! with SplitMix64 so adding a new component never perturbs existing ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives independent, reproducible RNG streams from one root seed.
///
/// Each `(root_seed, label)` pair yields a fixed stream; distinct labels
/// yield decorrelated streams.
///
/// # Examples
///
/// ```
/// use cim_sim::rng::SeedTree;
///
/// let tree = SeedTree::new(42);
/// let mut a1 = tree.rng("crossbar-noise");
/// let mut a2 = tree.rng("crossbar-noise");
/// let mut b = tree.rng("fault-injection");
/// use rand::Rng;
/// let x1: u64 = a1.gen();
/// let x2: u64 = a2.gen();
/// let y: u64 = b.gen();
/// assert_eq!(x1, x2, "same label replays the same stream");
/// assert_ne!(x1, y, "different labels are decorrelated");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree from a root experiment seed.
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the 64-bit seed for a labelled stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        // FNV-1a over the label, mixed with the root through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(self.root ^ h)
    }

    /// Creates the RNG for a labelled stream.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(label))
    }

    /// Derives a child tree, for hierarchies like
    /// `experiment → tile[i] → micro-unit[j]`.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            root: self.seed_for(label),
        }
    }

    /// Derives a child tree from an index (e.g. a replica number).
    pub fn child_idx(&self, index: u64) -> SeedTree {
        SeedTree {
            root: splitmix64(self.root ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15))),
        }
    }
}

/// One step of the SplitMix64 mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples a standard-normal variate via the Box–Muller transform.
///
/// The allowed dependency set excludes `rand_distr`, so the few
/// distributions the models need are provided here.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0,1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be non-negative, got {std_dev}");
    mean + std_dev * standard_normal(rng)
}

/// Samples from a Zipf distribution over `{0, 1, .., n-1}` with exponent
/// `s`, by inverse-CDF over precomputed weights.
///
/// Zipf-distributed keys drive the key-value-store and search workloads
/// (Table 2), whose skew determines cache behaviour.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of distinct values.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one value in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an exponential variate with the given rate (events per unit).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_tree_is_reproducible_and_label_sensitive() {
        let t = SeedTree::new(7);
        assert_eq!(t.seed_for("a"), t.seed_for("a"));
        assert_ne!(t.seed_for("a"), t.seed_for("b"));
        assert_ne!(SeedTree::new(8).seed_for("a"), t.seed_for("a"));
    }

    #[test]
    fn child_trees_are_decorrelated() {
        let t = SeedTree::new(123);
        let c1 = t.child("tile");
        let c2 = t.child("unit");
        assert_ne!(c1.root(), c2.root());
        assert_ne!(t.child_idx(0).root(), t.child_idx(1).root());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeedTree::new(1).rng("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = SeedTree::new(2).rng("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SeedTree::new(3).rng("zipf");
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
        assert!(counts[0] > counts[999] * 10, "heavy skew expected");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_ish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SeedTree::new(4).rng("zipf0");
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SeedTree::new(5).rng("exp");
        let n = 30_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "Zipf support")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
