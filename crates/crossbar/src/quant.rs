//! Fixed-point quantization for weights and activations.
//!
//! The dot-product engine computes on integers: weights are quantized to
//! `weight_bits` signed fixed point and split into cell-sized slices;
//! inputs are quantized to `input_bits` signed fixed point and streamed
//! bit-serially. These helpers define that mapping and its inverse.

/// A symmetric linear quantizer mapping `[-max_abs, max_abs]` onto signed
/// integers `[-(2^(bits-1)-1), 2^(bits-1)-1]`.
///
/// Symmetric (no zero-point) quantization keeps the crossbar math linear:
/// `dequant(q(a) · q(b)) ≈ a · b` up to scale factors.
///
/// # Examples
///
/// ```
/// use cim_crossbar::quant::Quantizer;
///
/// let q = Quantizer::new(8, 1.0).unwrap();
/// assert_eq!(q.quantize(1.0), 127);
/// assert_eq!(q.quantize(-1.0), -127);
/// assert_eq!(q.quantize(0.0), 0);
/// let x = 0.337;
/// assert!((q.dequantize(q.quantize(x)) - x).abs() <= q.step() / 2.0 + 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    max_abs: f64,
    qmax: i64,
}

impl Quantizer {
    /// Creates a quantizer for the given bit width and dynamic range.
    ///
    /// Returns `None` if `bits` is not in `2..=31` or `max_abs` is not a
    /// strictly positive finite number.
    pub fn new(bits: u32, max_abs: f64) -> Option<Self> {
        if !(2..=31).contains(&bits) || !max_abs.is_finite() || max_abs <= 0.0 {
            return None;
        }
        Some(Quantizer {
            bits,
            max_abs,
            qmax: (1i64 << (bits - 1)) - 1,
        })
    }

    /// Creates a quantizer whose range covers the data slice.
    ///
    /// Falls back to a range of 1.0 for all-zero (or empty) data so the
    /// quantizer stays usable.
    ///
    /// Returns `None` under the same conditions as [`Quantizer::new`].
    pub fn fit(bits: u32, data: &[f64]) -> Option<Self> {
        let max_abs = data
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()))
            .max(f64::MIN_POSITIVE);
        let max_abs = if max_abs <= f64::MIN_POSITIVE {
            1.0
        } else {
            max_abs
        };
        Quantizer::new(bits, max_abs)
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable integer magnitude.
    pub fn qmax(&self) -> i64 {
        self.qmax
    }

    /// The real value of one integer step.
    pub fn step(&self) -> f64 {
        self.max_abs / self.qmax as f64
    }

    /// The dynamic range bound this quantizer was built for.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Quantizes a real value, saturating at the range bounds.
    pub fn quantize(&self, x: f64) -> i64 {
        let q = (x / self.step()).round();
        (q as i64).clamp(-self.qmax, self.qmax)
    }

    /// Maps an integer back to its real value.
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 * self.step()
    }

    /// Quantizes a whole slice.
    pub fn quantize_all(&self, xs: &[f64]) -> Vec<i64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

/// Splits a non-negative integer into little-endian slices of
/// `slice_bits` each, `n_slices` long.
///
/// # Panics
///
/// Panics if the value does not fit in `n_slices * slice_bits` bits.
///
/// # Examples
///
/// ```
/// use cim_crossbar::quant::split_slices;
///
/// // 0b110110 in 2-bit slices, little-endian: [0b10, 0b01, 0b11]
/// assert_eq!(split_slices(0b11_01_10, 2, 3), vec![0b10, 0b01, 0b11]);
/// ```
pub fn split_slices(value: u64, slice_bits: u32, n_slices: usize) -> Vec<u16> {
    let capacity_bits = slice_bits as usize * n_slices;
    assert!(
        capacity_bits >= 64 || value < (1u64 << capacity_bits),
        "value {value} does not fit in {n_slices} slices of {slice_bits} bits"
    );
    let mask = (1u64 << slice_bits) - 1;
    (0..n_slices)
        .map(|s| ((value >> (s as u32 * slice_bits)) & mask) as u16)
        .collect()
}

/// Reassembles little-endian slices produced by [`split_slices`].
pub fn join_slices(slices: &[u16], slice_bits: u32) -> u64 {
    slices.iter().enumerate().fold(0u64, |acc, (s, &v)| {
        acc | (u64::from(v) << (s as u32 * slice_bits))
    })
}

/// Extracts bit `b` (little-endian) of the two's-complement representation
/// of `q` over `bits` total bits.
///
/// Used by the bit-serial input streamer: phase `b` drives rows whose input
/// has bit `b` set; the MSB phase carries weight `-2^(bits-1)`.
pub fn twos_complement_bit(q: i64, bits: u32, b: u32) -> bool {
    debug_assert!(b < bits);
    let masked = (q as u64) & ((1u64 << bits) - 1);
    (masked >> b) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_params() {
        assert!(Quantizer::new(1, 1.0).is_none());
        assert!(Quantizer::new(32, 1.0).is_none());
        assert!(Quantizer::new(8, 0.0).is_none());
        assert!(Quantizer::new(8, f64::NAN).is_none());
        assert!(Quantizer::new(8, 1.0).is_some());
    }

    #[test]
    fn quantize_saturates() {
        let q = Quantizer::new(4, 1.0).unwrap();
        assert_eq!(q.qmax(), 7);
        assert_eq!(q.quantize(10.0), 7);
        assert_eq!(q.quantize(-10.0), -7);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let q = Quantizer::new(8, 2.0).unwrap();
        for i in -100..=100 {
            let x = i as f64 * 0.02;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn fit_covers_data() {
        let data = [0.1, -3.5, 2.0];
        let q = Quantizer::fit(8, &data).unwrap();
        assert_eq!(q.max_abs(), 3.5);
        assert_eq!(q.quantize(-3.5), -q.qmax());
        let q0 = Quantizer::fit(8, &[0.0, 0.0]).unwrap();
        assert_eq!(q0.max_abs(), 1.0, "all-zero data falls back to 1.0");
        assert!(Quantizer::fit(8, &[]).is_some());
    }

    #[test]
    fn slices_roundtrip() {
        for v in [0u64, 1, 7, 0b10_11_01_10, 65_535] {
            let s = split_slices(v, 2, 8);
            assert_eq!(join_slices(&s, 2), v);
        }
        let s = split_slices(0xABCD, 4, 4);
        assert_eq!(s, vec![0xD, 0xC, 0xB, 0xA]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn split_overflow_panics() {
        let _ = split_slices(16, 2, 2);
    }

    #[test]
    fn twos_complement_bits_of_negative() {
        // -3 over 4 bits = 0b1101
        assert!(twos_complement_bit(-3, 4, 0));
        assert!(!twos_complement_bit(-3, 4, 1));
        assert!(twos_complement_bit(-3, 4, 2));
        assert!(twos_complement_bit(-3, 4, 3));
        // Reconstruct: 1 + 4 + 8(with weight -8) => 1+4-8 = -3
        let v: i64 = [0u32, 2].iter().map(|&b| 1i64 << b).sum::<i64>() - (1 << 3);
        assert_eq!(v, -3);
    }

    #[test]
    fn quantizer_is_monotone() {
        let q = Quantizer::new(6, 1.0).unwrap();
        let mut prev = i64::MIN;
        for i in -50..=50 {
            let cur = q.quantize(i as f64 / 50.0);
            assert!(cur >= prev);
            prev = cur;
        }
    }
}
