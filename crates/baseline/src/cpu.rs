//! Von Neumann CPU model (the paper's Fig 1 machine).
//!
//! A calibrated roofline core fed through the cache hierarchy: kernels are
//! limited by either peak FLOP rate or memory bandwidth, data pays
//! per-byte movement energy at the level that actually serves it, and the
//! socket burns static power for the whole duration. Dataflow graphs are
//! executed by pricing every operator's compute and *weight traffic* —
//! the traffic CIM eliminates by computing inside the memory.

use crate::cache::{CacheHierarchy, HierarchyStats, ServiceLevel};
use crate::cost::PlatformCost;
use cim_dataflow::graph::DataflowGraph;
use cim_sim::calib::cpu as cal;
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// Effective L3 streaming bandwidth, bytes/s (model parameter: roughly
/// 6× DRAM bandwidth on Skylake-class parts).
const L3_BW_BYTES: f64 = 400e9;

/// A multicore CPU socket.
///
/// # Examples
///
/// ```
/// use cim_baseline::cpu::CpuModel;
///
/// let cpu = CpuModel::new(20).unwrap();
/// // A bandwidth-bound kernel: 1 MFLOP over 64 MB of DRAM traffic.
/// let cost = cpu.run_kernel(1_000_000, 64_000_000, 0);
/// // 64 MB / 64 GB/s = 1 ms.
/// assert!((cost.latency.as_secs_f64() - 1e-3).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct CpuModel {
    cores: usize,
}

impl CpuModel {
    /// Creates a socket model using `cores` cores.
    ///
    /// Returns `None` if `cores` is zero or exceeds the calibrated socket
    /// core count.
    pub fn new(cores: usize) -> Option<Self> {
        if cores == 0 || cores > cal::CORES {
            return None;
        }
        Some(CpuModel { cores })
    }

    /// Cores in use.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Peak FLOP/s of the configured cores.
    pub fn peak_flops(&self) -> f64 {
        cal::FLOPS_PER_CORE * self.cores as f64
    }

    /// Runs an abstract kernel: `flops` of compute, `dram_bytes` streamed
    /// from DRAM, `l3_bytes` streamed from the last-level cache.
    ///
    /// Latency is the roofline max of the compute time and the two
    /// streaming times, plus one DRAM access latency of startup; energy
    /// prices each component and adds static power over the duration.
    pub fn run_kernel(&self, flops: u64, dram_bytes: u64, l3_bytes: u64) -> PlatformCost {
        let compute_s = flops as f64 / self.peak_flops();
        let dram_s = dram_bytes as f64 / cal::MEM_BW_BYTES;
        let l3_s = l3_bytes as f64 / L3_BW_BYTES;
        let startup = SimDuration::from_ps(cal::DRAM_LATENCY_PS);
        let latency = SimDuration::from_secs_f64(compute_s.max(dram_s).max(l3_s)) + startup;
        let mut energy = Energy::from_fj(
            flops * cal::ENERGY_PER_FLOP_FJ
                + dram_bytes * cal::ENERGY_PER_DRAM_BYTE_FJ
                + l3_bytes * cal::ENERGY_PER_L3_BYTE_FJ,
        );
        // Static socket power share for the active cores.
        let static_w = cal::STATIC_W * self.cores as f64 / cal::CORES as f64;
        energy += Energy::from_joules(static_w * latency.as_secs_f64());
        PlatformCost { latency, energy }
    }

    /// Executes a dataflow graph `batch` times, pricing weight traffic
    /// through the memory system.
    ///
    /// The first activation streams all stationary state (weights) from
    /// DRAM; later activations stream it from L3 when it fits there, else
    /// from DRAM again — the crossover that makes small models CPU-friendly
    /// and large models bandwidth-starved.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run_graph(&self, graph: &DataflowGraph, batch: usize) -> PlatformCost {
        assert!(batch > 0, "batch must be positive");
        let m = graph.metrics();
        let weights_fit_l3 = (m.state_bytes as usize) <= cal::L3_BYTES * self.cores;
        // First activation: weights from DRAM; activations stream through
        // the cache (priced as L3 traffic).
        let mut total = self.run_kernel(m.total_flops, m.state_bytes, m.edge_bytes);
        for _ in 1..batch {
            let cost = if weights_fit_l3 {
                self.run_kernel(m.total_flops, 0, m.state_bytes + m.edge_bytes)
            } else {
                self.run_kernel(m.total_flops, m.state_bytes, m.edge_bytes)
            };
            total = total.then(cost);
        }
        total
    }

    /// Replays an address trace through a fresh cache hierarchy and prices
    /// it; returns the cost and the hierarchy statistics. Each address is
    /// one 8-byte access.
    pub fn run_trace(&self, addrs: &[u64]) -> (PlatformCost, HierarchyStats) {
        let (cost, stats, _) = self.run_trace_with_dram(addrs);
        (cost, stats)
    }

    /// Like [`run_trace`](Self::run_trace), but also returns the DRAM
    /// channel's row-buffer statistics. Cache-missing accesses are priced
    /// by the bank/row-buffer model in [`crate::dram`], so sequential
    /// sweeps stream at row-hit latency while pointer chases pay
    /// precharge + activate on nearly every access.
    pub fn run_trace_with_dram(
        &self,
        addrs: &[u64],
    ) -> (PlatformCost, HierarchyStats, crate::dram::DramStats) {
        let mut h = CacheHierarchy::new();
        let mut dram = crate::dram::DramChannel::new(crate::dram::DramConfig::default())
            .expect("default DRAM geometry is valid");
        let mut latency = SimDuration::ZERO;
        let mut energy = Energy::ZERO;
        // Model an out-of-order window: up to `overlap` accesses overlap,
        // so each access contributes 1/overlap of its latency.
        let overlap = 10u64;
        for &a in addrs {
            let level = h.access(a);
            match level {
                ServiceLevel::Dram => {
                    // A miss fills one cache line from the channel.
                    let (_, lat, e) = dram.access(a, cal::LINE_BYTES);
                    latency += lat / overlap;
                    energy += e;
                }
                _ => {
                    latency += CacheHierarchy::latency(level) / overlap;
                    energy += CacheHierarchy::line_energy(level);
                }
            }
        }
        let static_w = cal::STATIC_W * self.cores as f64 / cal::CORES as f64;
        energy += Energy::from_joules(static_w * latency.as_secs_f64());
        (PlatformCost { latency, energy }, h.stats(), dram.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::Operation;

    fn mlp_graph(dim: usize) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let src = b.add("in", Operation::Source { width: dim });
        let mv = b.add(
            "fc",
            Operation::MatVec {
                rows: dim,
                cols: dim,
                weights: vec![0.01; dim * dim],
            },
        );
        let out = b.add("out", Operation::Sink { width: dim });
        b.chain(&[src, mv, out]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn new_validates_core_count() {
        assert!(CpuModel::new(0).is_none());
        assert!(CpuModel::new(cal::CORES + 1).is_none());
        assert!(CpuModel::new(1).is_some());
    }

    #[test]
    fn compute_bound_kernel_scales_with_cores() {
        let one = CpuModel::new(1).unwrap();
        let twenty = CpuModel::new(20).unwrap();
        let flops = 10_000_000_000; // 10 GFLOP, no memory traffic
        let t1 = one.run_kernel(flops, 0, 0).latency;
        let t20 = twenty.run_kernel(flops, 0, 0).latency;
        let speedup = t1.as_secs_f64() / t20.as_secs_f64();
        assert!(
            speedup > 15.0,
            "near-linear scaling expected, got {speedup}"
        );
    }

    #[test]
    fn bandwidth_bound_kernel_does_not_scale() {
        let one = CpuModel::new(1).unwrap();
        let twenty = CpuModel::new(20).unwrap();
        let bytes = 1_000_000_000;
        let t1 = one.run_kernel(1000, bytes, 0).latency;
        let t20 = twenty.run_kernel(1000, bytes, 0).latency;
        let ratio = t1.as_secs_f64() / t20.as_secs_f64();
        assert!(ratio < 1.05, "shared memory bus: no scaling, got {ratio}");
    }

    #[test]
    fn small_model_batch_benefits_from_l3_residency() {
        let cpu = CpuModel::new(20).unwrap();
        let g = mlp_graph(256); // 512 KiB of weights: fits in L3
        let single = cpu.run_graph(&g, 1);
        let batch8 = cpu.run_graph(&g, 8);
        let per_item = batch8.latency.as_secs_f64() / 8.0;
        assert!(
            per_item < single.latency.as_secs_f64(),
            "warm weights should be cheaper per item"
        );
    }

    #[test]
    fn large_model_stays_dram_bound() {
        let cpu = CpuModel::new(20).unwrap();
        let g = mlp_graph(2048); // 32 MiB of weights: exceeds L3
        let single = cpu.run_graph(&g, 1).latency.as_secs_f64();
        let batch4 = cpu.run_graph(&g, 4).latency.as_secs_f64();
        assert!(
            batch4 / single > 3.5,
            "no warm-cache benefit for oversized weights: {}",
            batch4 / single
        );
    }

    #[test]
    fn energy_includes_static_share() {
        let cpu = CpuModel::new(20).unwrap();
        // A pure-latency kernel (no flops, no bytes) still burns static power.
        let c = cpu.run_kernel(0, 0, 0);
        assert!(c.energy.as_fj() > 0);
    }

    #[test]
    fn trace_replay_distinguishes_locality() {
        let cpu = CpuModel::new(1).unwrap();
        // Hot loop over 4 KiB vs. random sweep over 64 MiB.
        let hot: Vec<u64> = (0..10_000).map(|i| (i % 512) * 8).collect();
        let cold: Vec<u64> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (64 << 20))
            .collect();
        let (hot_cost, hot_stats) = cpu.run_trace(&hot);
        let (cold_cost, cold_stats) = cpu.run_trace(&cold);
        assert!(hot_stats.l1_hits > hot_stats.dram_accesses * 10);
        assert!(cold_stats.dram_accesses > cold_stats.l1_hits);
        assert!(cold_cost.latency > hot_cost.latency * 2);
        assert!(cold_cost.energy > hot_cost.energy);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let cpu = CpuModel::new(1).unwrap();
        cpu.run_graph(&mlp_graph(8), 0);
    }
}
