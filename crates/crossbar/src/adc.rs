//! Analog-to-digital converter model.
//!
//! The ADC is the precision and throughput bottleneck of an analog
//! dot-product engine: a column sum over 128 rows of 2-bit cells can take
//! 128 × 3 = 384 distinct values, but an 8-bit ADC resolves only 256 codes.
//! The engine therefore trades accuracy against ADC cost — the ABL-ADC
//! ablation sweeps this knob. ADC energy grows roughly 4× per extra bit
//! (Murmann's ADC survey), which the energy model reflects.

use cim_sim::calib::dpe;
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// A successive-approximation ADC digitizing column currents.
///
/// # Examples
///
/// ```
/// use cim_crossbar::adc::Adc;
///
/// let adc = Adc::new(8, 384.0).unwrap();
/// assert_eq!(adc.convert(0.0), 0);
/// assert_eq!(adc.convert(384.0), 255);
/// // Mid-scale value maps near mid-code.
/// let mid = adc.convert(192.0);
/// assert!((127..=128).contains(&mid));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates an ADC with the given resolution over `[0, full_scale]`.
    ///
    /// Returns `None` if `bits` is not in `1..=16` or `full_scale` is not
    /// strictly positive and finite.
    pub fn new(bits: u32, full_scale: f64) -> Option<Self> {
        if !(1..=16).contains(&bits) || !full_scale.is_finite() || full_scale <= 0.0 {
            return None;
        }
        Some(Adc { bits, full_scale })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of output codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// Full-scale input value.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// The analog value of one code step.
    pub fn lsb(&self) -> f64 {
        self.full_scale / (self.codes() - 1) as f64
    }

    /// Digitizes an analog value, clamping to the input range.
    pub fn convert(&self, analog: f64) -> u32 {
        let clamped = analog.clamp(0.0, self.full_scale);
        (clamped / self.lsb()).round() as u32
    }

    /// Maps a code back to its analog reconstruction value.
    pub fn reconstruct(&self, code: u32) -> f64 {
        f64::from(code.min(self.codes() - 1)) * self.lsb()
    }

    /// Time for one conversion at the calibrated sample rate. The rate is
    /// taken for an 8-bit SAR design; each extra bit costs one extra
    /// compare cycle (rate scales as 8/bits relative to the baseline).
    pub fn conversion_time(&self) -> SimDuration {
        let base_ps = 1e12 / dpe::ADC_SAMPLE_HZ;
        SimDuration::from_ps((base_ps * self.bits as f64 / 8.0).round() as u64)
    }

    /// Energy of one conversion; scales ~4× per bit past the calibrated
    /// 8-bit design point (and down likewise).
    pub fn conversion_energy(&self) -> Energy {
        let scale = 4.0f64.powi(self.bits as i32 - 8);
        Energy::from_fj((dpe::ADC_CONVERT_FJ as f64 * scale).round().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Adc::new(0, 1.0).is_none());
        assert!(Adc::new(17, 1.0).is_none());
        assert!(Adc::new(8, 0.0).is_none());
        assert!(Adc::new(8, f64::INFINITY).is_none());
    }

    #[test]
    fn convert_clamps_out_of_range() {
        let adc = Adc::new(4, 15.0).unwrap();
        assert_eq!(adc.convert(-5.0), 0);
        assert_eq!(adc.convert(100.0), 15);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = Adc::new(8, 384.0).unwrap();
        for i in 0..=384 {
            let x = i as f64;
            let err = (adc.reconstruct(adc.convert(x)) - x).abs();
            assert!(err <= adc.lsb() / 2.0 + 1e-9, "x={x} err={err}");
        }
    }

    #[test]
    fn lossless_when_codes_cover_integer_range() {
        // 9-bit ADC over 0..=384 has 512 codes for 385 integers — but codes
        // are evenly spaced over the range, so exact representability needs
        // full_scale == codes-1 scale alignment. Use full_scale = 511.
        let adc = Adc::new(9, 511.0).unwrap();
        for i in 0..=511u32 {
            assert_eq!(adc.convert(f64::from(i)), i);
            assert_eq!(adc.reconstruct(i), f64::from(i));
        }
    }

    #[test]
    fn energy_scales_4x_per_bit() {
        let e8 = Adc::new(8, 1.0).unwrap().conversion_energy().as_fj();
        let e9 = Adc::new(9, 1.0).unwrap().conversion_energy().as_fj();
        let e7 = Adc::new(7, 1.0).unwrap().conversion_energy().as_fj();
        assert_eq!(e9, e8 * 4);
        assert_eq!(e7, e8 / 4);
    }

    #[test]
    fn conversion_time_grows_with_bits() {
        let t8 = Adc::new(8, 1.0).unwrap().conversion_time();
        let t12 = Adc::new(12, 1.0).unwrap().conversion_time();
        assert!(t12 > t8);
        // 8-bit baseline matches the calibrated 1.28 GSa/s.
        assert_eq!(t8.as_ps(), 781);
    }

    #[test]
    fn reconstruct_clamps_code() {
        let adc = Adc::new(4, 15.0).unwrap();
        assert_eq!(adc.reconstruct(10_000), 15.0);
    }
}
