//! ABL-DAC: input DAC digit width vs latency/energy/accuracy.
fn main() {
    let points = cim_bench::experiments::ablations::run_dac(&[1, 2, 4]);
    print!("{}", cim_bench::experiments::ablations::render_dac(&points));
}
