//! Integration tests for the telemetry tentpole: the JSON-lines export
//! must be deterministic (byte-identical across same-seed runs) and
//! every exported line must satisfy the in-tree schema validator.

use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::sim::telemetry::{validate_jsonl_line, TelemetryLevel};
use cim::sim::SeedTree;
use cim::workloads::nn::{mlp_graph, random_inputs};
use std::collections::HashMap;

/// Run one small end-to-end workload on a fresh device and return the
/// telemetry export.
fn run_once(seed: u64, level: TelemetryLevel) -> String {
    let mut device = CimDevice::new(FabricConfig::default()).unwrap();
    let tel = device.enable_telemetry(level);
    let seeds = SeedTree::new(seed);
    let (graph, src, _sink) = mlp_graph(&[64, 32, 10], seeds);
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .unwrap();
    let inputs: Vec<_> = random_inputs(4, 64, seeds.child("x"))
        .into_iter()
        .map(|x| HashMap::from([(src, x)]))
        .collect();
    device
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .unwrap();
    tel.export_jsonl()
}

#[test]
fn export_is_byte_identical_across_same_seed_runs() {
    let a = run_once(7, TelemetryLevel::Metrics);
    let b = run_once(7, TelemetryLevel::Metrics);
    assert!(!a.is_empty(), "an instrumented run must export metrics");
    assert_eq!(a, b, "same seed, same device, same workload => same bytes");
}

#[test]
fn export_lines_all_pass_the_schema_validator() {
    let text = run_once(11, TelemetryLevel::Full);
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        lines += 1;
    }
    assert!(lines > 16, "a full run should export many metric lines");
}

#[test]
fn disabled_telemetry_exports_nothing() {
    let mut device = CimDevice::new(FabricConfig::default()).unwrap();
    let tel = device.telemetry().clone();
    assert!(!tel.is_enabled());
    let seeds = SeedTree::new(3);
    let (graph, src, _sink) = mlp_graph(&[64, 32, 10], seeds);
    let mut prog = device
        .load_program(&graph, MappingPolicy::LocalityAware)
        .unwrap();
    let inputs = vec![HashMap::from([(src, vec![0.25; 64])])];
    device
        .execute_stream(&mut prog, &inputs, &StreamOptions::default())
        .unwrap();
    assert!(tel.export_jsonl().is_empty());
    assert!(tel.snapshot().is_empty());
}
