//! Chaos schedules: the shrinkable fault-event grammar.
//!
//! A schedule is plain data — flat `Copy` events with picosecond
//! timestamps plus two pressure knobs — deliberately decoupled from
//! `cim_fabric`'s [`ServiceEvent`] so it can implement the in-tree
//! [`Shrink`] trait (the orphan rule forbids implementing `cim_sim`'s
//! trait for `cim_fabric`'s type) and serialize to one JSON line per
//! event. [`ChaosEvent::to_service_event`] lowers each event onto the
//! fabric's injection machinery at run time.

use cim_fabric::engine::InjectionKind;
use cim_fabric::fleet::FleetEvent;
use cim_fabric::service::ServiceEvent;
use cim_noc::packet::NodeId;
use cim_sim::prop::Shrink;
use cim_sim::time::SimTime;

/// One layer-spanning fault action, with all coordinates flattened to
/// integers so the whole event is `Copy + Eq` and trivially shrinkable
/// and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Hard-fail micro-unit `unit` (out-of-range indices are ignored by
    /// the fabric — shrinking stays safe).
    FailUnit {
        /// Linear unit index.
        unit: u16,
    },
    /// Return micro-unit `unit` to service.
    RepairUnit {
        /// Linear unit index.
        unit: u16,
    },
    /// Sever the mesh link between `(ax, ay)` and `(bx, by)`. Arbitrary
    /// pairs are accepted (non-adjacent pairs are no-ops in the mesh's
    /// failed-link set), so shrunken coordinates never panic.
    FailLink {
        /// Endpoint A, x coordinate.
        ax: u16,
        /// Endpoint A, y coordinate.
        ay: u16,
        /// Endpoint B, x coordinate.
        bx: u16,
        /// Endpoint B, y coordinate.
        by: u16,
    },
    /// Restore the link between `(ax, ay)` and `(bx, by)`.
    RepairLink {
        /// Endpoint A, x coordinate.
        ax: u16,
        /// Endpoint A, y coordinate.
        ay: u16,
        /// Endpoint B, x coordinate.
        bx: u16,
        /// Endpoint B, y coordinate.
        by: u16,
    },
    /// Inject stuck-at cell faults into unit `unit`'s crossbars at
    /// `rate_ppm` parts-per-million, `stuck_on_ppm` of them stuck-on,
    /// seeded by `seed` (kept in `u32` so every serialized value is an
    /// exact JSON number).
    CellFaults {
        /// Linear unit index.
        unit: u16,
        /// Cell fault rate, parts per million.
        rate_ppm: u32,
        /// Stuck-on fraction of faulty cells, parts per million.
        stuck_on_ppm: u32,
        /// Seed for the deterministic fault pattern.
        seed: u32,
    },
    /// Age unit `unit`'s crossbars by a sudden conductance drift of
    /// `drift_ppm` parts-per-million.
    DriftSpike {
        /// Linear unit index.
        unit: u16,
        /// Drift magnitude, parts per million.
        drift_ppm: u32,
    },
    /// Flood the route `(ax, ay) → (bx, by)` with `packets` best-effort
    /// packets of `bytes` bytes each, congesting shared links.
    Congestion {
        /// Source node, x coordinate.
        ax: u16,
        /// Source node, y coordinate.
        ay: u16,
        /// Destination node, x coordinate.
        bx: u16,
        /// Destination node, y coordinate.
        by: u16,
        /// Number of flood packets.
        packets: u16,
        /// Payload size per packet, bytes.
        bytes: u16,
    },
    /// Service-layer arrival burst: the next `extra` open-loop arrivals
    /// after this instant land back-to-back, hammering admission.
    ArrivalBurst {
        /// Simultaneous arrivals beyond the first.
        extra: u16,
    },
    /// Whole-device outage (fleet runs only): device `device` is fenced
    /// from routing and every request caught on it fails over. On a
    /// single-device harness this action does not lower (no service
    /// event), so shrunk single-device schedules stay runnable.
    DeviceDown {
        /// Fleet device index.
        device: u16,
    },
    /// The device returns to service and rejoins routing.
    DeviceUp {
        /// Fleet device index.
        device: u16,
    },
    /// Power loss: device `device` crashes, losing all volatile state;
    /// `restart_after_ps` later it reboots through the persistence
    /// layer's recovery pass (nonvolatile conductances and resident
    /// programs survive). On a single-device harness the device index
    /// is ignored — the one device crashes.
    PowerLoss {
        /// Fleet device index (ignored on single-device runs).
        device: u16,
        /// Outage duration, picoseconds.
        restart_after_ps: u32,
    },
    /// Adversarial (armed runs only): the compromised tile fabricates a
    /// capability token for `unit` and presents a stolen one
    /// cross-domain. The authority must refuse both.
    ForgeToken {
        /// Linear unit index the forged capability claims.
        unit: u16,
    },
    /// Adversarial: a captured capability token for `unit` is replayed
    /// `age_ps` after issue — refused as replayed or (past the TTL)
    /// expired.
    ReplayToken {
        /// Linear unit index the token covers.
        unit: u16,
        /// Capture-to-replay delay, picoseconds.
        age_ps: u32,
    },
    /// Adversarial: cross-partition packet injection plus exfiltration
    /// against victim tile `(vx, vy)` — `packets` rounds of `bytes`-byte
    /// probes in each direction across the domain boundary.
    CrossPartitionScan {
        /// Victim tile, x coordinate.
        vx: u16,
        /// Victim tile, y coordinate.
        vy: u16,
        /// Rounds of inject + exfiltrate probes.
        packets: u16,
        /// Probe payload size, bytes.
        bytes: u16,
    },
    /// Adversarial: a hostile self-programming patch assembled on the
    /// compromised tile and launched at a victim tile as a code packet.
    HostileSelfProg {
        /// Seed for the patch parameters and target tile.
        seed: u32,
    },
    /// Adversarial: a hostile dataflow scanner program run on the
    /// compromised tile, probing every mesh neighbour partition.
    HostileDataflow {
        /// Seed for the scanner program parameters.
        seed: u32,
    },
}

impl ChaosAction {
    /// Short stable identifier used in replay files and labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ChaosAction::FailUnit { .. } => "fail_unit",
            ChaosAction::RepairUnit { .. } => "repair_unit",
            ChaosAction::FailLink { .. } => "fail_link",
            ChaosAction::RepairLink { .. } => "repair_link",
            ChaosAction::CellFaults { .. } => "cell_faults",
            ChaosAction::DriftSpike { .. } => "drift_spike",
            ChaosAction::Congestion { .. } => "congestion",
            ChaosAction::ArrivalBurst { .. } => "arrival_burst",
            ChaosAction::DeviceDown { .. } => "device_down",
            ChaosAction::DeviceUp { .. } => "device_up",
            ChaosAction::PowerLoss { .. } => "power_loss",
            ChaosAction::ForgeToken { .. } => "forge_token",
            ChaosAction::ReplayToken { .. } => "replay_token",
            ChaosAction::CrossPartitionScan { .. } => "cross_partition_scan",
            ChaosAction::HostileSelfProg { .. } => "hostile_self_prog",
            ChaosAction::HostileDataflow { .. } => "hostile_dataflow",
        }
    }

    /// Whether this action can make requests *fail* outright (as opposed
    /// to merely degrading latency or accuracy). Used by the
    /// no-hard-fault conservation invariant. Adversarial actions are
    /// deliberately *not* hard faults: a contained attack must not fail
    /// a single innocent request.
    pub fn is_hard_fault(&self) -> bool {
        matches!(
            self,
            ChaosAction::FailUnit { .. }
                | ChaosAction::FailLink { .. }
                | ChaosAction::DeviceDown { .. }
                | ChaosAction::PowerLoss { .. }
        )
    }

    /// Whether this is one of the adversarial attack actions — such
    /// schedules are held to the `iso_*` containment invariants.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            ChaosAction::ForgeToken { .. }
                | ChaosAction::ReplayToken { .. }
                | ChaosAction::CrossPartitionScan { .. }
                | ChaosAction::HostileSelfProg { .. }
                | ChaosAction::HostileDataflow { .. }
        )
    }
}

/// Shrinking an action reduces its numeric fields toward zero but never
/// changes its kind: a minimal reproducer should keep the *shape* of
/// the failure while shedding incidental magnitude.
impl Shrink for ChaosAction {
    fn shrink_candidates(&self) -> Vec<Self> {
        match *self {
            ChaosAction::FailUnit { unit } => unit
                .shrink_candidates()
                .into_iter()
                .map(|unit| ChaosAction::FailUnit { unit })
                .collect(),
            ChaosAction::RepairUnit { unit } => unit
                .shrink_candidates()
                .into_iter()
                .map(|unit| ChaosAction::RepairUnit { unit })
                .collect(),
            ChaosAction::FailLink { ax, ay, bx, by } => shrink4(ax, ay, bx, by)
                .into_iter()
                .map(|(ax, ay, bx, by)| ChaosAction::FailLink { ax, ay, bx, by })
                .collect(),
            ChaosAction::RepairLink { ax, ay, bx, by } => shrink4(ax, ay, bx, by)
                .into_iter()
                .map(|(ax, ay, bx, by)| ChaosAction::RepairLink { ax, ay, bx, by })
                .collect(),
            ChaosAction::CellFaults {
                unit,
                rate_ppm,
                stuck_on_ppm,
                seed,
            } => {
                let mut out = Vec::new();
                for u in unit.shrink_candidates() {
                    out.push(ChaosAction::CellFaults {
                        unit: u,
                        rate_ppm,
                        stuck_on_ppm,
                        seed,
                    });
                }
                for r in rate_ppm.shrink_candidates() {
                    out.push(ChaosAction::CellFaults {
                        unit,
                        rate_ppm: r,
                        stuck_on_ppm,
                        seed,
                    });
                }
                for s in stuck_on_ppm.shrink_candidates() {
                    out.push(ChaosAction::CellFaults {
                        unit,
                        rate_ppm,
                        stuck_on_ppm: s,
                        seed,
                    });
                }
                out
            }
            ChaosAction::DriftSpike { unit, drift_ppm } => {
                let mut out = Vec::new();
                for u in unit.shrink_candidates() {
                    out.push(ChaosAction::DriftSpike { unit: u, drift_ppm });
                }
                for d in drift_ppm.shrink_candidates() {
                    out.push(ChaosAction::DriftSpike { unit, drift_ppm: d });
                }
                out
            }
            ChaosAction::Congestion {
                ax,
                ay,
                bx,
                by,
                packets,
                bytes,
            } => {
                let mut out = Vec::new();
                for p in packets.shrink_candidates() {
                    out.push(ChaosAction::Congestion {
                        ax,
                        ay,
                        bx,
                        by,
                        packets: p,
                        bytes,
                    });
                }
                for b in bytes.shrink_candidates() {
                    out.push(ChaosAction::Congestion {
                        ax,
                        ay,
                        bx,
                        by,
                        packets,
                        bytes: b,
                    });
                }
                for (ax, ay, bx, by) in shrink4(ax, ay, bx, by) {
                    out.push(ChaosAction::Congestion {
                        ax,
                        ay,
                        bx,
                        by,
                        packets,
                        bytes,
                    });
                }
                out
            }
            ChaosAction::ArrivalBurst { extra } => extra
                .shrink_candidates()
                .into_iter()
                .map(|extra| ChaosAction::ArrivalBurst { extra })
                .collect(),
            ChaosAction::DeviceDown { device } => device
                .shrink_candidates()
                .into_iter()
                .map(|device| ChaosAction::DeviceDown { device })
                .collect(),
            ChaosAction::DeviceUp { device } => device
                .shrink_candidates()
                .into_iter()
                .map(|device| ChaosAction::DeviceUp { device })
                .collect(),
            ChaosAction::PowerLoss {
                device,
                restart_after_ps,
            } => {
                let mut out = Vec::new();
                for d in device.shrink_candidates() {
                    out.push(ChaosAction::PowerLoss {
                        device: d,
                        restart_after_ps,
                    });
                }
                for r in restart_after_ps.shrink_candidates() {
                    out.push(ChaosAction::PowerLoss {
                        device,
                        restart_after_ps: r,
                    });
                }
                out
            }
            ChaosAction::ForgeToken { unit } => unit
                .shrink_candidates()
                .into_iter()
                .map(|unit| ChaosAction::ForgeToken { unit })
                .collect(),
            ChaosAction::ReplayToken { unit, age_ps } => {
                let mut out = Vec::new();
                for u in unit.shrink_candidates() {
                    out.push(ChaosAction::ReplayToken { unit: u, age_ps });
                }
                for a in age_ps.shrink_candidates() {
                    out.push(ChaosAction::ReplayToken { unit, age_ps: a });
                }
                out
            }
            ChaosAction::CrossPartitionScan {
                vx,
                vy,
                packets,
                bytes,
            } => {
                let mut out = Vec::new();
                for v in vx.shrink_candidates() {
                    out.push(ChaosAction::CrossPartitionScan {
                        vx: v,
                        vy,
                        packets,
                        bytes,
                    });
                }
                for v in vy.shrink_candidates() {
                    out.push(ChaosAction::CrossPartitionScan {
                        vx,
                        vy: v,
                        packets,
                        bytes,
                    });
                }
                for p in packets.shrink_candidates() {
                    out.push(ChaosAction::CrossPartitionScan {
                        vx,
                        vy,
                        packets: p,
                        bytes,
                    });
                }
                for b in bytes.shrink_candidates() {
                    out.push(ChaosAction::CrossPartitionScan {
                        vx,
                        vy,
                        packets,
                        bytes: b,
                    });
                }
                out
            }
            ChaosAction::HostileSelfProg { seed } => seed
                .shrink_candidates()
                .into_iter()
                .map(|seed| ChaosAction::HostileSelfProg { seed })
                .collect(),
            ChaosAction::HostileDataflow { seed } => seed
                .shrink_candidates()
                .into_iter()
                .map(|seed| ChaosAction::HostileDataflow { seed })
                .collect(),
        }
    }
}

/// Shrink one coordinate of a 4-tuple at a time.
fn shrink4(ax: u16, ay: u16, bx: u16, by: u16) -> Vec<(u16, u16, u16, u16)> {
    let mut out = Vec::new();
    for a in ax.shrink_candidates() {
        out.push((a, ay, bx, by));
    }
    for a in ay.shrink_candidates() {
        out.push((ax, a, bx, by));
    }
    for b in bx.shrink_candidates() {
        out.push((ax, ay, b, by));
    }
    for b in by.shrink_candidates() {
        out.push((ax, ay, bx, b));
    }
    out
}

/// One timed chaos event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Fire time, picoseconds of simulated time.
    pub at_ps: u64,
    /// What happens.
    pub action: ChaosAction,
}

impl ChaosEvent {
    /// Lowers this event to the service layer's event type. Fleet-only
    /// actions ([`ChaosAction::DeviceDown`]/[`ChaosAction::DeviceUp`])
    /// have no single-device equivalent and return `None`.
    pub fn to_service_event(&self) -> Option<ServiceEvent> {
        let at = SimTime::from_ps(self.at_ps);
        Some(match self.action {
            ChaosAction::FailUnit { unit } => ServiceEvent::FailUnit {
                at,
                unit: usize::from(unit),
            },
            ChaosAction::RepairUnit { unit } => ServiceEvent::RepairUnit {
                at,
                unit: usize::from(unit),
            },
            ChaosAction::FailLink { ax, ay, bx, by } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::FailLink {
                    a: NodeId { x: ax, y: ay },
                    b: NodeId { x: bx, y: by },
                },
            },
            ChaosAction::RepairLink { ax, ay, bx, by } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::RepairLink {
                    a: NodeId { x: ax, y: ay },
                    b: NodeId { x: bx, y: by },
                },
            },
            ChaosAction::CellFaults {
                unit,
                rate_ppm,
                stuck_on_ppm,
                seed,
            } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::CellFaults {
                    unit: usize::from(unit),
                    rate_ppm,
                    stuck_on_ppm,
                    seed: u64::from(seed),
                },
            },
            ChaosAction::DriftSpike { unit, drift_ppm } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::DriftSpike {
                    unit: usize::from(unit),
                    drift_ppm,
                },
            },
            ChaosAction::Congestion {
                ax,
                ay,
                bx,
                by,
                packets,
                bytes,
            } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::Congestion {
                    from: NodeId { x: ax, y: ay },
                    to: NodeId { x: bx, y: by },
                    packets,
                    bytes,
                },
            },
            ChaosAction::ArrivalBurst { extra } => ServiceEvent::ArrivalBurst { at, extra },
            ChaosAction::ForgeToken { unit } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::TokenForge {
                    unit: usize::from(unit),
                },
            },
            ChaosAction::ReplayToken { unit, age_ps } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::TokenReplay {
                    unit: usize::from(unit),
                    age_ps: u64::from(age_ps),
                },
            },
            ChaosAction::CrossPartitionScan {
                vx,
                vy,
                packets,
                bytes,
            } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::CrossPartitionScan {
                    victim: NodeId { x: vx, y: vy },
                    packets,
                    bytes,
                },
            },
            ChaosAction::HostileSelfProg { seed } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::HostileSelfProg {
                    seed: u64::from(seed),
                },
            },
            ChaosAction::HostileDataflow { seed } => ServiceEvent::Inject {
                at,
                kind: InjectionKind::HostileDataflow {
                    seed: u64::from(seed),
                },
            },
            // A single-device harness still crashes: the device index
            // is meaningless with one device, so it is ignored.
            ChaosAction::PowerLoss {
                restart_after_ps, ..
            } => ServiceEvent::PowerLoss {
                at,
                restart_after: cim_sim::time::SimDuration::from_ps(u64::from(restart_after_ps)),
            },
            ChaosAction::DeviceDown { .. } | ChaosAction::DeviceUp { .. } => return None,
        })
    }

    /// Lowers this event onto an `n_devices`-device fleet with
    /// `units_per_device` micro-units per device. Unit-indexed actions
    /// address the fleet's units linearly (`unit / units_per_device`
    /// picks the device, the remainder is the device-local unit), mesh
    /// coordinate actions hash their coordinates onto a device, and
    /// device actions clamp the index modulo the fleet — so arbitrary
    /// shrunk values always lower to something runnable.
    pub fn to_fleet_event(&self, n_devices: usize, units_per_device: usize) -> FleetEvent {
        let at = SimTime::from_ps(self.at_ps);
        let n = n_devices.max(1);
        let per = units_per_device.max(1);
        let coord_device = |ax: u16, ay: u16, bx: u16, by: u16| {
            (usize::from(ax) + usize::from(ay) + usize::from(bx) + usize::from(by)) % n
        };
        // Unit-indexed actions: split the linear fleet index into a
        // device and a device-local unit, then reuse the single-device
        // lowering on the localized action.
        let localize = |unit: u16, rewrite: &dyn Fn(u16) -> ChaosAction| -> FleetEvent {
            let device = (usize::from(unit) / per) % n;
            let local = (usize::from(unit) % per) as u16;
            let event = ChaosEvent {
                at_ps: self.at_ps,
                action: rewrite(local),
            }
            .to_service_event()
            .expect("unit-indexed actions always lower");
            FleetEvent::Device { device, event }
        };
        match self.action {
            ChaosAction::DeviceDown { device } => FleetEvent::DeviceDown {
                at,
                device: usize::from(device) % n,
            },
            ChaosAction::DeviceUp { device } => FleetEvent::DeviceUp {
                at,
                device: usize::from(device) % n,
            },
            ChaosAction::PowerLoss {
                device,
                restart_after_ps,
            } => FleetEvent::PowerLoss {
                at,
                device: usize::from(device) % n,
                restart_after: cim_sim::time::SimDuration::from_ps(u64::from(restart_after_ps)),
            },
            ChaosAction::FailUnit { unit } => {
                localize(unit, &|unit| ChaosAction::FailUnit { unit })
            }
            ChaosAction::RepairUnit { unit } => {
                localize(unit, &|unit| ChaosAction::RepairUnit { unit })
            }
            ChaosAction::CellFaults {
                unit,
                rate_ppm,
                stuck_on_ppm,
                seed,
            } => localize(unit, &|unit| ChaosAction::CellFaults {
                unit,
                rate_ppm,
                stuck_on_ppm,
                seed,
            }),
            ChaosAction::DriftSpike { unit, drift_ppm } => {
                localize(unit, &|unit| ChaosAction::DriftSpike { unit, drift_ppm })
            }
            ChaosAction::FailLink { ax, ay, bx, by }
            | ChaosAction::RepairLink { ax, ay, bx, by } => FleetEvent::Device {
                device: coord_device(ax, ay, bx, by),
                event: self.to_service_event().expect("link actions lower"),
            },
            ChaosAction::Congestion { ax, ay, bx, by, .. } => FleetEvent::Device {
                device: coord_device(ax, ay, bx, by),
                event: self.to_service_event().expect("congestion lowers"),
            },
            ChaosAction::ArrivalBurst { extra } => FleetEvent::ArrivalBurst { at, extra },
            ChaosAction::ForgeToken { unit } => {
                localize(unit, &|unit| ChaosAction::ForgeToken { unit })
            }
            ChaosAction::ReplayToken { unit, age_ps } => {
                localize(unit, &|unit| ChaosAction::ReplayToken { unit, age_ps })
            }
            ChaosAction::CrossPartitionScan { vx, vy, .. } => FleetEvent::Device {
                device: coord_device(vx, vy, 0, 0),
                event: self.to_service_event().expect("scan actions lower"),
            },
            ChaosAction::HostileSelfProg { seed } | ChaosAction::HostileDataflow { seed } => {
                FleetEvent::Device {
                    device: seed as usize % n,
                    event: self.to_service_event().expect("hostile programs lower"),
                }
            }
        }
    }
}

/// Shrink an event by pulling its time toward zero or simplifying its
/// action — one axis at a time, so each candidate is strictly smaller.
impl Shrink for ChaosEvent {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for at_ps in self.at_ps.shrink_candidates() {
            out.push(ChaosEvent {
                at_ps,
                action: self.action,
            });
        }
        for action in self.action.shrink_candidates() {
            out.push(ChaosEvent {
                at_ps: self.at_ps,
                action,
            });
        }
        out
    }
}

/// Service-pressure knobs generated alongside the fault events.
///
/// Integers (not floats) so the schedule stays `Eq` and exactly
/// serializable: `rate_x1000` is the offered arrival rate in
/// milli-hertz-per-hertz units (`rate_hz = rate_x1000 / 1000 × base`),
/// `deadline_div` divides the configured base deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pressure {
    /// Offered-rate multiplier, thousandths (1000 = the config's base
    /// rate; 4000 = 4× overload).
    pub rate_x1000: u32,
    /// Deadline divisor (1 = the config's base deadline; 4 = 4× tighter).
    pub deadline_div: u32,
}

impl Default for Pressure {
    fn default() -> Self {
        Pressure {
            rate_x1000: 1000,
            deadline_div: 1,
        }
    }
}

impl Pressure {
    /// Effective offered rate for a configured base rate.
    pub fn rate_hz(&self, base_hz: f64) -> f64 {
        let x = self.rate_x1000.max(1);
        base_hz * f64::from(x) / 1000.0
    }

    /// Effective deadline for a configured base deadline.
    pub fn deadline(&self, base: cim_sim::time::SimDuration) -> cim_sim::time::SimDuration {
        base / u64::from(self.deadline_div.max(1))
    }
}

/// Shrinking pressure relaxes it toward the defaults (rate down to
/// 1000, divisor down to 1) — a minimal reproducer should need as
/// little overload as possible.
impl Shrink for Pressure {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.rate_x1000 > 1000 {
            out.push(Pressure {
                rate_x1000: 1000,
                ..*self
            });
            let half = (self.rate_x1000 / 2).max(1000);
            if half != 1000 {
                out.push(Pressure {
                    rate_x1000: half,
                    ..*self
                });
            }
        }
        if self.deadline_div > 1 {
            out.push(Pressure {
                deadline_div: 1,
                ..*self
            });
            let half = (self.deadline_div / 2).max(1);
            if half != 1 {
                out.push(Pressure {
                    deadline_div: half,
                    ..*self
                });
            }
        }
        out
    }
}

/// A complete chaos schedule: what to inject, when, and under how much
/// service pressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Load/deadline pressure for the serving run.
    pub pressure: Pressure,
    /// Fault events, kept sorted by [`ChaosEvent::at_ps`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// An empty schedule at default pressure (the shrinker's floor).
    pub fn empty() -> Self {
        ChaosSchedule {
            pressure: Pressure::default(),
            events: Vec::new(),
        }
    }

    /// Lowers the whole schedule to service events, sorted by time.
    /// Fleet-only actions (device outages) are dropped — they have no
    /// single-device meaning.
    pub fn to_service_events(&self) -> Vec<ServiceEvent> {
        let mut evs: Vec<ServiceEvent> = self
            .events
            .iter()
            .filter_map(ChaosEvent::to_service_event)
            .collect();
        evs.sort_by_key(ServiceEvent::at);
        evs
    }

    /// Lowers the whole schedule onto an `n_devices` fleet, sorted by
    /// time (see [`ChaosEvent::to_fleet_event`]).
    pub fn to_fleet_events(&self, n_devices: usize, units_per_device: usize) -> Vec<FleetEvent> {
        let mut evs: Vec<FleetEvent> = self
            .events
            .iter()
            .map(|e| e.to_fleet_event(n_devices, units_per_device))
            .collect();
        evs.sort_by_key(FleetEvent::at);
        evs
    }

    /// Whether any event can hard-fail requests (unit/link failures).
    pub fn has_hard_faults(&self) -> bool {
        self.events.iter().any(|e| e.action.is_hard_fault())
    }

    /// Whether any event is a power loss — such schedules are held to
    /// the crash-recovery contract's invariants.
    pub fn has_power_loss(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::PowerLoss { .. }))
    }

    /// Whether any event is an adversarial attack — such schedules are
    /// held to the `iso_*` containment invariants.
    pub fn has_adversarial(&self) -> bool {
        self.events.iter().any(|e| e.action.is_adversarial())
    }
}

/// Shrink the event list (dropping/halving/simplifying events via the
/// `Vec` impl) and the pressure, one axis at a time. Event order within
/// the vector is preserved by every candidate, so lowering stays
/// deterministic.
impl Shrink for ChaosSchedule {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out: Vec<ChaosSchedule> = self
            .events
            .shrink_candidates()
            .into_iter()
            .map(|events| ChaosSchedule {
                pressure: self.pressure,
                events,
            })
            .collect();
        for pressure in self.pressure.shrink_candidates() {
            out.push(ChaosSchedule {
                pressure,
                events: self.events.clone(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_candidates_preserve_action_kind() {
        let ev = ChaosEvent {
            at_ps: 1_000_000,
            action: ChaosAction::CellFaults {
                unit: 3,
                rate_ppm: 500,
                stuck_on_ppm: 250,
                seed: 42,
            },
        };
        for cand in ev.shrink_candidates() {
            assert_eq!(cand.action.kind_name(), "cell_faults");
        }
    }

    #[test]
    fn power_loss_shrinks_kind_preserving_and_lowers_everywhere() {
        let ev = ChaosEvent {
            at_ps: 2_000_000,
            action: ChaosAction::PowerLoss {
                device: 3,
                restart_after_ps: 5_000_000,
            },
        };
        for cand in ev.shrink_candidates() {
            assert_eq!(cand.action.kind_name(), "power_loss");
        }
        assert!(ev.action.is_hard_fault());
        // Crashes lower on both harnesses: the single device crashes
        // (index ignored), the fleet clamps the index.
        match ev.to_service_event() {
            Some(ServiceEvent::PowerLoss { restart_after, .. }) => {
                assert_eq!(restart_after.as_ps(), 5_000_000);
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
        assert!(matches!(
            ev.to_fleet_event(2, 16),
            FleetEvent::PowerLoss { device: 1, .. }
        ));
        let sched = ChaosSchedule {
            pressure: Pressure::default(),
            events: vec![ev],
        };
        assert!(sched.has_power_loss());
        assert!(!ChaosSchedule::empty().has_power_loss());
    }

    #[test]
    fn adversarial_actions_shrink_kind_preserving_and_lower_everywhere() {
        let actions = [
            ChaosAction::ForgeToken { unit: 9 },
            ChaosAction::ReplayToken {
                unit: 9,
                age_ps: 60_000_000,
            },
            ChaosAction::CrossPartitionScan {
                vx: 3,
                vy: 1,
                packets: 4,
                bytes: 64,
            },
            ChaosAction::HostileSelfProg { seed: 7 },
            ChaosAction::HostileDataflow { seed: 7 },
        ];
        for action in actions {
            assert!(action.is_adversarial());
            assert!(
                !action.is_hard_fault(),
                "contained attacks never fail innocent requests"
            );
            let ev = ChaosEvent { at_ps: 5, action };
            for cand in ev.shrink_candidates() {
                assert_eq!(cand.action.kind_name(), action.kind_name());
            }
            assert!(ev.to_service_event().is_some(), "attacks lower everywhere");
            let _ = ev.to_fleet_event(4, 16);
        }
        // Unit-indexed attacks localize like any other unit action.
        let ev = ChaosEvent {
            at_ps: 5,
            action: ChaosAction::ForgeToken { unit: 21 },
        };
        match ev.to_fleet_event(4, 16) {
            FleetEvent::Device { device, .. } => assert_eq!(device, 1),
            other => panic!("unexpected lowering: {other:?}"),
        }
        let sched = ChaosSchedule {
            pressure: Pressure::default(),
            events: vec![ChaosEvent {
                at_ps: 5,
                action: ChaosAction::ForgeToken { unit: 0 },
            }],
        };
        assert!(sched.has_adversarial());
        assert!(!sched.has_hard_faults());
        assert!(!ChaosSchedule::empty().has_adversarial());
    }

    #[test]
    fn schedule_shrinks_toward_empty() {
        let sched = ChaosSchedule {
            pressure: Pressure {
                rate_x1000: 4000,
                deadline_div: 2,
            },
            events: vec![
                ChaosEvent {
                    at_ps: 10,
                    action: ChaosAction::FailUnit { unit: 1 },
                },
                ChaosEvent {
                    at_ps: 20,
                    action: ChaosAction::ArrivalBurst { extra: 8 },
                },
            ],
        };
        let cands = sched.shrink_candidates();
        assert!(cands.iter().any(|c| c.events.is_empty()));
        assert!(cands.iter().any(|c| c.pressure == Pressure::default()
            || c.pressure.rate_x1000 == 1000
            || c.pressure.deadline_div == 1));
    }

    #[test]
    fn lowering_is_sorted_and_total() {
        let sched = ChaosSchedule {
            pressure: Pressure::default(),
            events: vec![
                ChaosEvent {
                    at_ps: 500,
                    action: ChaosAction::Congestion {
                        ax: 0,
                        ay: 0,
                        bx: 1,
                        by: 0,
                        packets: 4,
                        bytes: 64,
                    },
                },
                ChaosEvent {
                    at_ps: 100,
                    action: ChaosAction::FailLink {
                        ax: 0,
                        ay: 0,
                        bx: 0,
                        by: 1,
                    },
                },
            ],
        };
        let evs = sched.to_service_events();
        assert_eq!(evs.len(), 2);
        assert!(evs.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn fleet_lowering_splits_units_and_clamps_devices() {
        // Linear unit 21 on 16-unit devices → device 1, local unit 5.
        let ev = ChaosEvent {
            at_ps: 7,
            action: ChaosAction::FailUnit { unit: 21 },
        };
        match ev.to_fleet_event(4, 16) {
            FleetEvent::Device {
                device,
                event: ServiceEvent::FailUnit { unit, .. },
            } => {
                assert_eq!(device, 1);
                assert_eq!(unit, 5);
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
        // Shrunk/arbitrary device indices clamp onto the fleet.
        let down = ChaosEvent {
            at_ps: 7,
            action: ChaosAction::DeviceDown { device: 9 },
        };
        assert!(matches!(
            down.to_fleet_event(4, 16),
            FleetEvent::DeviceDown { device: 1, .. }
        ));
        // Device outages have no single-device lowering.
        assert!(down.to_service_event().is_none());
        assert!(down.action.is_hard_fault());
    }
}
