//! A 2-D array of memristor cells with an analog read path.
//!
//! The array is the physical resource: it stores one conductance matrix and
//! performs one *read phase* at a time — all driven rows discharge into all
//! column sense lines simultaneously, which is where the O(rows×cols) MACs
//! per ~100 ns come from (paper §VI, ISAAC \[49\]).

use crate::device::{CellFault, DeviceParams, MemristorCell};
use crate::error::{CrossbarError, Result};
use cim_sim::calib::dpe;
use cim_sim::energy::Energy;
use cim_sim::rng::Xoshiro256pp;
use cim_sim::time::SimDuration;

/// Cost of an operation on the array: how long it occupied the array and
/// how much energy it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Array occupancy time.
    pub latency: SimDuration,
    /// Energy consumed.
    pub energy: Energy,
}

impl OpCost {
    /// Adds another cost (sequential composition).
    pub fn then(self, other: OpCost) -> OpCost {
        OpCost {
            latency: self.latency + other.latency,
            energy: self.energy + other.energy,
        }
    }

    /// Combines costs of operations running in parallel: latencies take
    /// the max, energies add. The dual of [`then`](Self::then) — use it
    /// whenever two operations occupy *different* physical resources over
    /// the same interval (batch items on engine shards, arrays behind
    /// independent ADCs).
    pub fn par(self, other: OpCost) -> OpCost {
        OpCost {
            latency: self.latency.max(other.latency),
            energy: self.energy + other.energy,
        }
    }

    /// Alias for [`par`](Self::par), kept for existing call sites.
    pub fn join_parallel(self, other: OpCost) -> OpCost {
        self.par(other)
    }
}

/// A crossbar array of memristor cells.
///
/// # Examples
///
/// ```
/// use cim_crossbar::array::CrossbarArray;
/// use cim_crossbar::device::DeviceParams;
/// use cim_sim::SeedTree;
///
/// let mut xbar = CrossbarArray::new(4, 4, DeviceParams::ideal(2), SeedTree::new(7));
/// // Identity-ish pattern: level 3 on the diagonal.
/// let levels: Vec<u16> = (0..16).map(|i| if i % 5 == 0 { 3 } else { 0 }).collect();
/// xbar.program_levels(&levels).unwrap();
/// let sums = xbar.read_phase(&[true, false, true, false]).unwrap();
/// assert_eq!(sums, vec![3.0, 0.0, 3.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<MemristorCell>,
    params: DeviceParams,
    rng: Xoshiro256pp,
    programmed: bool,
    /// Cached effective conductances for the noise-free read fast path;
    /// rebuilt whenever cells change (program, fault, drift).
    fast: Option<Vec<f64>>,
}

impl CrossbarArray {
    /// Creates an array of fresh (minimum-conductance) cells.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, params: DeviceParams, seeds: cim_sim::SeedTree) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        CrossbarArray {
            rows,
            cols,
            cells: vec![MemristorCell::new(); rows * cols],
            params,
            rng: seeds.rng("crossbar-array"),
            programmed: false,
            fast: None,
        }
    }

    /// Re-derives the read-noise RNG from `seeds`, exactly as
    /// [`new`](Self::new) does. This is the seed-split determinism hook:
    /// giving each batch item a per-item seed tree makes the noise stream
    /// a function of the item index alone, independent of which engine
    /// shard (or host thread) executes it.
    pub fn reseed(&mut self, seeds: cim_sim::SeedTree) {
        self.rng = seeds.rng("crossbar-array");
    }

    /// Rebuilds (or clears) the noise-free conductance cache. Reads are
    /// deterministic exactly when `read_sigma == 0`, in which case one
    /// flat `f64` table replaces per-cell model evaluation on the hot
    /// analog-read path.
    fn refresh_fast_path(&mut self) {
        if self.params.read_sigma == 0.0 {
            let params = &self.params;
            // A fresh RNG is irrelevant here: with zero read noise,
            // MemristorCell::read never samples it.
            let mut throwaway = self.rng.clone();
            self.fast = Some(
                self.cells
                    .iter()
                    .map(|c| c.read(params, &mut throwaway))
                    .collect(),
            );
        } else {
            self.fast = None;
        }
    }

    /// Array rows (input lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (output lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Whether a matrix has been programmed.
    pub fn is_programmed(&self) -> bool {
        self.programmed
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> Result<usize> {
        if row < self.rows && col < self.cols {
            Ok(row * self.cols + col)
        } else {
            Err(CrossbarError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            })
        }
    }

    /// Programs every cell from a row-major level matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DimensionMismatch`] if `levels` is not
    /// exactly `rows × cols` long, or [`CrossbarError::InvalidConfig`] if
    /// any level exceeds the device's maximum.
    pub fn program_levels(&mut self, levels: &[u16]) -> Result<OpCost> {
        if levels.len() != self.rows * self.cols {
            return Err(CrossbarError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: levels.len(),
                what: "level matrix size",
            });
        }
        if let Some(&bad) = levels.iter().find(|&&l| l > self.params.max_level()) {
            return Err(CrossbarError::InvalidConfig {
                reason: format!("level {bad} exceeds device max {}", self.params.max_level()),
            });
        }
        for (cell, &level) in self.cells.iter_mut().zip(levels) {
            cell.program(level, &self.params, &mut self.rng);
        }
        self.programmed = true;
        self.refresh_fast_path();
        Ok(self.program_cost())
    }

    /// Cost of a full-array reprogram: rows are written one at a time with
    /// all columns in parallel (column drivers are shared per row).
    pub fn program_cost(&self) -> OpCost {
        OpCost {
            latency: SimDuration::from_ps(dpe::CELL_WRITE_PS * self.rows as u64),
            energy: Energy::from_fj(dpe::CELL_WRITE_FJ * (self.rows * self.cols) as u64),
        }
    }

    /// Performs one analog read phase: every active row is driven and every
    /// column returns the sum of its active cells' conductances
    /// (in level units, with read noise applied per cell).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NotProgrammed`] before the first program,
    /// or [`CrossbarError::DimensionMismatch`] if `active_rows` has the
    /// wrong length.
    pub fn read_phase(&mut self, active_rows: &[bool]) -> Result<Vec<f64>> {
        if !self.programmed {
            return Err(CrossbarError::NotProgrammed);
        }
        if active_rows.len() != self.rows {
            return Err(CrossbarError::DimensionMismatch {
                expected: self.rows,
                actual: active_rows.len(),
                what: "active row mask length",
            });
        }
        let mut sums = vec![0.0f64; self.cols];
        if let Some(fast) = &self.fast {
            for (r, &active) in active_rows.iter().enumerate() {
                if !active {
                    continue;
                }
                let row = &fast[r * self.cols..(r + 1) * self.cols];
                for (sum, &g) in sums.iter_mut().zip(row) {
                    *sum += g;
                }
            }
        } else {
            for (r, &active) in active_rows.iter().enumerate() {
                if !active {
                    continue;
                }
                let base = r * self.cols;
                for (c, sum) in sums.iter_mut().enumerate() {
                    *sum += self.cells[base + c].read(&self.params, &mut self.rng);
                }
            }
        }
        Ok(sums)
    }

    /// Performs one analog read phase with *multi-level* row drives:
    /// row `r` is driven at DAC level `levels[r]` (0 = idle), and every
    /// column returns `Σ levels[r] · g[r][c]`. The 1-bit
    /// [`read_phase`](Self::read_phase) is the `levels ∈ {0,1}` special
    /// case of this operation.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NotProgrammed`] before the first program,
    /// or [`CrossbarError::DimensionMismatch`] if `levels` has the wrong
    /// length.
    pub fn read_phase_levels(&mut self, levels: &[u16]) -> Result<Vec<f64>> {
        if !self.programmed {
            return Err(CrossbarError::NotProgrammed);
        }
        if levels.len() != self.rows {
            return Err(CrossbarError::DimensionMismatch {
                expected: self.rows,
                actual: levels.len(),
                what: "drive level vector length",
            });
        }
        let mut sums = vec![0.0f64; self.cols];
        if let Some(fast) = &self.fast {
            for (r, &level) in levels.iter().enumerate() {
                if level == 0 {
                    continue;
                }
                let drive = f64::from(level);
                let row = &fast[r * self.cols..(r + 1) * self.cols];
                for (sum, &g) in sums.iter_mut().zip(row) {
                    *sum += drive * g;
                }
            }
        } else {
            for (r, &level) in levels.iter().enumerate() {
                if level == 0 {
                    continue;
                }
                let drive = f64::from(level);
                let base = r * self.cols;
                for (c, sum) in sums.iter_mut().enumerate() {
                    *sum += drive * self.cells[base + c].read(&self.params, &mut self.rng);
                }
            }
        }
        Ok(sums)
    }

    /// Cost of one read phase: analog settle plus DAC drive on the active
    /// rows. (ADC cost is accounted by the engine, which owns the ADCs.)
    pub fn read_phase_cost(&self, active_row_count: usize) -> OpCost {
        OpCost {
            latency: SimDuration::from_ps(dpe::READ_PHASE_PS),
            energy: Energy::from_fj(
                dpe::READ_PHASE_FJ * active_row_count as u64 / self.rows.max(1) as u64
                    + dpe::DAC_DRIVE_FJ * active_row_count as u64,
            ),
        }
    }

    /// Injects a fault into one cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn inject_fault(&mut self, row: usize, col: usize, fault: CellFault) -> Result<()> {
        let i = self.idx(row, col)?;
        self.cells[i].set_fault(fault);
        self.refresh_fast_path();
        Ok(())
    }

    /// Number of faulty cells.
    pub fn fault_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.fault() != CellFault::None)
            .count()
    }

    /// Applies retention drift to every cell (see
    /// [`MemristorCell::drift`]).
    pub fn drift_all(&mut self, relative_age: f64, drift_fraction: f64) {
        for cell in &mut self.cells {
            cell.drift(relative_age, drift_fraction);
        }
        self.refresh_fast_path();
    }

    /// Total programming pulses absorbed across all cells (wear telemetry
    /// for the serviceability model, paper §V.D).
    pub fn total_writes(&self) -> u64 {
        self.cells.iter().map(MemristorCell::write_count).sum()
    }

    /// The level a cell was last programmed to.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid coordinates.
    pub fn target_level(&self, row: usize, col: usize) -> Result<u16> {
        Ok(self.cells[self.idx(row, col)?].target_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::SeedTree;

    fn ideal_array(rows: usize, cols: usize) -> CrossbarArray {
        CrossbarArray::new(rows, cols, DeviceParams::ideal(2), SeedTree::new(5))
    }

    #[test]
    fn read_before_program_is_an_error() {
        let mut a = ideal_array(2, 2);
        assert_eq!(
            a.read_phase(&[true, true]),
            Err(CrossbarError::NotProgrammed)
        );
    }

    #[test]
    fn program_validates_dimensions_and_levels() {
        let mut a = ideal_array(2, 2);
        assert!(matches!(
            a.program_levels(&[1, 2, 3]),
            Err(CrossbarError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.program_levels(&[1, 2, 3, 9]),
            Err(CrossbarError::InvalidConfig { .. })
        ));
        assert!(a.program_levels(&[1, 2, 3, 0]).is_ok());
    }

    #[test]
    fn read_phase_sums_active_rows_only() {
        let mut a = ideal_array(3, 2);
        // rows: [1,2], [3,0], [2,2]
        a.program_levels(&[1, 2, 3, 0, 2, 2]).unwrap();
        assert_eq!(a.read_phase(&[true, true, true]).unwrap(), vec![6.0, 4.0]);
        assert_eq!(a.read_phase(&[false, true, false]).unwrap(), vec![3.0, 0.0]);
        assert_eq!(
            a.read_phase(&[false, false, false]).unwrap(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn wrong_mask_length_is_an_error() {
        let mut a = ideal_array(2, 2);
        a.program_levels(&[0, 0, 0, 0]).unwrap();
        assert!(matches!(
            a.read_phase(&[true]),
            Err(CrossbarError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn write_is_much_slower_than_read() {
        let a = ideal_array(128, 128);
        let w = a.program_cost();
        let r = a.read_phase_cost(128);
        assert!(w.latency.as_ps() > 100 * r.latency.as_ps());
    }

    #[test]
    fn faults_change_sums() {
        let mut a = ideal_array(2, 2);
        a.program_levels(&[3, 3, 3, 3]).unwrap();
        a.inject_fault(0, 0, CellFault::StuckOff).unwrap();
        let sums = a.read_phase(&[true, true]).unwrap();
        assert_eq!(sums, vec![3.0, 6.0]);
        assert_eq!(a.fault_count(), 1);
        assert!(a.inject_fault(5, 0, CellFault::StuckOn).is_err());
    }

    #[test]
    fn drift_reduces_sums() {
        let mut a = ideal_array(2, 1);
        a.program_levels(&[2, 2]).unwrap();
        a.drift_all(1.0, 0.25);
        let sums = a.read_phase(&[true, true]).unwrap();
        assert!((sums[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wear_telemetry_counts_program_pulses() {
        let mut a = ideal_array(2, 2);
        a.program_levels(&[0, 0, 0, 0]).unwrap();
        a.program_levels(&[1, 1, 1, 1]).unwrap();
        assert_eq!(a.total_writes(), 8);
        assert_eq!(a.target_level(1, 1).unwrap(), 1);
    }

    #[test]
    fn noisy_reads_are_reproducible_per_seed() {
        let params = DeviceParams::default();
        let mk = || {
            let mut a = CrossbarArray::new(8, 8, params.clone(), SeedTree::new(77));
            a.program_levels(&[2; 64]).unwrap();
            a.read_phase(&[true; 8]).unwrap()
        };
        assert_eq!(mk(), mk(), "same seed, same noise");
    }

    #[test]
    fn op_cost_composition() {
        let a = OpCost {
            latency: SimDuration::from_ns(10),
            energy: Energy::from_fj(100),
        };
        let b = OpCost {
            latency: SimDuration::from_ns(4),
            energy: Energy::from_fj(50),
        };
        let seq = a.then(b);
        assert_eq!(seq.latency, SimDuration::from_ns(14));
        assert_eq!(seq.energy, Energy::from_fj(150));
        let par = a.join_parallel(b);
        assert_eq!(par.latency, SimDuration::from_ns(10));
        assert_eq!(par.energy, Energy::from_fj(150));
    }
}
