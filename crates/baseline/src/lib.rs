//! # cim-baseline — Von Neumann comparators
//!
//! Every comparison in the paper needs the other side: §VI compares the
//! Dot Product Engine against "modern CPUs" and "modern GPUs"; Table 1
//! compares CIM against shared-memory and distributed machines; Fig 2
//! plots seven decades of bytes-per-FLOP decline. This crate implements
//! all of them as calibrated models:
//!
//! * [`cache`] / [`cpu`] — trace-driven cache hierarchy + roofline socket;
//! * [`gpu`] — V100-class throughput machine with launch overheads;
//! * [`shared_memory`] — coherence-limited SMP (Table 1 col. 1);
//! * [`cluster`] — message-passing cluster (Table 1 col. 2);
//! * [`serving`] — cluster-side request serving with machine failover
//!   (the like-for-like half of the fleet resilience comparison);
//! * [`history`] — the Fig 2 machine dataset and trend fit.
//!
//! ## Example
//!
//! ```
//! use cim_baseline::cpu::CpuModel;
//! use cim_baseline::gpu::GpuModel;
//!
//! let cpu = CpuModel::new(20).unwrap();
//! let gpu = GpuModel::new();
//! // A 100 MFLOP kernel over 100 MB: CPU is DRAM-bound, GPU wins.
//! let c = cpu.run_kernel(100_000_000, 100_000_000, 0);
//! let g = gpu.run_kernel(100_000_000, 100_000_000);
//! assert!(g.latency < c.latency);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod cluster;
pub mod cost;
pub mod cpu;
pub mod dram;
pub mod gpu;
pub mod history;
pub mod roofline;
pub mod serving;
pub mod shared_memory;

pub use cache::{Cache, CacheHierarchy, HierarchyStats, ServiceLevel};
pub use cluster::Cluster;
pub use cost::PlatformCost;
pub use cpu::CpuModel;
pub use dram::{DramChannel, DramConfig, DramStats, RowOutcome};
pub use gpu::GpuModel;
pub use history::{fit_trend, Machine, Trend, MACHINES};
pub use roofline::Roof;
pub use serving::{ClusterServeConfig, ClusterServeReport, MachineEvent, MachineLoad, ServeClass};
pub use shared_memory::SmpMachine;
