//! A minimal dense row-major matrix used at the engine boundary.

use crate::error::{CrossbarError, Result};

/// A dense row-major `f64` matrix.
///
/// Rows correspond to crossbar input lines, columns to output lines, so a
/// matrix–vector product is `y[c] = Σ_r x[r] · m[(r, c)]`.
///
/// # Examples
///
/// ```
/// use cim_crossbar::matrix::DenseMatrix;
///
/// let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 5.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DimensionMismatch`] if `data.len() != rows*cols`
    /// and [`CrossbarError::InvalidConfig`] for zero dimensions or non-finite
    /// entries.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::InvalidConfig {
                reason: format!("matrix dimensions must be positive, got {rows}x{cols}"),
            });
        }
        if data.len() != rows * cols {
            return Err(CrossbarError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
                what: "matrix data length",
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(CrossbarError::InvalidConfig {
                reason: "matrix entries must be finite".to_owned(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `f` produces non-finite values.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let data = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| (r, c)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(r, c)| f(r, c))
            .collect();
        Self::new(rows, cols, data).expect("from_fn produced an invalid matrix")
    }

    /// An all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, vec![0.0; rows * cols]).expect("zeros matrix")
    }

    /// Number of rows (crossbar input lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (crossbar output lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Exact `f64` matrix–vector product (the reference the analog engine
    /// is validated against).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DimensionMismatch`] if `x.len() != rows`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(CrossbarError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
                what: "input vector length",
            });
        }
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let base = r * self.cols;
            for (c, yv) in y.iter_mut().enumerate() {
                *yv += xv * self.data[base + c];
            }
        }
        Ok(y)
    }

    /// Largest absolute entry (quantizer range).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// A sub-matrix view copied out as an owned matrix, clamped to bounds;
    /// used for tiling across crossbar arrays. Out-of-range area is
    /// zero-padded to the requested size.
    pub fn tile(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            let (rr, cc) = (row0 + r, col0 + c);
            if rr < self.rows && cc < self.cols {
                self.get(rr, cc)
            } else {
                0.0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(DenseMatrix::new(0, 3, vec![]).is_err());
        assert!(DenseMatrix::new(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::new(1, 1, vec![f64::NAN]).is_err());
        assert!(DenseMatrix::new(1, 1, vec![1.0]).is_ok());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = DenseMatrix::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(m.matvec(&[2.0, -1.0]).unwrap(), vec![-1.0, 0.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn tile_zero_pads() {
        let m = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64 + 1.0);
        let t = m.tile(1, 1, 2, 2);
        assert_eq!(t.get(0, 0), 4.0);
        assert_eq!(t.get(0, 1), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
        assert_eq!(t.get(1, 1), 0.0);
    }

    #[test]
    fn max_abs_scans_all() {
        let m = DenseMatrix::new(1, 3, vec![0.5, -2.5, 1.0]).unwrap();
        assert_eq!(m.max_abs(), 2.5);
        assert_eq!(DenseMatrix::zeros(2, 2).max_abs(), 0.0);
    }

    #[test]
    fn get_mut_mutates() {
        let mut m = DenseMatrix::zeros(2, 2);
        *m.get_mut(0, 1) = 7.0;
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }
}
