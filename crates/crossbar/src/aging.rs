//! Device aging, retention and refresh management.
//!
//! §V.D (Serviceability) of the paper calls for "graceful aging and
//! self-healing": understanding how devices age so they can be switched
//! out *before* failing. This module models conductance retention drift
//! over deployment time and the refresh (reprogram) policy that bounds it,
//! exposing the accuracy-vs-refresh-overhead trade-off.
//!
//! Deployment time spans years, far beyond the picosecond-resolution
//! [`cim_sim::SimDuration`] (which caps at ~213 days), so ages here are
//! plain `f64` seconds.

use crate::dpe::DotProductEngine;
use crate::matrix::DenseMatrix;

/// One year of deployment time, in seconds.
pub const YEAR_SECS: f64 = 365.0 * 24.0 * 3600.0;

/// Retention model: how fast programmed conductances decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionModel {
    /// Nominal retention life in seconds — the deployment time after which
    /// an unrefreshed cell has drifted by `drift_at_life`.
    pub retention_life_secs: f64,
    /// Fractional conductance loss at one retention life.
    pub drift_at_life: f64,
}

impl Default for RetentionModel {
    /// A 10-year retention life with 10 % drift — typical filamentary
    /// ReRAM retention figures.
    fn default() -> Self {
        RetentionModel {
            retention_life_secs: 10.0 * YEAR_SECS,
            drift_at_life: 0.10,
        }
    }
}

impl RetentionModel {
    /// Fractional drift accumulated after `elapsed_secs` without refresh.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_secs` is negative.
    pub fn drift_fraction(&self, elapsed_secs: f64) -> f64 {
        assert!(elapsed_secs >= 0.0, "elapsed time must be non-negative");
        (self.drift_at_life * elapsed_secs / self.retention_life_secs).min(1.0)
    }

    /// The *additional* multiplicative drift fraction for advancing a cell
    /// that is already `age_secs` old by another `elapsed_secs`.
    ///
    /// Conductance decays multiplicatively: after age `a` a cell retains
    /// `1 − drift_fraction(a)` of its programmed value. Applying the raw
    /// `drift_fraction(dt)` once per `advance` call therefore compounds —
    /// N small steps drift more than one big one, and the clamp makes
    /// 2×10 yr ≠ 1×20 yr. This incremental form is renormalized so the
    /// factors telescope exactly:
    ///
    /// `(1 − incr) · (1 − drift_fraction(a)) = 1 − drift_fraction(a + dt)`
    ///
    /// which makes any split of an interval equivalent to one call over
    /// the whole interval, clamp included.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn incremental_drift_fraction(&self, age_secs: f64, elapsed_secs: f64) -> f64 {
        assert!(age_secs >= 0.0, "age must be non-negative");
        let before = self.drift_fraction(age_secs);
        let after = self.drift_fraction(age_secs + elapsed_secs);
        if before >= 1.0 {
            // Fully drifted: conductance is already zero, nothing left to
            // decay (avoids 0/0 below).
            return 0.0;
        }
        ((after - before) / (1.0 - before)).clamp(0.0, 1.0)
    }
}

/// Tracks deployment age of a programmed engine and applies drift/refresh.
///
/// # Examples
///
/// ```
/// use cim_crossbar::aging::{AgingManager, RetentionModel, YEAR_SECS};
/// use cim_crossbar::dpe::{DotProductEngine, DpeConfig};
/// use cim_crossbar::matrix::DenseMatrix;
/// use cim_sim::SeedTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = DenseMatrix::from_fn(8, 8, |_, _| 0.5);
/// let mut dpe = DotProductEngine::new(DpeConfig::ideal(), SeedTree::new(1));
/// dpe.program(&w)?;
/// let mut mgr = AgingManager::new(RetentionModel::default(), w.clone());
/// mgr.advance(&mut dpe, YEAR_SECS);
/// assert!(mgr.age_secs() > 0.0);
/// let cost = mgr.refresh(&mut dpe)?;
/// assert!(cost.latency.as_ps() > 0);
/// assert_eq!(mgr.age_secs(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AgingManager {
    model: RetentionModel,
    golden: DenseMatrix,
    age_secs: f64,
    refreshes: u64,
}

impl AgingManager {
    /// Creates a manager holding the golden weights for refresh.
    pub fn new(model: RetentionModel, golden: DenseMatrix) -> Self {
        AgingManager {
            model,
            golden,
            age_secs: 0.0,
            refreshes: 0,
        }
    }

    /// Seconds of deployment since the last refresh (or programming).
    pub fn age_secs(&self) -> f64 {
        self.age_secs
    }

    /// Number of refreshes performed.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Advances deployment time, applying the corresponding drift to every
    /// array in the engine.
    ///
    /// Uses [`RetentionModel::incremental_drift_fraction`], so splitting an
    /// interval across many `advance` calls drifts exactly as much as one
    /// call over the whole interval (step-size independence).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_secs` is negative.
    pub fn advance(&mut self, dpe: &mut DotProductEngine, elapsed_secs: f64) {
        let frac = self
            .model
            .incremental_drift_fraction(self.age_secs, elapsed_secs);
        dpe.for_each_array(|_, _, _, _, xbar| {
            xbar.drift_all(1.0, frac);
        });
        self.age_secs += elapsed_secs;
    }

    /// Reprograms the engine from the golden weights, resetting drift.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from the engine.
    pub fn refresh(
        &mut self,
        dpe: &mut DotProductEngine,
    ) -> crate::error::Result<crate::array::OpCost> {
        let cost = dpe.program(&self.golden)?;
        self.age_secs = 0.0;
        self.refreshes += 1;
        Ok(cost)
    }

    /// Whether the projected drift at the current age exceeds `budget`
    /// (a fractional accuracy budget) — the §V.D "switch out before it
    /// fails" predicate.
    pub fn needs_refresh(&self, budget: f64) -> bool {
        self.model.drift_fraction(self.age_secs) > budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpe::DpeConfig;
    use crate::faults::normalized_rmse;
    use cim_sim::SeedTree;

    fn setup() -> (DotProductEngine, DenseMatrix, Vec<f64>) {
        let w = DenseMatrix::from_fn(32, 16, |r, c| (((r * 5 + c) % 11) as f64 / 11.0) + 0.1);
        let mut dpe = DotProductEngine::new(DpeConfig::ideal(), SeedTree::new(21));
        dpe.program(&w).unwrap();
        let x = vec![0.5; 32];
        (dpe, w, x)
    }

    #[test]
    fn drift_fraction_is_linear_and_clamped() {
        let m = RetentionModel {
            retention_life_secs: 100.0,
            drift_at_life: 0.2,
        };
        assert_eq!(m.drift_fraction(0.0), 0.0);
        assert!((m.drift_fraction(50.0) - 0.1).abs() < 1e-12);
        assert_eq!(m.drift_fraction(100_000.0), 1.0);
    }

    #[test]
    fn aging_degrades_accuracy_and_refresh_restores_it() {
        let (mut dpe, w, x) = setup();
        let exact = w.matvec(&x).unwrap();
        let fresh_err = normalized_rmse(&dpe.matvec(&x).unwrap().values, &exact);

        let mut mgr = AgingManager::new(RetentionModel::default(), w.clone());
        mgr.advance(&mut dpe, 20.0 * YEAR_SECS); // two retention lives
        let aged_err = normalized_rmse(&dpe.matvec(&x).unwrap().values, &exact);
        assert!(
            aged_err > fresh_err * 2.0 + 0.01,
            "aged {aged_err} vs fresh {fresh_err}"
        );

        mgr.refresh(&mut dpe).unwrap();
        let refreshed_err = normalized_rmse(&dpe.matvec(&x).unwrap().values, &exact);
        assert!(refreshed_err < aged_err / 2.0);
        assert_eq!(mgr.refresh_count(), 1);
    }

    #[test]
    fn needs_refresh_threshold() {
        let (mut dpe, w, _) = setup();
        let mut mgr = AgingManager::new(RetentionModel::default(), w);
        assert!(!mgr.needs_refresh(0.01));
        mgr.advance(&mut dpe, 5.0 * YEAR_SECS); // half retention life => 5% drift
        assert!(mgr.needs_refresh(0.01));
        assert!(!mgr.needs_refresh(0.09));
    }

    #[test]
    fn age_accumulates_across_advances() {
        let (mut dpe, w, _) = setup();
        let mut mgr = AgingManager::new(RetentionModel::default(), w);
        mgr.advance(&mut dpe, YEAR_SECS);
        mgr.advance(&mut dpe, YEAR_SECS);
        assert_eq!(mgr.age_secs(), 2.0 * YEAR_SECS);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_elapsed_panics() {
        let m = RetentionModel::default();
        let _ = m.drift_fraction(-1.0);
    }

    #[test]
    fn incremental_fractions_telescope_to_the_single_call_drift() {
        let m = RetentionModel::default();
        // Effective retained fraction after N split advances must equal the
        // single-call value to 1e-12, for step counts that do and do not
        // cross the clamp.
        for (total, steps) in [
            (7.3 * YEAR_SECS, 13),
            (20.0 * YEAR_SECS, 40),
            (250.0 * YEAR_SECS, 7), // deep into the clamp
        ] {
            let dt = total / steps as f64;
            let mut retained = 1.0;
            let mut age = 0.0;
            for _ in 0..steps {
                retained *= 1.0 - m.incremental_drift_fraction(age, dt);
                age += dt;
            }
            let split_drift = 1.0 - retained;
            let single_drift = m.drift_fraction(total);
            assert!(
                (split_drift - single_drift).abs() < 1e-12,
                "split {split_drift} vs single {single_drift} over {steps} steps"
            );
        }
    }

    #[test]
    fn split_advance_matches_single_advance_rmse() {
        // Two identical engines, one aged in 20 small steps, one in a
        // single call: their readout errors must agree to 1e-12.
        let (mut dpe_split, w, x) = setup();
        let (mut dpe_single, _, _) = setup();
        let exact = w.matvec(&x).unwrap();
        let total = 6.0 * YEAR_SECS;

        let mut mgr_split = AgingManager::new(RetentionModel::default(), w.clone());
        for _ in 0..20 {
            mgr_split.advance(&mut dpe_split, total / 20.0);
        }
        let mut mgr_single = AgingManager::new(RetentionModel::default(), w.clone());
        mgr_single.advance(&mut dpe_single, total);

        assert!((mgr_split.age_secs() - mgr_single.age_secs()).abs() < 1e-3);
        let err_split = normalized_rmse(&dpe_split.matvec(&x).unwrap().values, &exact);
        let err_single = normalized_rmse(&dpe_single.matvec(&x).unwrap().values, &exact);
        assert!(
            (err_split - err_single).abs() < 1e-12,
            "split {err_split} vs single {err_single}"
        );
        assert!(err_single > 1e-3, "six years of drift must be visible");
    }

    #[test]
    fn clamped_drift_is_path_independent() {
        // 2×10 yr and 1×20 yr both cross the 10-yr retention life of a
        // fully-drifting model; they must end at identical conductances.
        let model = RetentionModel {
            retention_life_secs: 10.0 * YEAR_SECS,
            drift_at_life: 1.0,
        };
        let (mut dpe_a, w, x) = setup();
        let (mut dpe_b, _, _) = setup();
        let mut mgr_a = AgingManager::new(model, w.clone());
        mgr_a.advance(&mut dpe_a, 10.0 * YEAR_SECS);
        mgr_a.advance(&mut dpe_a, 10.0 * YEAR_SECS);
        let mut mgr_b = AgingManager::new(model, w);
        mgr_b.advance(&mut dpe_b, 20.0 * YEAR_SECS);
        let out_a = dpe_a.matvec(&x).unwrap().values;
        let out_b = dpe_b.matvec(&x).unwrap().values;
        for (a, b) in out_a.iter().zip(&out_b) {
            assert!((a - b).abs() < 1e-12, "2x10yr {a} vs 1x20yr {b}");
        }
    }
}
