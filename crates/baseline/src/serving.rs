//! Cluster request serving: the like-for-like side of the Table 1
//! resilience comparison.
//!
//! `cim_fabric::fleet` serves an open-loop request stream across N CIM
//! devices with whole-device failover; this module serves the *same*
//! extracted workload — the `(arrival, class)` record a fleet run keeps
//! — on a conventional message-passing cluster, with the same router
//! shape (replica sets per class, least-outstanding routing, bounded
//! queues) but cluster physics: every request crosses the network
//! (RTT + bytes over [`cal::NODE_BW_BYTES`]), compute runs at socket
//! FLOPS, and machine failover pays the heartbeat detection floor
//! ([`cal::FAILOVER_PS`], ≈50 ms) *plus* state transfer to the standby
//! before re-execution — the CIM fleet's resident-replica recovery
//! (microseconds of detection, no state to ship) is exactly what this
//! model cannot do.
//!
//! Keeping this in `cim-baseline` (no fabric dependency) preserves the
//! crate layering: the fleet exports its arrivals; a bench harness feeds
//! them to both platforms and renders one table.

use cim_sim::calib::{cluster as cal, cpu};
use cim_sim::energy::Energy;
use cim_sim::stats::Samples;
use cim_sim::time::{SimDuration, SimTime};

/// Cluster-side serving knobs, mirroring `FleetConfig`.
#[derive(Debug, Clone)]
pub struct ClusterServeConfig {
    /// Machines in the cluster.
    pub machines: usize,
    /// Replicas per class (standby copies on distinct machines).
    pub replicas: usize,
    /// Maximum requests in flight per machine; arrivals beyond are shed.
    pub queue_capacity: usize,
    /// Resident state per class a standby must receive before it can
    /// take over (model weights + session state), bytes.
    pub state_bytes: u64,
    /// Delay between a machine dying under a request and the router
    /// re-dispatching it: heartbeat detection plus state transfer.
    /// Defaults to [`cal::FAILOVER_PS`] + `state_bytes` over the wire.
    pub failover_detect: SimDuration,
}

impl ClusterServeConfig {
    /// A cluster sized like a CIM fleet: `machines` machines, the same
    /// replica factor, the same queue bound, with the calibrated
    /// machine-failover currency (50 ms heartbeat + state transfer).
    pub fn like_fleet(
        machines: usize,
        replicas: usize,
        queue_capacity: usize,
        state_bytes: u64,
    ) -> Self {
        let transfer = SimDuration::from_secs_f64(state_bytes as f64 / cal::NODE_BW_BYTES);
        ClusterServeConfig {
            machines,
            replicas,
            queue_capacity,
            state_bytes,
            failover_detect: SimDuration::from_ps(cal::FAILOVER_PS) + transfer,
        }
    }
}

/// One request class on the cluster: arithmetic cost and SLO.
#[derive(Debug, Clone)]
pub struct ServeClass {
    /// Class name (reporting).
    pub name: String,
    /// FLOPs one request costs a conventional machine.
    pub flops: u64,
    /// Request + response bytes crossing the network per request.
    pub req_bytes: u64,
    /// End-to-end latency SLO.
    pub deadline: SimDuration,
}

/// A scheduled whole-machine outage/repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineEvent {
    /// The machine dies: fenced from routing, in-flight work lost.
    Down {
        /// Simulated time of the failure.
        at: SimTime,
        /// Machine index.
        machine: usize,
    },
    /// The machine returns to service.
    Up {
        /// Simulated time of the repair.
        at: SimTime,
        /// Machine index.
        machine: usize,
    },
}

impl MachineEvent {
    /// The simulated time this event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            MachineEvent::Down { at, .. } | MachineEvent::Up { at, .. } => at,
        }
    }
}

/// Per-machine accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineLoad {
    /// Execution attempts dispatched to this machine.
    pub dispatched: u64,
    /// Requests whose final execution ran here.
    pub served: u64,
    /// Attempts lost to a machine failure (re-executed elsewhere).
    pub voided: u64,
}

/// Outcome of one cluster serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterServeReport {
    /// Requests offered (= the arrival record's length).
    pub offered: usize,
    /// Requests admitted to some machine queue.
    pub admitted: usize,
    /// Requests shed (queue full or no live replica).
    pub shed: usize,
    /// Requests completed within deadline.
    pub completed: usize,
    /// Requests that finished past deadline.
    pub timed_out: usize,
    /// Machine-failover re-executions performed.
    pub failovers: usize,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Total energy: compute + network + re-execution + static burn.
    pub energy: Energy,
    /// Per-machine accounting.
    pub per_machine: Vec<MachineLoad>,
    /// Last departure time (static-energy horizon).
    pub makespan: SimTime,
}

impl ClusterServeReport {
    /// Every admitted request completed or is an accounted SLO miss.
    pub fn zero_lost(&self) -> bool {
        self.completed + self.timed_out == self.admitted
    }

    /// Fraction of offered requests completed within deadline.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.completed as f64 / self.offered as f64
    }
}

/// Time one request of `class` occupies a machine: network RTT, request
/// bytes over the node link, then compute at socket FLOPS.
fn service_time(class: &ServeClass) -> SimDuration {
    let node_flops = cpu::FLOPS_PER_CORE * cpu::CORES as f64;
    SimDuration::from_ps(cal::RTT_PS)
        + SimDuration::from_secs_f64(class.req_bytes as f64 / cal::NODE_BW_BYTES)
        + SimDuration::from_secs_f64(class.flops as f64 / node_flops)
}

fn down_at(downs: &[(SimTime, SimTime)], t: SimTime) -> bool {
    downs.iter().any(|&(s, e)| s <= t && t < e)
}

fn first_down_start_in(
    downs: &[(SimTime, SimTime)],
    after: SimTime,
    until: SimTime,
) -> Option<SimTime> {
    downs
        .iter()
        .map(|&(s, _)| s)
        .filter(|&s| after < s && s <= until)
        .min()
}

/// Serves a pre-extracted arrival record `(arrival, class_index)` on the
/// cluster. Class `c`'s replica set is machines `(c + k) % machines` for
/// `k < replicas` — the same rotating-anchor sharding the CIM fleet
/// uses — and routing picks the least-outstanding live replica with
/// ties rotating on the request index.
///
/// Failed machines void the requests caught on them; re-execution waits
/// out detection + state transfer, and the wasted FLOPs are charged
/// again (a real cluster re-runs the work).
///
/// # Panics
///
/// Panics on an empty class list, zero machines/replicas, replicas
/// exceeding machines, or an event naming a machine outside the
/// cluster.
pub fn serve(
    cfg: &ClusterServeConfig,
    classes: &[ServeClass],
    arrivals: &[(SimTime, usize)],
    events: &[MachineEvent],
) -> ClusterServeReport {
    assert!(!classes.is_empty(), "need at least one class");
    assert!(cfg.machines >= 1, "need at least one machine");
    assert!(
        cfg.replicas >= 1 && cfg.replicas <= cfg.machines,
        "replicas must be in 1..=machines"
    );
    let mut events = events.to_vec();
    events.sort_by_key(MachineEvent::at);
    let mut downs: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); cfg.machines];
    for ev in &events {
        match *ev {
            MachineEvent::Down { at, machine } => {
                assert!(machine < cfg.machines, "event machine out of range");
                if !down_at(&downs[machine], at) {
                    downs[machine].push((at, SimTime::MAX));
                }
            }
            MachineEvent::Up { at, machine } => {
                assert!(machine < cfg.machines, "event machine out of range");
                if let Some(last) = downs[machine].last_mut() {
                    if last.1 == SimTime::MAX && last.0 <= at {
                        last.1 = at;
                    }
                }
            }
        }
    }

    let mut in_flight: Vec<Vec<SimTime>> = vec![Vec::new(); cfg.machines];
    let mut busy_until: Vec<SimTime> = vec![SimTime::ZERO; cfg.machines];
    let mut per_machine = vec![MachineLoad::default(); cfg.machines];
    let mut latencies = Samples::new();
    let (mut admitted, mut shed, mut completed, mut timed_out) = (0usize, 0usize, 0usize, 0usize);
    let mut failovers = 0usize;
    let mut dynamic_fj = 0u64;
    let mut makespan = SimTime::ZERO;

    for (i, &(arrival, class_idx)) in arrivals.iter().enumerate() {
        let class_idx = class_idx.min(classes.len() - 1);
        let class = &classes[class_idx];
        let replica_set: Vec<usize> = (0..cfg.replicas)
            .map(|k| (class_idx + k) % cfg.machines)
            .collect();
        // Route: least-outstanding live machine, ties rotating on the
        // request index (mirrors the fleet router).
        let k = replica_set.len();
        let pick = |when: SimTime, in_flight: &mut [Vec<SimTime>]| -> Option<usize> {
            let live: Vec<usize> = (0..k)
                .filter(|&r| !down_at(&downs[replica_set[r]], when))
                .collect();
            if live.is_empty() {
                return None;
            }
            for &r in &live {
                in_flight[replica_set[r]].retain(|&dep| dep > when);
            }
            live.iter()
                .copied()
                .min_by_key(|&r| (in_flight[replica_set[r]].len(), (k + r - i % k) % k))
        };
        let Some(r0) = pick(arrival, &mut in_flight) else {
            shed += 1;
            continue;
        };
        let m0 = replica_set[r0];
        if in_flight[m0].len() >= cfg.queue_capacity {
            shed += 1;
            continue;
        }
        admitted += 1;

        // Execute, failing over (and re-executing) as machines die.
        let svc = service_time(class);
        let deadline = arrival + class.deadline;
        let mut when = arrival;
        let mut replica = Some(r0);
        let (finished, final_m) = loop {
            let Some(r) = replica else {
                // Every replica down: the request waits for the first
                // repair, or times out at its deadline.
                let next_up = replica_set
                    .iter()
                    .flat_map(|&m| downs[m].iter().map(|&(_, e)| e))
                    .filter(|&e| e > when && e < SimTime::MAX)
                    .min();
                match next_up {
                    Some(up) if up <= deadline => {
                        when = up;
                        replica = pick(when, &mut in_flight);
                        continue;
                    }
                    _ => break (deadline + SimDuration::from_ps(1), usize::MAX),
                }
            };
            let m = replica_set[r];
            per_machine[m].dispatched += 1;
            let start = when.max(busy_until[m]);
            let finish = start + svc;
            dynamic_fj += class.flops * cpu::ENERGY_PER_FLOP_FJ
                + class.req_bytes * cal::ENERGY_PER_NET_BYTE_FJ;
            if let Some(died) = first_down_start_in(&downs[m], when, finish) {
                // Machine lost mid-request: the work is wasted, the
                // standby must detect the failure and receive the
                // class state before re-execution.
                per_machine[m].voided += 1;
                failovers += 1;
                dynamic_fj += cfg.state_bytes * cal::ENERGY_PER_NET_BYTE_FJ;
                when = died + cfg.failover_detect;
                if when > deadline {
                    break (when, usize::MAX);
                }
                replica = pick(when, &mut in_flight);
                continue;
            }
            busy_until[m] = finish;
            break (finish, m);
        };
        if final_m != usize::MAX {
            in_flight[final_m].push(finished);
            per_machine[final_m].served += 1;
        }
        makespan = makespan.max(finished);
        let lat = finished.saturating_since(arrival);
        latencies.record(lat.as_us_f64());
        if lat <= class.deadline && final_m != usize::MAX {
            completed += 1;
        } else {
            timed_out += 1;
        }
    }

    let (p50_us, p99_us) = match latencies.percentiles(&[50.0, 99.0]) {
        Some(ps) => (ps[0], ps[1]),
        None => (0.0, 0.0),
    };
    let mut energy = Energy::from_fj(dynamic_fj);
    energy += Energy::from_joules(cpu::STATIC_W * cfg.machines as f64 * makespan.as_secs_f64());
    ClusterServeReport {
        offered: arrivals.len(),
        admitted,
        shed,
        completed,
        timed_out,
        failovers,
        p50_us,
        p99_us,
        mean_us: latencies.mean(),
        energy,
        per_machine,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ServeClass> {
        vec![
            ServeClass {
                name: "interactive".into(),
                flops: 328,
                req_bytes: 16 * 8 + 4 * 8,
                deadline: SimDuration::from_us(20),
            },
            ServeClass {
                name: "batch".into(),
                flops: 4_608,
                req_bytes: 64 * 8 + 8 * 8,
                deadline: SimDuration::from_us(80),
            },
        ]
    }

    fn arrivals(n: usize, gap_us: u64) -> Vec<(SimTime, usize)> {
        (0..n)
            .map(|i| (SimTime::from_ns(i as u64 * gap_us * 1000), i % 2))
            .collect()
    }

    #[test]
    fn healthy_cluster_serves_within_rtt_bound() {
        let cfg = ClusterServeConfig::like_fleet(4, 2, 16, 1 << 20);
        let r = serve(&cfg, &classes(), &arrivals(100, 10), &[]);
        assert_eq!(r.offered, 100);
        assert!(r.zero_lost());
        assert_eq!(r.shed, 0);
        // Every request pays at least the network RTT (2 µs).
        assert!(r.p50_us >= 2.0, "p50 {} below the RTT floor", r.p50_us);
        assert!(r.energy > Energy::ZERO);
    }

    #[test]
    fn machine_failover_pays_the_heartbeat_floor() {
        let cfg = ClusterServeConfig::like_fleet(4, 2, 16, 1 << 20);
        // One request in flight when its machine dies mid-service.
        let arr = vec![(SimTime::ZERO, 0usize)];
        let events = [MachineEvent::Down {
            at: SimTime::from_ns(1_000),
            machine: 0,
        }];
        let r = serve(&cfg, &classes(), &arr, &events);
        assert_eq!(r.failovers, 1);
        // 50 ms detection blows any microsecond deadline.
        assert_eq!(r.timed_out, 1);
        assert_eq!(r.completed, 0);
        assert!(r.zero_lost(), "timed out is accounted, not lost");
    }

    #[test]
    fn all_replicas_down_sheds() {
        let cfg = ClusterServeConfig::like_fleet(2, 2, 16, 0);
        let events = [
            MachineEvent::Down {
                at: SimTime::ZERO,
                machine: 0,
            },
            MachineEvent::Down {
                at: SimTime::ZERO,
                machine: 1,
            },
        ];
        let r = serve(&cfg, &classes(), &arrivals(10, 10), &events);
        assert_eq!(r.shed, 10);
        assert_eq!(r.admitted, 0);
    }

    #[test]
    fn deterministic_and_accounted() {
        let cfg = ClusterServeConfig::like_fleet(4, 2, 8, 1 << 16);
        let events = [
            MachineEvent::Down {
                at: SimTime::from_ns(100_000),
                machine: 1,
            },
            MachineEvent::Up {
                at: SimTime::from_ns(400_000),
                machine: 1,
            },
        ];
        let a = serve(&cfg, &classes(), &arrivals(200, 5), &events);
        let b = serve(&cfg, &classes(), &arrivals(200, 5), &events);
        assert_eq!(a, b);
        assert!(a.zero_lost());
        let served: u64 = a.per_machine.iter().map(|m| m.served).sum();
        assert!(served as usize <= a.admitted);
    }
}
