//! Ternary content-addressable memory (TCAM).
//!
//! The paper's §III.A lists associative processors — "content addressable
//! memory combined with nonvolatile memory" (Guo et al. \[54\], Yavits et
//! al. \[56\]) — as one of the four CIM hardware families. A TCAM compares a
//! search key against *every* stored pattern simultaneously: an O(1)-time
//! associative lookup that a Von Neumann machine needs O(n) memory traffic
//! for. The search-indexing and key-value workloads use this module.

use crate::array::OpCost;
use cim_sim::calib::dpe;
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// One ternary pattern: each bit is 0, 1 or X (don't care).
///
/// Stored as a value/mask pair: `mask` bit set ⇒ the bit must match
/// `value`; clear ⇒ don't care.
///
/// # Examples
///
/// ```
/// use cim_crossbar::tcam::TernaryPattern;
///
/// let p = TernaryPattern::parse("10X1").unwrap();
/// assert!(p.matches(0b1001));
/// assert!(p.matches(0b1011));
/// assert!(!p.matches(0b0001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TernaryPattern {
    value: u64,
    mask: u64,
    width: u32,
}

impl TernaryPattern {
    /// Creates a pattern from a value/mask pair over `width` bits.
    ///
    /// Returns `None` if `width` is 0 or > 64, or if `value` has bits set
    /// outside the mask or width.
    pub fn new(value: u64, mask: u64, width: u32) -> Option<Self> {
        if width == 0 || width > 64 {
            return None;
        }
        let width_mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        if mask & !width_mask != 0 || value & !mask != 0 {
            return None;
        }
        Some(TernaryPattern { value, mask, width })
    }

    /// An exact-match pattern (no don't-cares).
    pub fn exact(value: u64, width: u32) -> Option<Self> {
        let width_mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Self::new(value & width_mask, width_mask, width)
    }

    /// Parses a pattern string of `0`, `1`, `X`/`x` characters,
    /// most-significant bit first.
    ///
    /// Returns `None` for empty strings, strings longer than 64 characters
    /// or invalid characters.
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut value = 0u64;
        let mut mask = 0u64;
        for ch in s.chars() {
            value <<= 1;
            mask <<= 1;
            match ch {
                '0' => mask |= 1,
                '1' => {
                    value |= 1;
                    mask |= 1;
                }
                'X' | 'x' => {}
                _ => return None,
            }
        }
        Some(TernaryPattern {
            value,
            mask,
            width: s.len() as u32,
        })
    }

    /// Pattern width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether `key` matches this pattern.
    pub fn matches(&self, key: u64) -> bool {
        (key ^ self.value) & self.mask == 0
    }
}

/// A ternary CAM holding up to `capacity` patterns.
///
/// # Examples
///
/// ```
/// use cim_crossbar::tcam::{Tcam, TernaryPattern};
///
/// let mut cam = Tcam::new(64, 8);
/// cam.insert(TernaryPattern::exact(0xAB, 8).unwrap()).unwrap();
/// cam.insert(TernaryPattern::parse("1XXXXXXX").unwrap()).unwrap();
/// let (hits, cost) = cam.search(0xAB);
/// assert_eq!(hits, vec![0, 1]);
/// assert!(cost.latency.as_ps() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Tcam {
    rows: Vec<Option<TernaryPattern>>,
    width: u32,
    searches: u64,
    total: OpCost,
}

impl Tcam {
    /// Creates an empty TCAM with `capacity` rows of `width`-bit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `width` not in 1..=64.
    pub fn new(capacity: usize, width: u32) -> Self {
        assert!(capacity > 0, "TCAM capacity must be positive");
        assert!((1..=64).contains(&width), "TCAM width must be 1..=64");
        Tcam {
            rows: vec![None; capacity],
            width,
            searches: 0,
            total: OpCost::default(),
        }
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.rows.len()
    }

    /// Number of occupied rows.
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Whether no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a pattern into the first free row; returns its row index.
    ///
    /// # Errors
    ///
    /// Returns the pattern back if the CAM is full or the width differs.
    pub fn insert(&mut self, pattern: TernaryPattern) -> Result<usize, TernaryPattern> {
        if pattern.width() != self.width {
            return Err(pattern);
        }
        match self.rows.iter_mut().enumerate().find(|(_, r)| r.is_none()) {
            Some((i, slot)) => {
                *slot = Some(pattern);
                // Writing a CAM row = programming `width` cells in parallel.
                self.total = self.total.then(OpCost {
                    latency: SimDuration::from_ps(dpe::CELL_WRITE_PS),
                    energy: Energy::from_fj(dpe::CELL_WRITE_FJ * u64::from(self.width)),
                });
                Ok(i)
            }
            None => Err(pattern),
        }
    }

    /// Removes the pattern at `row`, returning it if present.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn remove(&mut self, row: usize) -> Option<TernaryPattern> {
        self.rows[row].take()
    }

    /// Searches all rows in parallel; returns matching row indices in
    /// ascending order, plus the cost of the search.
    ///
    /// A search drives the key onto every match line simultaneously: one
    /// read-phase latency regardless of occupancy, energy proportional to
    /// the number of stored bits compared.
    pub fn search(&mut self, key: u64) -> (Vec<usize>, OpCost) {
        self.searches += 1;
        let hits: Vec<usize> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().filter(|p| p.matches(key)).map(|_| i))
            .collect();
        let compared_bits = self.len() as u64 * u64::from(self.width);
        let cost = OpCost {
            latency: SimDuration::from_ps(dpe::READ_PHASE_PS),
            energy: Energy::from_fj(
                // Match-line precharge + compare, ~1 read-noise-margin
                // sense per bit; reuse the DAC drive constant as the
                // per-bit compare energy.
                dpe::DAC_DRIVE_FJ * compared_bits.max(1),
            ),
        };
        self.total = self.total.then(cost);
        (hits, cost)
    }

    /// First matching row only (priority encoder behaviour).
    pub fn search_first(&mut self, key: u64) -> (Option<usize>, OpCost) {
        let (hits, cost) = self.search(key);
        (hits.first().copied(), cost)
    }

    /// Number of searches performed.
    pub fn search_count(&self) -> u64 {
        self.searches
    }

    /// Accumulated cost of all inserts and searches.
    pub fn total_cost(&self) -> OpCost {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parse_and_match() {
        let p = TernaryPattern::parse("1X0").unwrap();
        assert_eq!(p.width(), 3);
        assert!(p.matches(0b100));
        assert!(p.matches(0b110));
        assert!(!p.matches(0b101));
        assert!(!p.matches(0b000));
    }

    #[test]
    fn pattern_parse_rejects_garbage() {
        assert!(TernaryPattern::parse("").is_none());
        assert!(TernaryPattern::parse("102").is_none());
        assert!(TernaryPattern::parse(&"1".repeat(65)).is_none());
    }

    #[test]
    fn pattern_new_validates() {
        assert!(TernaryPattern::new(0b10, 0b11, 2).is_some());
        assert!(
            TernaryPattern::new(0b10, 0b01, 2).is_none(),
            "value outside mask"
        );
        assert!(
            TernaryPattern::new(0, 0b100, 2).is_none(),
            "mask outside width"
        );
        assert!(TernaryPattern::new(0, 0, 0).is_none());
        assert!(TernaryPattern::new(0, u64::MAX, 64).is_some());
    }

    #[test]
    fn exact_match_only_hits_equal_keys() {
        let p = TernaryPattern::exact(0x5A, 8).unwrap();
        assert!(p.matches(0x5A));
        assert!(!p.matches(0x5B));
    }

    #[test]
    fn search_returns_all_hits_in_order() {
        let mut cam = Tcam::new(4, 4);
        cam.insert(TernaryPattern::parse("1XXX").unwrap()).unwrap();
        cam.insert(TernaryPattern::parse("0000").unwrap()).unwrap();
        cam.insert(TernaryPattern::parse("1010").unwrap()).unwrap();
        let (hits, _) = cam.search(0b1010);
        assert_eq!(hits, vec![0, 2]);
        let (first, _) = cam.search_first(0b1010);
        assert_eq!(first, Some(0));
        let (hits, _) = cam.search(0b0000);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn insert_fills_holes_and_rejects_on_full() {
        let mut cam = Tcam::new(2, 4);
        let p = TernaryPattern::exact(1, 4).unwrap();
        assert_eq!(cam.insert(p).unwrap(), 0);
        assert_eq!(cam.insert(p).unwrap(), 1);
        assert!(cam.insert(p).is_err(), "full");
        cam.remove(0);
        assert_eq!(cam.insert(p).unwrap(), 0, "reuses freed row");
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut cam = Tcam::new(2, 8);
        assert!(cam.insert(TernaryPattern::exact(1, 4).unwrap()).is_err());
    }

    #[test]
    fn search_cost_is_constant_latency_linear_energy() {
        let mut small = Tcam::new(128, 16);
        let mut large = Tcam::new(128, 16);
        for i in 0..4 {
            small.insert(TernaryPattern::exact(i, 16).unwrap()).unwrap();
        }
        for i in 0..64 {
            large.insert(TernaryPattern::exact(i, 16).unwrap()).unwrap();
        }
        let (_, c_small) = small.search(2);
        let (_, c_large) = large.search(2);
        assert_eq!(
            c_small.latency, c_large.latency,
            "associative search is O(1) time"
        );
        assert!(
            c_large.energy > c_small.energy,
            "energy scales with stored bits"
        );
    }

    #[test]
    fn counters_accumulate() {
        let mut cam = Tcam::new(4, 4);
        cam.insert(TernaryPattern::exact(3, 4).unwrap()).unwrap();
        cam.search(3);
        cam.search(0);
        assert_eq!(cam.search_count(), 2);
        assert!(cam.total_cost().energy.as_fj() > 0);
    }
}
