#!/usr/bin/env bash
# The repo's CI gate. Local runs and hosted CI execute this same script,
# so "passes ci.sh" and "passes CI" are the same statement.
#
#   ./ci.sh quick     fmt → clippy → build → test (CIM_THREADS=1).
#                     The fast inner-loop gate; hosted CI runs it on
#                     every push and pull request.
#   ./ci.sh           The full gate: quick plus the CIM_THREADS=4 test
#   ./ci.sh full      pass, example smokes, serving soaks, the chaos
#                     campaign (clean sweep + weakened-invariant replay
#                     self-check) and the bench-regression comparison
#                     against the committed BENCH_*.json baselines.
#                     Hosted CI runs it on pushes to main.
#   ./ci.sh baseline  Regenerates BENCH_*.json from this machine and
#                     overwrites the committed baselines. Run it (and
#                     commit the result) when a deliberate change moves
#                     wall-clock medians past the ±30% tolerance, or
#                     when switching baseline hardware.
#
# The workspace is hermetic: zero registry dependencies, so every step
# runs with --offline and succeeds from a clean checkout with no crates.io
# access. Keep it that way — see README.md "CI and the zero-dependency policy".
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"
case "$MODE" in
    quick|full|baseline) ;;
    *) echo "usage: ./ci.sh [quick|full|baseline]" >&2; exit 2 ;;
esac

step() { printf '\n== %s\n' "$1"; }

# ---------------------------------------------------------------- quick
step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo build --release --offline"
cargo build --workspace --release --offline

step "cargo test -q --offline (CIM_THREADS=1)"
CIM_THREADS=1 cargo test --workspace -q --offline

if [ "$MODE" = quick ]; then
    printf '\n== ci.sh quick: all gates passed\n'
    exit 0
fi

# ----------------------------------------------------------- full extras
# The suite runs a second time multi-threaded. The determinism contract
# (see DESIGN.md "Host-parallel execution") says both passes must see
# bit-identical modeled numbers, so any thread-count sensitivity fails
# here rather than on a user's machine.
step "cargo test -q --offline (CIM_THREADS=4)"
CIM_THREADS=4 cargo test --workspace -q --offline

step "smoke-run examples/quickstart.rs"
cargo run --release --offline --example quickstart

step "telemetry smoke: quickstart --telemetry + schema check"
SCRATCH="$(mktemp -d -t cim-ci-XXXXXX)"
trap 'rm -rf "$SCRATCH"' EXIT
cargo run --release --offline --example quickstart -- --telemetry "$SCRATCH/telemetry.jsonl"
# Every line must parse as JSON with component/metric/value keys; the
# checker is in-tree (no external JSON tooling, per the hermetic policy).
cargo run --release --offline -p cim-bench --bin telemetry_check -- "$SCRATCH/telemetry.jsonl"

step "serving soak (CIM_THREADS=1)"
# The serving front-end's acceptance gates: overload sheds with bounded
# p99, repeated unit failures lose nothing, retry-after-repair works.
CIM_THREADS=1 cargo test -q --offline --test serving_soak

step "serving soak (CIM_THREADS=4)"
CIM_THREADS=4 cargo test -q --offline --test serving_soak

step "chaos campaign: 64-seed sweep must be clean"
# Fixed root seed, budgeted for CI. Any invariant violation writes a
# shrunk replay file and fails the gate.
cargo run --release --offline -p cim-chaos --bin chaos_campaign -- \
    --seeds 64 --budget-ms 120000 --out "$SCRATCH/chaos_repro.jsonl"

step "chaos self-check: weakened invariant must be caught and replay bit-identically"
# Sabotage one invariant (recovery bound forced to zero): the campaign
# must detect it, shrink it, and the replay file must reproduce the
# exact same violation fingerprint at both thread settings.
if cargo run --release --offline -p cim-chaos --bin chaos_campaign -- \
    --seeds 64 --weaken recovery_bound_zero --out "$SCRATCH/weakened_repro.jsonl"; then
    echo "FAIL: weakened chaos campaign did not detect a violation" >&2
    exit 1
fi
[ -s "$SCRATCH/weakened_repro.jsonl" ]
CIM_THREADS=1 cargo run --release --offline -p cim-chaos --bin chaos_replay -- \
    "$SCRATCH/weakened_repro.jsonl"
CIM_THREADS=4 cargo run --release --offline -p cim-chaos --bin chaos_replay -- \
    "$SCRATCH/weakened_repro.jsonl"

# ------------------------------------------------------------- benches
# Fresh bench runs land in scratch files; `full` compares them against
# the committed baselines (median wall-clock within ±30%, modeled
# throughput exact), `baseline` overwrites the committed files.
step "bench: serial vs parallel batch throughput"
BENCH_SAMPLES=10 BENCH_WARMUP_MS=20 \
    cargo bench --offline -p cim-bench --bench parallel | tee "$SCRATCH/BENCH_parallel.json"
cargo run --release --offline -p cim-bench --bin bench_compare -- \
    --validate "$SCRATCH/BENCH_parallel.json" \
    --expect parallel/matvec_batch64_t1 --expect parallel/matvec_batch64_t4

step "bench: serving front-end throughput"
BENCH_SAMPLES=10 BENCH_WARMUP_MS=20 \
    cargo bench --offline -p cim-bench --bench serving | tee "$SCRATCH/BENCH_serving.json"
cargo run --release --offline -p cim-bench --bin bench_compare -- \
    --validate "$SCRATCH/BENCH_serving.json" \
    --expect serving/open_loop_light_100k --expect serving/open_loop_overload_3200k

if [ "$MODE" = baseline ]; then
    cp "$SCRATCH/BENCH_parallel.json" BENCH_parallel.json
    cp "$SCRATCH/BENCH_serving.json" BENCH_serving.json
    printf '\n== ci.sh baseline: BENCH_parallel.json and BENCH_serving.json regenerated — commit them\n'
    exit 0
fi

step "bench regression: fresh medians vs committed baselines"
cargo run --release --offline -p cim-bench --bin bench_compare -- \
    --baseline BENCH_parallel.json --fresh "$SCRATCH/BENCH_parallel.json"
cargo run --release --offline -p cim-bench --bin bench_compare -- \
    --baseline BENCH_serving.json --fresh "$SCRATCH/BENCH_serving.json"

printf '\n== ci.sh: all gates passed\n'
