//! Instant-based micro-benchmark harness (replaces `criterion`).
//!
//! Each benchmark is warmed up, auto-batched so one timed sample lasts long
//! enough for `Instant` resolution not to matter, then sampled N times.
//! Per-iteration statistics (min / median / mean / p95, in nanoseconds) are
//! emitted as **one JSON object per line on stdout**, so bench trajectories
//! can be captured with nothing but a shell redirect:
//!
//! ```text
//! cargo bench --bench hotpaths > BENCH_hotpaths.json
//! ```
//!
//! Environment overrides: `BENCH_SAMPLES` (default 30), `BENCH_WARMUP_MS`
//! (default 50), `BENCH_TARGET_SAMPLE_US` (default 500 — the auto-batcher
//! sizes each timed sample to roughly this long).

use cim_sim::stats::Samples;
use std::time::Instant;

/// Maps `f` over the points of a sweep on up to `CIM_THREADS` host
/// threads, preserving point order — the parallel-map entry every
/// multi-device experiment sweep (sec6 batch curve, fig6 evolution
/// modes, crossover grid) funnels through. Each point must build its own
/// device/model state inside `f`; see [`cim_sim::pool`] for the
/// determinism contract.
pub fn parallel_points<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    cim_sim::pool::parallel_map(points, f)
}

/// [`parallel_points`] with an explicit thread count (used by the
/// determinism tests; results are identical at every count).
pub fn parallel_points_threads<T, R, F>(threads: usize, points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    cim_sim::pool::parallel_map_threads(threads, points, f)
}

/// Name of the host-calibration record every bench binary emits.
///
/// The leading underscore keeps it visually apart from real benches;
/// `bench_compare` uses the baseline-vs-fresh ratio of this record's
/// median to scale its wall-clock drift window by host speed, and
/// excludes the record itself from the drift check.
pub const CALIBRATION_BENCH: &str = "_calibration/host";

/// The fixed CPU-bound reference workload behind [`CALIBRATION_BENCH`]:
/// a deterministic mix of integer and scalar-f64 arithmetic shaped like
/// the simulator's hot loops, so its wall-clock tracks how fast this
/// host runs the real benches. Returns a checksum so the optimizer
/// cannot delete the work.
pub fn calibration_workload() -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    let mut x = 1.000_001f64;
    for i in 0..16_384u64 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        x = x.mul_add(1.000_000_1, (acc >> 40) as f64 * 1e-18);
    }
    acc ^ x.to_bits()
}

/// Measures [`calibration_workload`] with the standard harness and
/// prints its record — call it first in every bench `main` so each
/// `BENCH_*.json` carries its producing host's speed reference.
pub fn emit_calibration() {
    let mut g = Group::new("_calibration");
    g.bench("host", calibration_workload);
    g.finish();
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Sampling parameters, shared by every benchmark in a [`Group`].
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Warmup duration before calibration, in milliseconds.
    pub warmup_ms: u64,
    /// Target duration of one timed sample, in microseconds; the batch
    /// size is chosen so `iters_per_sample × time_per_iter ≈` this.
    pub target_sample_us: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            samples: env_u64("BENCH_SAMPLES", 30) as usize,
            warmup_ms: env_u64("BENCH_WARMUP_MS", 50),
            target_sample_us: env_u64("BENCH_TARGET_SAMPLE_US", 500),
        }
    }
}

/// The measured result of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Full benchmark name (`group/name`).
    pub name: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per timed sample (auto-calibrated).
    pub iters_per_sample: u64,
    /// Fastest observed per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: f64,
    /// Elements processed per iteration, if declared with
    /// [`Group::throughput`]; lets consumers derive elements/second.
    pub throughput_elems: Option<u64>,
}

impl BenchReport {
    fn from_samples(
        name: String,
        iters_per_sample: u64,
        per_iter_ns: Vec<f64>,
        throughput_elems: Option<u64>,
    ) -> Self {
        let mut timings = Samples::new();
        for &v in &per_iter_ns {
            timings.record(v);
        }
        // One sort serves every rank (`Samples::percentiles`), instead of
        // paying the O(n log n) `percentile` cost per statistic.
        let q = timings
            .percentiles(&[0.0, 50.0, 95.0])
            .expect("at least one timed sample");
        BenchReport {
            name,
            samples: timings.len(),
            iters_per_sample,
            min_ns: q[0],
            median_ns: q[1],
            mean_ns: timings.mean(),
            p95_ns: q[2],
            throughput_elems,
        }
    }

    /// The report as one JSON object (no trailing newline).
    pub fn json_line(&self) -> String {
        let mut s = format!(
            "{{\"bench\":\"{}\",\"samples\":{},\"iters_per_sample\":{},\
             \"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"p95_ns\":{:.1}",
            self.name,
            self.samples,
            self.iters_per_sample,
            self.min_ns,
            self.median_ns,
            self.mean_ns,
            self.p95_ns
        );
        if let Some(elems) = self.throughput_elems {
            let eps = elems as f64 * 1e9 / self.median_ns.max(f64::MIN_POSITIVE);
            s.push_str(&format!(
                ",\"throughput_elems\":{elems},\"elems_per_sec\":{eps:.0}"
            ));
        }
        s.push('}');
        s
    }
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
///
/// # Examples
///
/// ```
/// use cim_bench::harness::Group;
///
/// let mut g = Group::new("demo");
/// g.bench("sum_1k", || (0u64..1000).sum::<u64>());
/// let reports = g.finish();
/// assert_eq!(reports[0].name, "demo/sum_1k");
/// assert!(reports[0].median_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Group {
    prefix: String,
    opts: BenchOptions,
    throughput_elems: Option<u64>,
    reports: Vec<BenchReport>,
}

impl Group {
    /// Creates a group with default (env-overridable) options.
    pub fn new(prefix: impl Into<String>) -> Self {
        Group::with_options(prefix, BenchOptions::default())
    }

    /// Creates a group with explicit options.
    pub fn with_options(prefix: impl Into<String>, opts: BenchOptions) -> Self {
        Group {
            prefix: prefix.into(),
            opts,
            throughput_elems: None,
            reports: Vec::new(),
        }
    }

    /// Declares the per-iteration element count for subsequent benches, so
    /// reports carry an elements/second figure.
    pub fn throughput(&mut self, elems: u64) {
        self.throughput_elems = Some(elems);
    }

    /// Overrides the sample count for subsequent benches.
    pub fn sample_size(&mut self, samples: usize) {
        self.opts.samples = samples.max(2);
    }

    /// Runs one benchmark: warmup, batch calibration, timed samples; prints
    /// the JSON line to stdout and retains the report.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Warmup + calibration: run until the warmup budget elapses,
        // tracking the observed per-iteration cost.
        let warmup_budget_ns = self.opts.warmup_ms.saturating_mul(1_000_000).max(1);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while (Instant::now() - warmup_start).as_nanos() < u128::from(warmup_budget_ns)
            || warmup_iters < 3
        {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let per_iter_ns =
            ((Instant::now() - warmup_start).as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let target_ns = (self.opts.target_sample_us as f64) * 1_000.0;
        let batch = ((target_ns / per_iter_ns).round() as u64).clamp(1, 1 << 24);

        let mut per_iter = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push((Instant::now() - t).as_nanos() as f64 / batch as f64);
        }
        self.push_report(name, batch, per_iter);
    }

    /// Runs one benchmark whose routine consumes fresh state per iteration
    /// (criterion's `iter_batched`): `setup` runs untimed, `routine` is
    /// timed over a pre-built batch of inputs.
    pub fn bench_with_setup<S, T, G, F>(&mut self, name: &str, mut setup: G, mut routine: F)
    where
        G: FnMut() -> S,
        F: FnMut(S) -> T,
    {
        // Warmup and calibrate on (setup + routine), then cap the batch so
        // pre-built inputs stay modest.
        let warmup_budget_ns = self.opts.warmup_ms.saturating_mul(1_000_000).max(1);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        let mut routine_ns_est = f64::MAX;
        while (Instant::now() - warmup_start).as_nanos() < u128::from(warmup_budget_ns)
            || warmup_iters < 3
        {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            routine_ns_est = routine_ns_est.min((Instant::now() - t).as_nanos() as f64);
            warmup_iters += 1;
        }
        let target_ns = (self.opts.target_sample_us as f64) * 1_000.0;
        let batch = ((target_ns / routine_ns_est.max(1.0)).round() as u64).clamp(1, 256);

        let mut per_iter = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            per_iter.push((Instant::now() - t).as_nanos() as f64 / batch as f64);
        }
        self.push_report(name, batch, per_iter);
    }

    fn push_report(&mut self, name: &str, batch: u64, per_iter: Vec<f64>) {
        let report = BenchReport::from_samples(
            format!("{}/{}", self.prefix, name),
            batch,
            per_iter,
            self.throughput_elems,
        );
        println!("{}", report.json_line());
        self.reports.push(report);
    }

    /// Ends the group, returning the collected reports.
    pub fn finish(self) -> Vec<BenchReport> {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchOptions {
        BenchOptions {
            samples: 5,
            warmup_ms: 1,
            target_sample_us: 50,
        }
    }

    #[test]
    fn reports_ordered_stats_and_json() {
        let mut g = Group::with_options("t", quick());
        g.throughput(64);
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let r = &g.finish()[0];
        assert_eq!(r.name, "t/spin");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert!(r.min_ns > 0.0);
        let j = r.json_line();
        assert!(j.starts_with("{\"bench\":\"t/spin\""), "{j}");
        assert!(j.contains("\"median_ns\":"), "{j}");
        assert!(j.contains("\"elems_per_sec\":"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn with_setup_gives_routine_fresh_state() {
        let mut g = Group::with_options("t", quick());
        g.bench_with_setup(
            "drain",
            || vec![1u64; 256],
            |mut v| {
                // Draining twice would panic on reused state.
                assert_eq!(v.len(), 256);
                v.clear();
                v
            },
        );
        let r = &g.finish()[0];
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn calibration_workload_is_deterministic_and_nontrivial() {
        let a = calibration_workload();
        assert_eq!(a, calibration_workload(), "fixed instruction stream");
        assert_ne!(a, 0);
        let mut g = Group::with_options("_calibration", quick());
        g.bench("host", calibration_workload);
        let r = &g.finish()[0];
        assert_eq!(r.name, CALIBRATION_BENCH);
        assert!(r.median_ns > 0.0);
        assert_eq!(r.throughput_elems, None, "never part of throughput checks");
    }

    #[test]
    fn sample_size_and_throughput_are_per_group() {
        let mut g = Group::with_options("t", quick());
        g.sample_size(3);
        g.bench("noop", || 1u8);
        let r = &g.finish()[0];
        assert_eq!(r.samples, 3);
        assert_eq!(r.throughput_elems, None);
    }
}
