//! Lightweight statistics for simulation outputs.
//!
//! Experiments report latency distributions, throughput and utilization;
//! these accumulators are allocation-light and deterministic so they can sit
//! on hot simulation paths.

use core::fmt;

/// Streaming summary statistics (Welford's online algorithm).
///
/// Tracks count, mean, variance, min and max of a stream of `f64` samples
/// in O(1) space.
///
/// # Examples
///
/// ```
/// use cim_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN sample silently poisons every derived
    /// statistic, so it is rejected at the boundary.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN sample");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (divides by *n*); zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A base-2 logarithmic histogram over `u64` values.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` for `i >= 1`; bucket 0 covers the
/// single value 0. Log buckets are the right shape for latency data, which
/// spans many decades in these experiments.
///
/// # Examples
///
/// ```
/// use cim_sim::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [0, 1, 2, 3, 4, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bucket_count(0), 1); // value 0
/// assert_eq!(h.bucket_count(1), 1); // value 1
/// assert_eq!(h.bucket_count(2), 2); // values 2,3
/// assert_eq!(h.bucket_count(3), 1); // value 4
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Adds one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all recorded values (u128: 2^64 max-values don't overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Number of values that fell in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 64`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// An upper bound on the `q`-quantile (0.0..=1.0) computed from bucket
    /// boundaries. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket 64 covers values up to u64::MAX; the shift must be
                // done in u128 *including* the -1, otherwise `(1u128 << 64)
                // as u64` truncates to 0 and underflows.
                let bound = if i == 0 { 0 } else { (1u128 << i) - 1 };
                return Some(bound.min(u64::MAX as u128) as u64);
            }
        }
        Some(u64::MAX)
    }

    /// The `q`-quantile (0.0..=1.0) with linear interpolation *within* the
    /// hit bucket, assuming values are uniformly spread across it. Where
    /// [`Log2Histogram::quantile_upper_bound`] always answers with the
    /// bucket's upper boundary (a worst-case bound that overstates p50/p95
    /// by up to 2× at high ranks), this estimate lands inside the bucket:
    /// the error is bounded by one bucket width instead of snapping to a
    /// power of two. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cim_sim::stats::Log2Histogram;
    ///
    /// let mut h = Log2Histogram::new();
    /// for v in 1..=1000u64 {
    ///     h.record(v);
    /// }
    /// // The true median is 500; the interpolated estimate stays within
    /// // the hit bucket [512, 1024) width instead of answering 1023.
    /// let p50 = h.quantile(0.5).unwrap();
    /// assert!((p50 - 500.0).abs() <= 512.0);
    /// assert!(p50 < h.quantile_upper_bound(0.5).unwrap() as f64 + 1.0);
    /// ```
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                if i == 0 {
                    // Bucket 0 holds only the value 0.
                    return Some(0.0);
                }
                // Bucket i (i >= 1) covers [2^(i-1), 2^i); bucket 64's upper
                // edge is clamped to just past u64::MAX.
                let lo = (1u128 << (i - 1)) as f64;
                let hi = if i >= 64 {
                    (u64::MAX as f64) + 1.0
                } else {
                    (1u128 << i) as f64
                };
                let frac = (target - seen) as f64 / c as f64;
                return Some(lo + frac * (hi - lo));
            }
            seen += c;
        }
        Some(u64::MAX as f64)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// An exact-percentile collector that stores every sample.
///
/// Use for experiment-sized data (up to a few million points); use
/// [`Log2Histogram`] on unbounded hot paths.
///
/// # Examples
///
/// ```
/// use cim_sim::stats::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100u64 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.percentile(50.0), Some(50.0));
/// assert_eq!(s.percentile(99.0), Some(99.0));
/// assert_eq!(s.percentile(100.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN sample");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (nearest-rank method); `None` when empty.
    ///
    /// Costs O(n log n) when any [`record`](Self::record) happened since
    /// the last percentile query (the backing vector is re-sorted); later
    /// queries without intervening records are O(1). When querying several
    /// percentiles after a batch of records, prefer
    /// [`percentiles`](Self::percentiles), which sorts once.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(self.percentile_sorted(p))
    }

    /// The percentiles at each requested rank, with a single sort.
    ///
    /// Returns one value per entry of `ps`, in the same order, or `None`
    /// when no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if any rank is outside `[0, 100]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cim_sim::stats::Samples;
    ///
    /// let mut s = Samples::new();
    /// for v in 1..=100u64 {
    ///     s.record(v as f64);
    /// }
    /// assert_eq!(s.percentiles(&[50.0, 90.0, 99.0]), Some(vec![50.0, 90.0, 99.0]));
    /// ```
    pub fn percentiles(&mut self, ps: &[f64]) -> Option<Vec<f64>> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(ps.iter().map(|&p| self.percentile_sorted(p)).collect())
    }

    /// Nearest-rank lookup; requires `values` sorted and non-empty.
    fn percentile_sorted(&self, p: f64) -> f64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0,100], got {p}"
        );
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.values[rank.min(n) - 1]
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(5.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let median = h.quantile_upper_bound(0.5).expect("non-empty");
        assert!((511..=1023).contains(&median), "median bound {median}");
        assert_eq!(h.quantile_upper_bound(1.0), Some(1023));
        assert!(Log2Histogram::new().quantile_upper_bound(0.5).is_none());
    }

    #[test]
    fn histogram_interpolated_quantile_stays_inside_the_hit_bucket() {
        let mut h = Log2Histogram::new();
        let mut s = Samples::new();
        for v in 1..=1000u64 {
            h.record(v);
            s.record(v as f64);
        }
        for (q, p) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let est = h.quantile(q).expect("non-empty");
            let exact = s.percentile(p).expect("non-empty");
            let bucket = Log2Histogram::bucket_of(exact as u64);
            let width = if bucket == 0 {
                1.0
            } else {
                (1u128 << (bucket - 1)) as f64
            };
            assert!(
                (est - exact).abs() <= width,
                "q={q}: interpolated {est} vs exact {exact} (bucket width {width})"
            );
            let bound = h.quantile_upper_bound(q).expect("non-empty") as f64;
            assert!(
                est <= bound + 1.0,
                "q={q}: {est} exceeds upper bound {bound}"
            );
        }
        // Edge cases: empty histogram, the zero bucket, the top bucket.
        assert!(Log2Histogram::new().quantile(0.5).is_none());
        let mut z = Log2Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), Some(0.0));
        let mut top = Log2Histogram::new();
        top.record(u64::MAX);
        assert!(top.quantile(1.0).unwrap() >= (1u64 << 63) as f64);
    }

    #[test]
    fn histogram_handles_u64_max() {
        // Regression: bucket 64's upper bound used to be computed as
        // `(1u128 << 64) as u64 - 1`, which truncates to 0 before the
        // subtraction (debug panic / wrong value in release).
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(64), 1);
        assert_eq!(h.quantile_upper_bound(0.5), Some(u64::MAX));
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX as u128);
        // Bucket 63 (values 2^62..2^63) is unaffected by the clamp.
        let mut h63 = Log2Histogram::new();
        h63.record(1u64 << 62);
        assert_eq!(h63.quantile_upper_bound(1.0), Some((1u64 << 63) - 1));
    }

    #[test]
    fn samples_percentiles_batch_matches_single() {
        let mut s = Samples::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            s.record(v);
        }
        let batch = s.percentiles(&[0.0, 50.0, 100.0]).unwrap();
        assert_eq!(batch, vec![1.0, 5.0, 9.0]);
        for (i, p) in [0.0, 50.0, 100.0].into_iter().enumerate() {
            assert_eq!(s.percentile(p), Some(batch[i]));
        }
        assert!(Samples::new().percentiles(&[50.0]).is_none());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(3), 2);
        assert!((a.mean() - (110.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn samples_percentiles_exact() {
        let mut s = Samples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(3.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.mean(), 3.0);
        assert!(Samples::new().percentile(50.0).is_none());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }
}
