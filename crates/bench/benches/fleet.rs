//! Fleet serving wall-clock — the recorded baseline for the
//! multi-device router tier (`BENCH_fleet.json`).
//!
//! Times one fleet failover comparison (CIM fleet with the standard
//! two-outage campaign, then the cluster baseline replaying the same
//! arrival record) at a bench-sized request count. Wall clock is the
//! only thing that varies between machines; the modeled fleet numbers
//! are bit-identical everywhere.
//!
//! ```text
//! cargo bench --bench fleet > BENCH_fleet.json
//! ```

use cim_bench::experiments::fleet::{
    cluster_classes, cluster_state_bytes, default_scenario, machine_events, outage_events,
    run_fleet, FleetScenario,
};
use cim_bench::harness::Group;
use cim_fabric::service::ServiceConfig;

const N_REQUESTS: usize = 600;

fn main() {
    cim_bench::harness::emit_calibration();
    let scenario = FleetScenario {
        requests: N_REQUESTS,
        ..default_scenario()
    };
    let mut g = Group::new("fleet");

    // Deterministic pre-run for the honest throughput denominator (the
    // completed count, not the offered count).
    let pre = run_fleet(&scenario);
    g.throughput(pre.completed as u64);
    g.bench("failover_analytic_4dev", || run_fleet(&scenario).completed);

    // The cluster side replays a fixed arrival record; time just the
    // replay so the record reflects the baseline model, not the fleet.
    let arrivals = pre.arrivals;
    let cfg = cim_baseline::serving::ClusterServeConfig::like_fleet(
        scenario.devices,
        scenario.replicas,
        ServiceConfig::default().queue_capacity,
        cluster_state_bytes(),
    );
    let classes = cluster_classes();
    let events = machine_events(&outage_events(&scenario));
    let cluster_completed =
        cim_baseline::serving::serve(&cfg, &classes, &arrivals, &events).completed;
    g.throughput(cluster_completed as u64);
    g.bench("cluster_replay_4dev", || {
        cim_baseline::serving::serve(&cfg, &classes, &arrivals, &events).completed
    });
    g.finish();
}
