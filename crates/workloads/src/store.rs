//! Storage workloads (Table 2 rows "KVSs", "Data Bases (analytics)",
//! "Data Bases (transactions)").
//!
//! All three carry real storage engines: an open-addressing hash table
//! with Zipf access, a columnar scan/aggregate, and an OCC-style
//! transaction loop with write-ahead logging.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::{DataflowForm, Workload};
use cim_dataflow::graph::GraphBuilder;
use cim_dataflow::ops::{Elementwise, Operation, Reduction};
use cim_sim::rng::Rng;
use cim_sim::rng::{splitmix64, Zipf};
use cim_sim::SeedTree;

/// Key-value store with Zipf-skewed gets/puts.
#[derive(Debug, Clone)]
pub struct KvStore {
    /// Distinct keys pre-loaded.
    pub keys: usize,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Operations issued (90 % get, 10 % put).
    pub ops: usize,
    /// Zipf skew of key popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvStore {
    /// The standard TAB2 size: 100 k keys × 64 B values, 250 k ops.
    fn default() -> Self {
        KvStore {
            keys: 100_000,
            value_bytes: 64,
            ops: 250_000,
            skew: 0.9,
            seed: 29,
        }
    }
}

impl KvStore {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        KvStore {
            keys: 1_000,
            value_bytes: 16,
            ops: 2_000,
            skew: 0.8,
            seed: 29,
        }
    }

    fn slot_count(&self) -> usize {
        (self.keys * 2).next_power_of_two()
    }

    /// Runs the op mix against a real open-addressing table; returns
    /// `(hits, probe_total, hottest_key_ops)`.
    pub fn run(&self) -> (u64, u64, u64) {
        let slots = self.slot_count();
        let mask = (slots - 1) as u64;
        let mut table: Vec<Option<(u64, Vec<u8>)>> = vec![None; slots];
        let insert = |table: &mut Vec<Option<(u64, Vec<u8>)>>, key: u64, val: Vec<u8>| -> u64 {
            let mut probes = 1u64;
            let mut i = (splitmix64(key) & mask) as usize;
            loop {
                match &table[i] {
                    Some((k, _)) if *k == key => {
                        table[i] = Some((key, val));
                        return probes;
                    }
                    None => {
                        table[i] = Some((key, val));
                        return probes;
                    }
                    _ => {
                        i = (i + 1) & mask as usize;
                        probes += 1;
                    }
                }
            }
        };
        for k in 0..self.keys as u64 {
            insert(&mut table, k, vec![(k & 0xFF) as u8; self.value_bytes]);
        }
        let zipf = Zipf::new(self.keys, self.skew);
        let mut rng = SeedTree::new(self.seed).rng("kvs");
        let (mut hits, mut probes_total, mut hottest) = (0u64, 0u64, 0u64);
        for _ in 0..self.ops {
            let key = zipf.sample(&mut rng) as u64;
            if key == 0 {
                hottest += 1;
            }
            if rng.gen::<f64>() < 0.9 {
                // get
                let mut i = (splitmix64(key) & mask) as usize;
                let mut probes = 1u64;
                loop {
                    match &table[i] {
                        Some((k, v)) if *k == key => {
                            std::hint::black_box(v.len());
                            hits += 1;
                            break;
                        }
                        None => break,
                        _ => {
                            i = (i + 1) & mask as usize;
                            probes += 1;
                        }
                    }
                }
                probes_total += probes;
            } else {
                probes_total += insert(&mut table, key, vec![0xAB; self.value_bytes]);
            }
        }
        (hits, probes_total, hottest)
    }

    /// Generates the byte-address stream of the op mix (slot probes +
    /// value transfers), for replay through the trace-driven cache and
    /// DRAM models: Zipf-skewed point lookups over a multi-megabyte
    /// table — the canonical random-access victim.
    pub fn memory_trace(&self) -> Vec<u64> {
        let slots = self.slot_count() as u64;
        let slot_bytes = (16 + self.value_bytes) as u64;
        let zipf = Zipf::new(self.keys, self.skew);
        let mut rng = SeedTree::new(self.seed).rng("kvs-trace");
        let mut trace = Vec::with_capacity(self.ops * 3);
        for _ in 0..self.ops {
            let key = zipf.sample(&mut rng) as u64;
            let slot = splitmix64(key) % slots;
            let base = slot * slot_bytes;
            // Header probe, then the first words of the value.
            trace.push(base);
            trace.push(base + 16);
            trace.push(base + 16 + 32.min(self.value_bytes as u64 / 2));
        }
        trace
    }
}

impl Workload for KvStore {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::KeyValueStores
    }

    fn characterize(&self) -> Characteristics {
        let (hits, probes, hottest) = self.run();
        std::hint::black_box(hits);
        let ops = self.ops as u64;
        // Hashing + compare per probe ≈ 6 ops.
        let flops = probes * 6;
        let footprint = (self.slot_count() * (16 + self.value_bytes)) as u64;
        // Per probe: slot header (16 B); per op: value transfer.
        let moved = probes * 16 + ops * self.value_bytes as u64;
        // Group-commit flushes: every 1000 ops sync 8 KiB of dirty state.
        let comm = (ops / 1000) * 8192;
        // Same-key operations serialize; the hottest key is the span.
        let span = hottest * 6;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }
}

/// Columnar analytics: filtered aggregation over a fact table.
#[derive(Debug, Clone)]
pub struct ColumnAnalytics {
    /// Rows in the fact table.
    pub rows: usize,
    /// Scan partitions (parallelism grain).
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ColumnAnalytics {
    /// The standard TAB2 size: 2 M rows × 4 columns, 128 partitions.
    fn default() -> Self {
        ColumnAnalytics {
            rows: 2_000_000,
            partitions: 128,
            seed: 31,
        }
    }
}

impl ColumnAnalytics {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        ColumnAnalytics {
            rows: 10_000,
            partitions: 8,
            seed: 31,
        }
    }

    /// Runs `SELECT sum(c2), count(*) WHERE c0 > θ AND c1 < θ2` over a
    /// generated table; returns `(sum, count)`.
    pub fn run(&self) -> (f64, u64) {
        let mut rng = SeedTree::new(self.seed).rng("analytics");
        let n = self.rows;
        let c0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let c1: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let c2: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let c3: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        std::hint::black_box(c3.len());
        let mut sum = 0.0;
        let mut count = 0u64;
        for i in 0..n {
            if c0[i] > 50.0 && c1[i] < 75.0 {
                sum += c2[i];
                count += 1;
            }
        }
        (sum, count)
    }

    /// Generates the byte-address stream of the scan (three columns read
    /// sequentially, row at a time) for replay through the cache and
    /// DRAM models: the canonical streaming access pattern.
    pub fn memory_trace(&self) -> Vec<u64> {
        let n = self.rows as u64;
        let col_bytes = n * 8;
        let mut trace = Vec::with_capacity(self.rows * 3);
        for i in 0..n {
            trace.push(i * 8); // c0
            trace.push(col_bytes + i * 8); // c1
            trace.push(2 * col_bytes + i * 8); // c2
        }
        trace
    }
}

impl Workload for ColumnAnalytics {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::DatabasesAnalytics
    }

    fn characterize(&self) -> Characteristics {
        let (sum, count) = self.run();
        std::hint::black_box((sum, count));
        let rows = self.rows as u64;
        // Two predicates + conditional accumulate ≈ 4 ops/row, plus
        // per-partition merge.
        let flops = rows * 4 + self.partitions as u64 * 2;
        let footprint = rows * 4 * 8;
        let moved = rows * 3 * 8 + self.partitions as u64 * 16;
        // Partial aggregates exchanged at the merge point.
        let comm = self.partitions as u64 * 16;
        // Rows scan in parallel across partitions; each partition is a
        // serial accumulation.
        let span = (rows / self.partitions as u64) * 4;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }

    fn dataflow(&self) -> Option<DataflowForm> {
        // The scan/aggregate as dataflow: a row-batch flows through a
        // predicate map and a sum reduction.
        let width = 256;
        let mut b = GraphBuilder::new();
        let src = b.add("row_batch", Operation::Source { width });
        let filt = b.add(
            "predicate",
            Operation::Map {
                func: Elementwise::Relu, // x>0 passes, else contributes 0
                width,
            },
        );
        let agg = b.add(
            "aggregate",
            Operation::Reduce {
                kind: Reduction::Sum,
                width,
            },
        );
        let sink = b.add("partial", Operation::Sink { width: 1 });
        b.chain(&[src, filt, agg, sink]).ok()?;
        let graph = b.build().ok()?;
        Some(DataflowForm {
            graph,
            source: src,
            sink,
        })
    }
}

/// OCC transactions with write-ahead logging over a row store.
#[derive(Debug, Clone)]
pub struct Transactions {
    /// Rows in the store.
    pub rows: usize,
    /// Row payload bytes.
    pub row_bytes: usize,
    /// Transactions executed.
    pub txns: usize,
    /// Zipf skew of row popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Transactions {
    /// The standard TAB2 size: 40 k rows × 64 B, 10 k transactions.
    fn default() -> Self {
        Transactions {
            rows: 40_000,
            row_bytes: 64,
            txns: 10_000,
            skew: 0.6,
            seed: 37,
        }
    }
}

impl Transactions {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        Transactions {
            rows: 1_000,
            row_bytes: 32,
            txns: 500,
            skew: 0.9,
            seed: 37,
        }
    }

    /// Runs the transaction mix; returns `(commits, aborts, hottest_row_touches)`.
    pub fn run(&self) -> (u64, u64, u64) {
        let mut rng = SeedTree::new(self.seed).rng("txn");
        let zipf = Zipf::new(self.rows, self.skew);
        let mut versions = vec![0u64; self.rows];
        let mut store: Vec<Vec<u8>> = (0..self.rows)
            .map(|i| vec![(i & 0xFF) as u8; self.row_bytes])
            .collect();
        let (mut commits, mut aborts, mut hottest) = (0u64, 0u64, 0u64);
        for _ in 0..self.txns {
            // Read set of 4, write set of 2 (subset of reads).
            let rows: Vec<usize> = (0..4).map(|_| zipf.sample(&mut rng)).collect();
            hottest += rows.iter().filter(|&&r| r == 0).count() as u64;
            let read_versions: Vec<u64> = rows.iter().map(|&r| versions[r]).collect();
            // "Work": checksum the read rows.
            let mut acc = 0u64;
            for &r in &rows {
                for &b in &store[r] {
                    acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
                }
            }
            // Validate (OCC): simulate a concurrent writer bumping a hot
            // row 2 % of the time.
            if rng.gen::<f64>() < 0.02 {
                versions[rows[0]] += 1;
            }
            let valid = rows
                .iter()
                .zip(&read_versions)
                .all(|(&r, &v)| versions[r] == v);
            if valid {
                for &r in &rows[..2] {
                    store[r][0] = (acc & 0xFF) as u8;
                    versions[r] += 1;
                }
                commits += 1;
            } else {
                aborts += 1;
            }
        }
        (commits, aborts, hottest)
    }
}

impl Workload for Transactions {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::DatabasesTransactions
    }

    fn characterize(&self) -> Characteristics {
        let (commits, aborts, hottest) = self.run();
        std::hint::black_box(aborts);
        let txns = self.txns as u64;
        // Checksumming 4 rows (2 ops/byte) + validation + updates.
        let per_txn = 4 * self.row_bytes as u64 * 2 + 30;
        let flops = txns * per_txn;
        let footprint = (self.rows * (self.row_bytes + 8)) as u64;
        let moved = txns * (6 * self.row_bytes as u64 + 64);
        // WAL append per commit: ~100 B of durable log.
        let comm = commits * 100;
        // Conflicting touches of the hottest row serialize.
        let span = hottest * per_txn;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn kvs_gets_mostly_hit() {
        let (hits, probes, _) = KvStore::small().run();
        assert!(hits > 1_500, "most gets hit pre-loaded keys: {hits}");
        assert!(probes >= 2_000, "every op probes at least once");
    }

    #[test]
    fn kvs_buckets() {
        let l = KvStore::default().characterize().bucketize();
        assert_eq!(l.compute, Level::Low);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.op_intensity, Level::Low);
        assert!(l.parallelism >= Level::Medium);
    }

    #[test]
    fn analytics_result_is_plausible() {
        let (sum, count) = ColumnAnalytics::small().run();
        // Selectivity ≈ 0.5 × 0.75; mean(c2) = 5.
        let expected = 10_000.0 * 0.375;
        assert!((count as f64 - expected).abs() < expected * 0.15);
        assert!((sum / count as f64 - 5.0).abs() < 0.5);
    }

    #[test]
    fn analytics_buckets() {
        let l = ColumnAnalytics::default().characterize().bucketize();
        assert_eq!(l.compute, Level::Low);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.bandwidth, Level::High);
        assert_eq!(l.op_intensity, Level::Low);
        assert_eq!(l.parallelism, Level::High);
        assert!(l.communication <= Level::Medium);
    }

    #[test]
    fn transactions_commit_mostly() {
        let (commits, aborts, _) = Transactions::small().run();
        assert_eq!(commits + aborts, 500);
        assert!(commits > 400, "low conflict rate: {commits}");
        assert!(aborts > 0, "some validation failures expected");
    }

    #[test]
    fn transactions_buckets() {
        let l = Transactions::default().characterize().bucketize();
        assert_eq!(l.compute, Level::Medium);
        assert_eq!(l.size, Level::Medium);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.parallelism, Level::Medium);
    }

    #[test]
    fn analytics_dataflow_form() {
        let df = ColumnAnalytics::small().dataflow().unwrap();
        assert_eq!(df.graph.sinks().len(), 1);
    }
}
