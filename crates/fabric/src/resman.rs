//! Resource management: load information, balancing, pinning and closed
//! loops (paper §IV.C).
//!
//! The farm executor demonstrates *dynamic dataflow* (§III.B): one
//! operator replicated across several micro-units, with each incoming item
//! routed by a [`RoutePolicy`] — explicitly (hash of the packet tag),
//! implicitly (least-loaded, read from fabric state), or pinned. The
//! [`SlaController`] closes the loop: it widens the replica set until the
//! stream meets its latency target.

use crate::device::CimDevice;
use crate::error::{FabricError, Result};
use crate::unit::UnitHealth;
use cim_dataflow::ops::Operation;
use cim_dataflow::program::{RoutePolicy, RouteState};
use cim_sim::time::{SimDuration, SimTime};

/// Per-unit load telemetry (§IV.C "load information management").
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Busy time accumulated per unit.
    pub busy: Vec<SimDuration>,
    /// Items processed per unit.
    pub items: Vec<u64>,
}

impl LoadReport {
    /// Snapshot of the whole device.
    pub fn capture(device: &CimDevice) -> LoadReport {
        LoadReport {
            busy: device.units().iter().map(|u| u.busy_accum()).collect(),
            items: device.units().iter().map(|u| u.items_processed()).collect(),
        }
    }

    /// Load imbalance across a unit subset: max/mean of items processed.
    /// 1.0 is perfectly balanced; `None` if nothing was processed.
    pub fn imbalance(&self, units: &[usize]) -> Option<f64> {
        let counts: Vec<u64> = units.iter().map(|&u| self.items[u]).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / counts.len() as f64;
        let max = *counts.iter().max().expect("non-empty") as f64;
        Some(max / mean)
    }
}

/// Result of a farm run.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Output of each item, in input order.
    pub outputs: Vec<Vec<f64>>,
    /// Completion time of each item.
    pub completed: Vec<SimTime>,
    /// Injection time of each item (`inter_arrival` apart).
    pub injected: Vec<SimTime>,
    /// Which replica processed each item.
    pub assignments: Vec<usize>,
    /// Device unit index hosting each replica, replica-index order.
    pub replica_units: Vec<usize>,
}

impl FarmReport {
    /// Latency of each item relative to its injection time.
    pub fn latencies(&self, injected: &[SimTime]) -> Vec<SimDuration> {
        self.completed
            .iter()
            .zip(injected)
            .map(|(&c, &i)| c.saturating_since(i))
            .collect()
    }

    /// The `p`-quantile per-item latency, measured from each item's own
    /// injection time — the same per-item latencies
    /// [`FarmReport::latencies`] reports, not wall-clock completion
    /// times (items arrive `inter_arrival` apart, so measuring from
    /// time zero would overstate late items' latency).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or the report is empty.
    pub fn latency_quantile(&self, p: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        assert!(!self.completed.is_empty(), "empty farm report");
        let mut lats = self.latencies(&self.injected);
        lats.sort_unstable();
        let rank = ((p * lats.len() as f64).ceil().max(1.0) as usize).min(lats.len());
        lats[rank - 1]
    }
}

/// Replicates `op` on `replica_count` free units and routes `items`
/// through them per `policy`. Items are injected `inter_arrival` apart.
///
/// # Errors
///
/// Returns [`FabricError::CapacityExceeded`] if not enough free units
/// exist, or propagates execution errors.
pub fn run_farm(
    device: &mut CimDevice,
    op: &Operation,
    replica_count: usize,
    items: &[Vec<f64>],
    inter_arrival: SimDuration,
    policy: &dyn RoutePolicy,
) -> Result<FarmReport> {
    if replica_count == 0 {
        return Err(FabricError::InvalidConfig {
            reason: "farm needs at least one replica".to_owned(),
        });
    }
    // Spread replicas across distinct tiles (round-robin, tile order)
    // before doubling up on any one tile: replicas exist for parallel
    // service and independent failure, so packing them into one tile
    // neighbourhood — what a first-N scan does — defeats both. This is
    // the farm-side counterpart of [`MappingPolicy::LocalityAware`],
    // which clusters *chained* nodes; sibling replicas want the
    // opposite: maximal spread.
    let mut tiles: Vec<cim_noc::packet::NodeId> = Vec::new();
    let mut per_tile: Vec<Vec<usize>> = Vec::new();
    let mut available = 0usize;
    for u in device
        .units()
        .iter()
        .filter(|u| u.health() == UnitHealth::Healthy && u.assigned_node().is_none())
    {
        available += 1;
        match tiles.iter().position(|&t| t == u.tile()) {
            Some(i) => per_tile[i].push(u.index()),
            None => {
                tiles.push(u.tile());
                per_tile.push(vec![u.index()]);
            }
        }
    }
    if available < replica_count {
        return Err(FabricError::CapacityExceeded {
            needed: replica_count,
            available,
        });
    }
    let mut free = Vec::with_capacity(replica_count);
    let mut depth = 0usize;
    while free.len() < replica_count {
        for column in &per_tile {
            if let Some(&u) = column.get(depth) {
                free.push(u);
                if free.len() == replica_count {
                    break;
                }
            }
        }
        depth += 1;
    }
    let seeds = device.seeds().child("farm");
    let config = device.config().clone();
    for &u in &free {
        device.unit_mut(u).assign(usize::MAX, op, &config, seeds)?;
    }

    let mut report = FarmReport {
        outputs: Vec::with_capacity(items.len()),
        completed: Vec::with_capacity(items.len()),
        injected: Vec::with_capacity(items.len()),
        assignments: Vec::with_capacity(items.len()),
        replica_units: free.clone(),
    };
    for (i, item) in items.iter().enumerate() {
        let release = SimTime::ZERO + inter_arrival * i as u64;
        // Queue depth = pending time at each replica, in microseconds.
        let state = RouteState {
            queue_depths: free
                .iter()
                .map(|&u| {
                    let backlog = device.unit(u).busy_until().saturating_since(release);
                    backlog.as_us_f64().ceil() as usize
                })
                .collect(),
        };
        let choice = policy.select(i as u64, &state)?;
        let unit = free[choice];
        let (values, done, energy) =
            device
                .unit_mut(unit)
                .execute(op, &[item.as_slice()], release, &config)?;
        device.meter_mut().charge("compute", energy);
        report.outputs.push(values);
        report.completed.push(done);
        report.injected.push(release);
        report.assignments.push(choice);
    }
    Ok(report)
}

/// A closed-loop controller (§IV.C "enabling closed loops"): grows the
/// replica set until the stream's p99 latency meets the SLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaController {
    /// Latency target for the 99th percentile.
    pub p99_target: SimDuration,
    /// Replica ceiling (resource budget).
    pub max_replicas: usize,
}

impl SlaController {
    /// Runs the loop: tries 1, 2, 4, ... replicas until the target is met
    /// or the budget is exhausted. Returns `(replicas, achieved_p99)`.
    ///
    /// The device is reset between probes via fresh assignment of spare
    /// units, so each probe needs `replicas` free units.
    ///
    /// # Errors
    ///
    /// Propagates farm errors (including capacity exhaustion).
    pub fn autoscale(
        &self,
        device: &mut CimDevice,
        op: &Operation,
        items: &[Vec<f64>],
        inter_arrival: SimDuration,
        policy: &dyn RoutePolicy,
    ) -> Result<(usize, SimDuration)> {
        let mut replicas = 1;
        loop {
            let report = run_farm(device, op, replicas, items, inter_arrival, policy)?;
            let p99 = report.latency_quantile(0.99);
            if p99 <= self.p99_target || replicas >= self.max_replicas {
                return Ok((replicas, p99));
            }
            replicas = (replicas * 2).min(self.max_replicas);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use cim_dataflow::ops::Elementwise;
    use cim_dataflow::program::{HashRoute, LeastLoadedRoute};

    fn device() -> CimDevice {
        CimDevice::new(FabricConfig::default()).unwrap()
    }

    fn heavy_op() -> Operation {
        Operation::Map {
            func: Elementwise::Sigmoid,
            width: 4096,
        }
    }

    fn items(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64; 4096]).collect()
    }

    #[test]
    fn farm_computes_correct_outputs() {
        let mut d = device();
        let op = Operation::Map {
            func: Elementwise::Scale(3.0),
            width: 4,
        };
        let report = run_farm(
            &mut d,
            &op,
            2,
            &[vec![1.0; 4], vec![2.0; 4]],
            SimDuration::ZERO,
            &HashRoute,
        )
        .unwrap();
        assert_eq!(report.outputs[0], vec![3.0; 4]);
        assert_eq!(report.outputs[1], vec![6.0; 4]);
    }

    #[test]
    fn more_replicas_cut_latency_under_saturation() {
        let mut d1 = device();
        let r1 = run_farm(
            &mut d1,
            &heavy_op(),
            1,
            &items(16),
            SimDuration::ZERO,
            &LeastLoadedRoute,
        )
        .unwrap();
        let mut d4 = device();
        let r4 = run_farm(
            &mut d4,
            &heavy_op(),
            4,
            &items(16),
            SimDuration::ZERO,
            &LeastLoadedRoute,
        )
        .unwrap();
        assert!(
            r4.latency_quantile(0.99) < r1.latency_quantile(0.99) / 2,
            "4 replicas should cut p99 substantially"
        );
    }

    #[test]
    fn least_loaded_balances_items() {
        let mut d = device();
        let report = run_farm(
            &mut d,
            &heavy_op(),
            4,
            &items(64),
            SimDuration::ZERO,
            &LeastLoadedRoute,
        )
        .unwrap();
        let mut counts = [0u64; 4];
        for &a in &report.assignments {
            counts[a] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 16, "round-robin-like balance expected: {counts:?}");
        }
        let load = LoadReport::capture(&d);
        let used: Vec<usize> = d
            .units()
            .iter()
            .filter(|u| u.items_processed() > 0)
            .map(|u| u.index())
            .collect();
        let imb = load.imbalance(&used).unwrap();
        assert!(imb < 1.1, "imbalance {imb}");
    }

    #[test]
    fn pinning_via_explicit_policy() {
        // A policy that pins every item to replica 0 (§IV.C pinning).
        #[derive(Debug)]
        struct Pin;
        impl RoutePolicy for Pin {
            fn select(&self, _tag: u64, state: &RouteState) -> cim_dataflow::Result<usize> {
                if state.queue_depths.is_empty() {
                    Err(cim_dataflow::DataflowError::InvalidOperation {
                        reason: "no candidates".into(),
                    })
                } else {
                    Ok(0)
                }
            }
        }
        let mut d = device();
        let report = run_farm(&mut d, &heavy_op(), 3, &items(9), SimDuration::ZERO, &Pin).unwrap();
        assert!(report.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn sla_controller_scales_until_target() {
        let mut d = device();
        // A strict target that one replica cannot meet under saturation.
        let one_replica_p99 = {
            let mut probe = device();
            run_farm(
                &mut probe,
                &heavy_op(),
                1,
                &items(16),
                SimDuration::ZERO,
                &LeastLoadedRoute,
            )
            .unwrap()
            .latency_quantile(0.99)
        };
        let ctl = SlaController {
            p99_target: one_replica_p99 / 4,
            max_replicas: 16,
        };
        let (replicas, achieved) = ctl
            .autoscale(
                &mut d,
                &heavy_op(),
                &items(16),
                SimDuration::ZERO,
                &LeastLoadedRoute,
            )
            .unwrap();
        assert!(replicas > 1, "controller must scale out");
        assert!(achieved <= ctl.p99_target, "target met: {achieved}");
    }

    #[test]
    fn quantile_measured_from_injection_times() {
        // Regression: `latency_quantile` used to rank completion times
        // measured from `SimTime::ZERO`, overstating late items' latency
        // whenever `inter_arrival > 0`. Both latency paths must agree.
        let mut d = device();
        let gap = SimDuration::from_us(50);
        let report = run_farm(&mut d, &heavy_op(), 2, &items(16), gap, &LeastLoadedRoute).unwrap();
        let mut lats = report.latencies(&report.injected);
        lats.sort_unstable();
        for (p, rank) in [(0.5, 8usize), (0.99, 16), (1.0, 16)] {
            assert_eq!(report.latency_quantile(p), lats[rank - 1], "p={p}");
        }
        // With a wide gap each item's own latency stays bounded even
        // though the last item *completes* far from time zero.
        let wall_clock_last = report.completed[15].saturating_since(SimTime::ZERO);
        assert!(
            report.latency_quantile(1.0) < wall_clock_last,
            "quantile must not be measured from time zero"
        );
    }

    #[test]
    fn replicas_spread_across_tiles() {
        // Regression: a first-N scan packed all replicas onto the first
        // tile neighbourhood; sibling replicas must land on distinct
        // tiles while distinct tiles remain.
        let mut d = device();
        let per_tile = d.units_on_tile(d.units()[0].tile()).len();
        let replicas = per_tile * 2; // a first-N scan would span only 2 tiles
        let report = run_farm(
            &mut d,
            &heavy_op(),
            replicas,
            &items(replicas),
            SimDuration::ZERO,
            &LeastLoadedRoute,
        )
        .unwrap();
        assert_eq!(report.replica_units.len(), replicas);
        let mut tiles: Vec<_> = report
            .replica_units
            .iter()
            .map(|&u| d.unit(u).tile())
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert!(
            tiles.len() >= replicas.min(8),
            "replicas packed onto {} tiles, expected spread: {:?}",
            tiles.len(),
            report.replica_units
        );
    }

    #[test]
    fn farm_capacity_errors() {
        let mut d = device();
        assert!(matches!(
            run_farm(
                &mut d,
                &heavy_op(),
                0,
                &items(1),
                SimDuration::ZERO,
                &HashRoute
            ),
            Err(FabricError::InvalidConfig { .. })
        ));
        assert!(matches!(
            run_farm(
                &mut d,
                &heavy_op(),
                1000,
                &items(1),
                SimDuration::ZERO,
                &HashRoute
            ),
            Err(FabricError::CapacityExceeded { .. })
        ));
    }
}
