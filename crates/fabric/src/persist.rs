//! Crash persistence: the nonvolatile / volatile partition of device
//! state, and the power-cycle recovery pass (Memento-style).
//!
//! Memristive CIM state is nonvolatile — programmed conductances survive
//! power loss (the paper's central premise). This module makes the
//! partition explicit:
//!
//! - **Nonvolatile** (captured in a [`PersistentImage`], survives a
//!   crash): per-unit health, node assignments, and the programmed
//!   analog engines — conductances *including* accumulated drift and
//!   aging state — plus the runtime's resident programs (the jobs map)
//!   and its id allocator.
//! - **Volatile** (lost on power loss): unit occupancy and busy
//!   horizons, NoC reservations and backlog gauges, the energy meter,
//!   the trace buffer, and the runtime's admission queue. In-flight
//!   requests are re-fenced by the service/fleet layers exactly the way
//!   whole-device failover voids them.
//!
//! [`CimRuntime::power_cycle`] is the crash: capture the NV image, wipe
//! everything volatile ([`crate::device::CimDevice::wipe_volatile`]),
//! restore the image, and report whether the post-restore volatile
//! state equals a fresh boot's ([`crate::device::CimDevice::volatile_pristine`]).
//! A `false` return is a *dirty restore* — the detectable half of the
//! recovery contract the chaos invariants pin.

use crate::engine::MappedProgram;
use crate::error::{FabricError, Result};
use crate::runtime::{CimRuntime, JobId};
use crate::unit::UnitHealth;
use cim_crossbar::dpe::DotProductEngine;

/// The nonvolatile slice of one micro-unit.
#[derive(Debug, Clone)]
struct UnitImage {
    health: UnitHealth,
    assigned_node: Option<usize>,
    dpe: Option<DotProductEngine>,
}

/// Everything that survives power loss, snapshotted from a
/// [`CimRuntime`].
///
/// Jobs are stored sorted by id so capture is deterministic regardless
/// of the runtime's hash-map iteration order.
#[derive(Debug, Clone)]
pub struct PersistentImage {
    units: Vec<UnitImage>,
    jobs: Vec<(JobId, MappedProgram)>,
    next_id: u64,
}

impl PersistentImage {
    /// Snapshots the nonvolatile state of a runtime: per-unit health,
    /// assignment and programmed engine (conductances + drift/aging),
    /// the resident programs, and the job-id allocator.
    pub fn capture(rt: &CimRuntime) -> Self {
        let units = rt
            .device
            .units()
            .iter()
            .map(|u| UnitImage {
                health: u.health(),
                assigned_node: u.assigned_node(),
                dpe: u.dpe().cloned(),
            })
            .collect();
        let mut jobs: Vec<(JobId, MappedProgram)> = rt
            .jobs
            .iter()
            .map(|(id, prog)| (*id, prog.clone()))
            .collect();
        jobs.sort_by_key(|(id, _)| *id);
        PersistentImage {
            units,
            jobs,
            next_id: rt.next_id,
        }
    }

    /// Restores the image into a runtime: every unit's nonvolatile
    /// slice, the jobs map, and the id allocator. Volatile state is
    /// left exactly as the caller prepared it (a recovery pass wipes it
    /// first; a weakened one does not — that is what the chaos
    /// invariants detect).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] if the runtime's device
    /// has a different unit count than the image was captured from.
    pub fn restore(&self, rt: &mut CimRuntime) -> Result<()> {
        if rt.device.units().len() != self.units.len() {
            return Err(FabricError::InvalidConfig {
                reason: format!(
                    "persistent image holds {} units but the device has {}",
                    self.units.len(),
                    rt.device.units().len()
                ),
            });
        }
        for (i, img) in self.units.iter().enumerate() {
            rt.device
                .unit_mut(i)
                .restore_nv(img.health, img.assigned_node, img.dpe.clone());
        }
        rt.jobs = self.jobs.iter().cloned().collect();
        rt.next_id = self.next_id;
        Ok(())
    }

    /// Resident programs held by the image.
    pub fn resident_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Units whose analog engine (programmed conductances) the image
    /// carries.
    pub fn programmed_units(&self) -> usize {
        self.units.iter().filter(|u| u.dpe.is_some()).count()
    }
}

impl CimRuntime {
    /// Snapshots this runtime's nonvolatile state.
    pub fn capture_image(&self) -> PersistentImage {
        PersistentImage::capture(self)
    }

    /// Restores a previously captured image into this runtime.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] on a device-shape
    /// mismatch.
    pub fn restore_image(&mut self, image: &PersistentImage) -> Result<()> {
        image.restore(self)
    }

    /// Simulates a power cycle: capture the NV image, wipe volatile
    /// state (unit occupancy + assignments, NoC reservations, energy
    /// meter, trace buffer, admission queue — the device reboots with
    /// total run-time amnesia), then restore the NV image: health,
    /// placements and programmed conductances come back without
    /// reprogramming, because memristors keep them.
    ///
    /// Returns whether the post-restore volatile state equals a fresh
    /// boot's. With `clear_volatile` (the correct recovery pass) this
    /// is always `true` and additionally `debug_assert`ed; passing
    /// `false` models a buggy restore that skips the wipe — the restart
    /// then inherits stale occupancy and the return value (a *dirty
    /// restore*) is how the chaos invariants detect it.
    pub fn power_cycle(&mut self, clear_volatile: bool) -> bool {
        let image = PersistentImage::capture(self);
        if clear_volatile {
            self.device.wipe_volatile();
            self.queue.clear();
        }
        image
            .restore(self)
            .expect("an image captured from this runtime matches its shape");
        let pristine = self.device.volatile_pristine();
        if clear_volatile {
            debug_assert!(
                pristine,
                "post-restore volatile state must equal a fresh boot's"
            );
        }
        // Re-publish scheduler gauges so the registry cannot carry a
        // stale queue depth or utilization across the restart.
        self.publish_sched_state("power_cycles");
        pristine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::engine::StreamOptions;
    use crate::mapper::MappingPolicy;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::{DataflowGraph, GraphBuilder, NodeRef};
    use cim_dataflow::ops::Operation;
    use std::collections::HashMap;

    fn runtime() -> CimRuntime {
        CimRuntime::new(FabricConfig {
            mesh_width: 4,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("runtime boots")
    }

    fn matvec_graph() -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 4 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 4,
                cols: 4,
                weights: (0..16).map(|i| ((i % 5) as f64 - 2.0) / 4.0).collect(),
            },
        );
        let k = b.add("k", Operation::Sink { width: 4 });
        b.chain(&[s, mv, k]).expect("chain");
        (b.build().expect("valid"), s, k)
    }

    #[test]
    fn power_cycle_keeps_programs_and_wipes_occupancy() {
        let mut rt = runtime();
        let (g, s, k) = matvec_graph();
        let job = rt
            .submit(g, MappingPolicy::LocalityAware)
            .expect("fits")
            .id();
        let input = HashMap::from([(s, vec![1.0, -0.5, 0.25, 2.0])]);
        let before = rt
            .run(job, std::slice::from_ref(&input), &StreamOptions::default())
            .expect("runs")
            .outputs[0][&k]
            .clone();
        assert!(!rt.device().volatile_pristine(), "the run left occupancy");

        let image = rt.capture_image();
        assert_eq!(image.resident_jobs(), 1);
        assert_eq!(image.programmed_units(), 1, "one matvec engine persists");

        assert!(rt.power_cycle(true), "clean restore is pristine");
        assert!(rt.device().volatile_pristine());
        assert_eq!(rt.running_jobs(), vec![job], "resident program survives");

        // The programmed conductances came back without reprogramming:
        // the same input produces the same output.
        let after = rt
            .run(job, &[input], &StreamOptions::default())
            .expect("runs after restart")
            .outputs[0][&k]
            .clone();
        assert_eq!(before, after, "NV conductances survive the crash");
    }

    #[test]
    fn skipping_the_volatile_wipe_is_a_detectable_dirty_restore() {
        let mut rt = runtime();
        let (g, s, _) = matvec_graph();
        let job = rt
            .submit(g, MappingPolicy::LocalityAware)
            .expect("fits")
            .id();
        rt.run(
            job,
            &[HashMap::from([(s, vec![1.0; 4])])],
            &StreamOptions::default(),
        )
        .expect("runs");
        assert!(
            !rt.power_cycle(false),
            "a restore that skips the wipe must report dirty"
        );
    }

    #[test]
    fn power_cycle_drops_the_admission_queue() {
        let mut rt = CimRuntime::new(FabricConfig {
            mesh_width: 8,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("runtime boots");
        let (g1, _, _) = matvec_graph();
        let (g2, _, _) = matvec_graph();
        let (g3, _, _) = matvec_graph();
        rt.submit(g1, MappingPolicy::LocalityAware).expect("fits");
        rt.submit(g2, MappingPolicy::LocalityAware).expect("fits");
        let queued = rt.submit(g3, MappingPolicy::LocalityAware).expect("queues");
        assert_eq!(rt.queued_jobs(), vec![queued.id()]);
        rt.power_cycle(true);
        assert!(
            rt.queued_jobs().is_empty(),
            "the admission queue is volatile"
        );
        assert_eq!(rt.running_jobs().len(), 2, "resident programs are not");
    }

    #[test]
    fn restore_rejects_a_mismatched_device() {
        let rt = runtime();
        let image = rt.capture_image();
        let mut other = CimRuntime::new(FabricConfig {
            mesh_width: 2,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("boots");
        assert!(other.restore_image(&image).is_err());
    }
}
