//! Serving load sweep: offered load through saturation (§III.E + §V.A).
//!
//! Boots one [`CimService`] per offered-load point — standard
//! three-tenant request mix resident in crossbars — and drives an
//! open-loop arrival stream through each. Light load completes within
//! SLO; past saturation the bounded admission queue sheds load and
//! deadline misses appear, while p99 of *admitted* requests stays
//! bounded by the queue depth. Points run in parallel on up to
//! `CIM_THREADS` host threads; every number is bit-identical at any
//! thread count.

use crate::harness::{parallel_points, parallel_points_threads};
use crate::table::TextTable;
use cim_fabric::service::{CimService, LatencyStats, ServiceConfig};
use cim_fabric::FabricConfig;
use cim_sim::telemetry::TelemetryLevel;
use cim_sim::SeedTree;
use cim_workloads::serving::standard_request_mix;

/// One offered-load operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPoint {
    /// Offered load, requests per second.
    pub rate_hz: f64,
    /// Requests offered by the arrival process.
    pub offered: usize,
    /// Requests past admission.
    pub admitted: usize,
    /// Requests shed at the full queue.
    pub shed: usize,
    /// Requests completed within deadline.
    pub completed: usize,
    /// Deadline misses.
    pub timed_out: usize,
    /// Requests whose retry budget ran out.
    pub failed: usize,
    /// §V.A mid-stream recoveries underneath requests.
    pub recoveries: usize,
    /// Latency distribution of admitted requests that finished.
    pub latency: LatencyStats,
    /// Full telemetry export of the point's device (byte-stable).
    pub telemetry_jsonl: String,
    /// SLO burn-rate alerts the point's observability pipeline fired,
    /// in firing order (empty at healthy operating points).
    pub alerts: Vec<cim_obs::AlertEvent>,
    /// Windowed time-series export (`kind: "series"` JSONL, byte-stable).
    pub series_jsonl: String,
}

/// The default sweep: light load through ~8× saturation.
pub const DEFAULT_RATES: [f64; 6] = [
    20_000.0,
    100_000.0,
    400_000.0,
    800_000.0,
    1_600_000.0,
    3_200_000.0,
];

fn run_point(rate_hz: f64, n: usize, seed: u64) -> ServingPoint {
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(seed),
    )
    .expect("service boots");
    let tel = svc
        .runtime_mut()
        .device_mut()
        .enable_telemetry(TelemetryLevel::Metrics);
    svc.enable_observability(cim_obs::ObsConfig::default());
    // Same resident models at every point; only the arrival seed and
    // rate vary, so the sweep isolates the load axis.
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(seed ^ 0x7E4A47));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .expect("mix is resident on the default fabric");
    }
    let r = svc.run_open_loop(rate_hz, n, &[]).expect("stream serves");
    ServingPoint {
        rate_hz,
        offered: r.offered,
        admitted: r.admitted,
        shed: r.shed,
        completed: r.completed,
        timed_out: r.timed_out,
        failed: r.failed,
        recoveries: r.recoveries,
        latency: r.latency,
        telemetry_jsonl: tel.export_jsonl(),
        alerts: r.alerts,
        series_jsonl: r.series_jsonl,
    }
}

/// Sweeps the offered-load axis, `n` requests per point, on up to
/// `CIM_THREADS` host threads.
pub fn run(rates: &[f64], n: usize, seed: u64) -> Vec<ServingPoint> {
    parallel_points(rates, |i, &rate| run_point(rate, n, seed ^ (i as u64)))
}

/// [`run`] with an explicit thread count (determinism tests).
pub fn run_threads(rates: &[f64], n: usize, seed: u64, threads: usize) -> Vec<ServingPoint> {
    parallel_points_threads(threads, rates, |i, &rate| {
        run_point(rate, n, seed ^ (i as u64))
    })
}

/// Renders the sweep as a text table.
pub fn render(points: &[ServingPoint]) -> String {
    let mut t = TextTable::new([
        "rate(req/s)",
        "admitted",
        "shed",
        "timed-out",
        "failed",
        "recovered",
        "p50(us)",
        "p99(us)",
        "goodput",
    ]);
    for p in points {
        t.row([
            format!("{:.0}", p.rate_hz),
            p.admitted.to_string(),
            p.shed.to_string(),
            p.timed_out.to_string(),
            p.failed.to_string(),
            p.recoveries.to_string(),
            format!("{:.1}", p.latency.p50_us),
            format!("{:.1}", p.latency.p99_us),
            format!("{:.3}", p.completed as f64 / p.offered.max(1) as f64),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_light_load_and_overload() {
        let pts = run(&[50_000.0, 3_200_000.0], 200, 0xCAFE);
        assert_eq!(pts.len(), 2);
        let light = &pts[0];
        assert_eq!(light.shed, 0, "light load must not shed");
        assert_eq!(light.completed, light.offered);
        let heavy = &pts[1];
        assert!(heavy.shed > 0, "overload must shed: {heavy:?}");
        assert!(!light.telemetry_jsonl.is_empty());
        assert!(light.alerts.is_empty(), "healthy load must not page");
        assert!(!heavy.alerts.is_empty(), "overload must fire SLO alerts");
        assert!(!light.series_jsonl.is_empty(), "series export present");
        let rendered = render(&pts);
        assert!(rendered.contains("p99"));
    }
}
