//! Packets, flits and traffic classes.
//!
//! The paper's CIM model is packet-based end to end (§III, §IV.A):
//! streams of packets carry data between micro-units, and the security and
//! QoS stories hang off packet boundaries. A packet is serialized into
//! fixed-size flits on the wire; its flit count determines serialization
//! latency and per-hop energy.

use cim_sim::calib::noc as cal;
use core::fmt;

/// A node coordinate in the 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId {
    /// Column (0-based).
    pub x: u16,
    /// Row (0-based).
    pub y: u16,
}

impl NodeId {
    /// Creates a node id.
    pub const fn new(x: u16, y: u16) -> Self {
        NodeId { x, y }
    }

    /// Manhattan distance to another node (minimum hop count).
    pub fn manhattan(&self, other: NodeId) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Service class of a packet; maps to a virtual channel at each link.
///
/// Ordering matters: higher classes win arbitration (QoS, §IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum TrafficClass {
    /// Bulk data, no guarantees.
    #[default]
    BestEffort,
    /// Provisioned streams with bandwidth guarantees.
    Guaranteed,
    /// Fabric control traffic (configuration, fault signalling).
    Control,
}

impl TrafficClass {
    /// The virtual channel index this class uses.
    pub fn virtual_channel(self) -> usize {
        match self {
            TrafficClass::BestEffort => 0,
            TrafficClass::Guaranteed => 1,
            TrafficClass::Control => 2,
        }
    }

    /// All classes, lowest priority first.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::BestEffort,
        TrafficClass::Guaranteed,
        TrafficClass::Control,
    ];
}

/// A packet travelling the NoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet id (assigned by the sender).
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Stream this packet belongs to (for QoS accounting and redirection).
    pub stream: u64,
    /// Service class.
    pub class: TrafficClass,
    /// Payload bytes (possibly ciphertext).
    pub payload: Vec<u8>,
    /// Whether the payload is encrypted (set by the crypto boundary).
    pub encrypted: bool,
    /// Authentication tag, if the security policy adds one.
    pub auth_tag: Option<u64>,
}

impl Packet {
    /// Creates a plaintext best-effort packet.
    pub fn new(id: u64, src: NodeId, dst: NodeId, payload: impl Into<Vec<u8>>) -> Self {
        Packet {
            id,
            src,
            dst,
            stream: 0,
            class: TrafficClass::BestEffort,
            payload: payload.into(),
            encrypted: false,
            auth_tag: None,
        }
    }

    /// Builder-style stream assignment.
    #[must_use]
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    /// Builder-style class assignment.
    #[must_use]
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = class;
        self
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Number of flits this packet serializes into: one head flit plus
    /// payload flits.
    pub fn flit_count(&self) -> u64 {
        flit_count_for(self.payload.len())
    }
}

/// Flits a `bytes`-long payload serializes into — the same head-plus-
/// payload formula as [`Packet::flit_count`], for callers that size a
/// transfer without materializing a packet (the analytic NoC tier).
pub fn flit_count_for(bytes: usize) -> u64 {
    1 + (bytes as u64).div_ceil(cal::FLIT_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = NodeId::new(1, 2);
        let b = NodeId::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn class_priority_order() {
        assert!(TrafficClass::Control > TrafficClass::Guaranteed);
        assert!(TrafficClass::Guaranteed > TrafficClass::BestEffort);
        assert_eq!(TrafficClass::Control.virtual_channel(), 2);
    }

    #[test]
    fn flit_count_includes_head_flit() {
        let p = Packet::new(1, NodeId::new(0, 0), NodeId::new(1, 1), vec![0u8; 0]);
        assert_eq!(p.flit_count(), 1, "empty payload is a head flit only");
        let p = Packet::new(2, NodeId::new(0, 0), NodeId::new(1, 1), vec![0u8; 16]);
        assert_eq!(p.flit_count(), 2);
        let p = Packet::new(3, NodeId::new(0, 0), NodeId::new(1, 1), vec![0u8; 17]);
        assert_eq!(p.flit_count(), 3);
    }

    #[test]
    fn builder_methods_compose() {
        let p = Packet::new(1, NodeId::new(0, 0), NodeId::new(1, 1), vec![1, 2, 3])
            .with_stream(9)
            .with_class(TrafficClass::Control);
        assert_eq!(p.stream, 9);
        assert_eq!(p.class, TrafficClass::Control);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(NodeId::new(3, 7).to_string(), "(3,7)");
    }
}
