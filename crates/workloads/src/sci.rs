//! Scientific-computing workloads (Table 2 rows "Scientific Computing"
//! and "Finite Element Modelling").
//!
//! * [`JacobiSolver`] — an iterative 5-point stencil solve: FLOP-hungry,
//!   synchronizing every sweep (halo exchange + residual reduction).
//! * [`FemSolver`] — conjugate gradient on the assembled 2-D Laplacian
//!   (the canonical FEM inner loop): sparse matvec plus global dot
//!   products every iteration.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::Workload;

/// Jacobi iteration on an `n × n` grid for the Poisson equation.
#[derive(Debug, Clone)]
pub struct JacobiSolver {
    /// Grid side.
    pub n: usize,
    /// Sweeps.
    pub iters: u32,
    /// Decomposition blocks per side (communication grain).
    pub blocks: usize,
}

impl Default for JacobiSolver {
    /// The standard TAB2 size: 480×480, 60 sweeps, 4×4 blocks.
    fn default() -> Self {
        JacobiSolver {
            n: 480,
            iters: 60,
            blocks: 4,
        }
    }
}

impl JacobiSolver {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        JacobiSolver {
            n: 32,
            iters: 10,
            blocks: 2,
        }
    }

    /// Runs the sweeps; returns the final residual norm (should shrink).
    pub fn run(&self) -> f64 {
        let n = self.n;
        // Source term: a point load in the middle.
        let mut f = vec![0.0f64; n * n];
        f[(n / 2) * n + n / 2] = 1.0;
        let mut u = vec![0.0f64; n * n];
        let mut next = vec![0.0f64; n * n];
        for _ in 0..self.iters {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = y * n + x;
                    next[i] = 0.25 * (u[i - 1] + u[i + 1] + u[i - n] + u[i + n] + f[i]);
                }
            }
            std::mem::swap(&mut u, &mut next);
        }
        // Residual of the interior.
        let mut res = 0.0;
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                let r = f[i] - (4.0 * u[i] - u[i - 1] - u[i + 1] - u[i - n] - u[i + n]);
                res += r * r;
            }
        }
        res.sqrt()
    }
}

impl Workload for JacobiSolver {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::ScientificComputing
    }

    fn characterize(&self) -> Characteristics {
        let res = self.run();
        std::hint::black_box(res);
        let n = self.n as u64;
        let iters = u64::from(self.iters);
        let interior = (n - 2) * (n - 2);
        // 5 adds/muls per point per sweep.
        let flops = iters * interior * 5;
        let footprint = 3 * n * n * 8; // u, next, f
        let moved = iters * interior * 8 * 6; // 5 reads + 1 write
                                              // Per sweep: halo exchange between blocks + residual reduction.
        let halo = 8 * (self.blocks * self.blocks) as u64 * 4 * (n / self.blocks as u64);
        let comm = iters * (halo + 8 * (self.blocks * self.blocks) as u64);
        // Sweeps are sequential; within one, rows are parallel.
        let span = iters * 5 * (n - 2);
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }
}

/// A 5-point Laplacian in CSR form with a CG solver — the FEM inner loop.
#[derive(Debug, Clone)]
pub struct FemSolver {
    /// Mesh side (nodes = side²).
    pub side: usize,
    /// CG iterations.
    pub iters: u32,
}

impl Default for FemSolver {
    /// The standard TAB2 size: 200×200 mesh, 40 CG iterations.
    fn default() -> Self {
        FemSolver {
            side: 200,
            iters: 40,
        }
    }
}

impl FemSolver {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        FemSolver {
            side: 16,
            iters: 10,
        }
    }

    fn nodes(&self) -> usize {
        self.side * self.side
    }

    /// Assembles the Laplacian (CSR) and runs CG on `A·x = b`;
    /// returns `(final_residual, initial_residual)`.
    pub fn run(&self) -> (f64, f64) {
        let n = self.side;
        let nodes = self.nodes();
        // Assemble 5-point Laplacian.
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0u32);
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                let mut push = |j: usize, v: f64| {
                    cols.push(j as u32);
                    vals.push(v);
                };
                push(i, 4.0);
                if x > 0 {
                    push(i - 1, -1.0);
                }
                if x + 1 < n {
                    push(i + 1, -1.0);
                }
                if y > 0 {
                    push(i - n, -1.0);
                }
                if y + 1 < n {
                    push(i + n, -1.0);
                }
                offsets.push(cols.len() as u32);
            }
        }
        let spmv = |x: &[f64], y: &mut [f64]| {
            for i in 0..nodes {
                let mut acc = 0.0;
                for k in offsets[i] as usize..offsets[i + 1] as usize {
                    acc += vals[k] * x[cols[k] as usize];
                }
                y[i] = acc;
            }
        };
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();

        let b: Vec<f64> = (0..nodes)
            .map(|i| if i == nodes / 2 { 1.0 } else { 0.0 })
            .collect();
        let mut x = vec![0.0f64; nodes];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut ap = vec![0.0f64; nodes];
        let mut rsq = dot(&r, &r);
        let initial = rsq.sqrt();
        for _ in 0..self.iters {
            spmv(&p, &mut ap);
            let alpha = rsq / dot(&p, &ap).max(1e-300);
            for i in 0..nodes {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rsq_new = dot(&r, &r);
            let beta = rsq_new / rsq.max(1e-300);
            for i in 0..nodes {
                p[i] = r[i] + beta * p[i];
            }
            rsq = rsq_new;
        }
        std::hint::black_box(x[0]);
        (rsq.sqrt(), initial)
    }
}

impl Workload for FemSolver {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::FiniteElementModelling
    }

    fn characterize(&self) -> Characteristics {
        let (final_res, initial_res) = self.run();
        std::hint::black_box((final_res, initial_res));
        let nodes = self.nodes() as u64;
        let nnz = 5 * nodes - 4 * self.side as u64; // interior 5, edges less
        let iters = u64::from(self.iters);
        // Per iteration: spmv (2·nnz) + 2 dots (4·n) + 3 axpys (6·n).
        let flops = iters * (2 * nnz + 10 * nodes);
        let footprint = nnz * 12 + 5 * nodes * 8; // CSR + 5 vectors
        let moved = iters * (nnz * 20 + 10 * nodes * 8);
        // Per iteration: halo rows between row-block partitions + two
        // global reductions.
        let parts = 16u64;
        let comm = iters * (parts * self.side as u64 * 8 * 2 + parts * 16);
        // CG iterations are sequential; within one, the reduction tree
        // and spmv rows are parallel.
        let span = iters * (2 * 5 + 2 * 64); // spmv row + log-depth dots
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn jacobi_reduces_residual() {
        let short = JacobiSolver {
            n: 32,
            iters: 2,
            blocks: 2,
        }
        .run();
        let long = JacobiSolver {
            n: 32,
            iters: 100,
            blocks: 2,
        }
        .run();
        assert!(
            long < short,
            "more sweeps, smaller residual: {short} -> {long}"
        );
    }

    #[test]
    fn jacobi_buckets() {
        let l = JacobiSolver::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.size, Level::Medium);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.parallelism, Level::High);
    }

    #[test]
    fn cg_converges_on_laplacian() {
        let (final_res, initial_res) = FemSolver {
            side: 24,
            iters: 60,
        }
        .run();
        assert!(
            final_res < initial_res / 10.0,
            "CG must reduce the residual: {initial_res} -> {final_res}"
        );
    }

    #[test]
    fn fem_buckets() {
        let l = FemSolver::default().characterize().bucketize();
        assert_eq!(
            l.compute,
            Level::Medium,
            "sparse FEM is not dense-matmul heavy"
        );
        assert_eq!(l.size, Level::Medium);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.parallelism, Level::High);
    }
}
