//! Self-programmable dataflow (paper §III.B, third model): packets carry
//! code, and the fabric reprograms itself as they arrive.
//!
//! An edge pipeline is switched from smoothing to edge-detection *by a
//! packet*: a cheap digital patch retunes the activation, an expensive
//! weight patch reprograms a crossbar — the same write asymmetry that
//! governs every other CIM reconfiguration.
//!
//! Run with `cargo run --release --example self_programming`.

use cim::dataflow::graph::GraphBuilder;
use cim::dataflow::ops::{Elementwise, Operation};
use cim::dataflow::program::Patch;
use cim::fabric::self_prog::{deliver_and_apply, encode_patch_packet};
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::noc::packet::NodeId;
use cim::sim::SimTime;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut device = CimDevice::new(FabricConfig {
        encryption: true, // code packets are authenticated like any other
        ..FabricConfig::default()
    })?;

    // A 16-lane signal stage: smooth (moving average) then clamp.
    let width = 16usize;
    let mut smooth = vec![0.0; width * width];
    for r in 0..width {
        for dc in 0..3 {
            let c = (r + dc).saturating_sub(1).min(width - 1);
            smooth[r * width + c] += 1.0 / 3.0;
        }
    }
    let mut b = GraphBuilder::new();
    let src = b.add("scanline", Operation::Source { width });
    let filt = b.add(
        "filter",
        Operation::MatVec {
            rows: width,
            cols: width,
            weights: smooth,
        },
    );
    let act = b.add(
        "act",
        Operation::Map {
            func: Elementwise::Identity,
            width,
        },
    );
    let sink = b.add("out", Operation::Sink { width });
    b.chain(&[src, filt, act, sink])?;
    let graph = b.build()?;
    let mut prog = device.load_program(&graph, MappingPolicy::LocalityAware)?;

    let step: Vec<f64> = (0..width)
        .map(|i| if i < width / 2 { 0.0 } else { 1.0 })
        .collect();
    let run = |device: &mut CimDevice, prog: &mut _| -> Result<Vec<f64>, Box<dyn Error>> {
        let r = device.execute_stream(
            prog,
            &[HashMap::from([(src, step.clone())])],
            &StreamOptions::default(),
        )?;
        Ok(r.outputs[0][&sink].clone())
    };

    let smoothed = run(&mut device, &mut prog)?;
    println!("smoothing filter: {:?}", &smoothed[6..10]);

    // --- Patch 1: retune the activation (cheap, digital) ----------------
    let p1 = Patch::SetMapFunc {
        node: act.index() as u32,
        func: Elementwise::Scale(2.0),
    };
    let packet = encode_patch_packet(&mut device, &prog, &p1, NodeId::new(3, 3))?;
    let o1 = deliver_and_apply(&mut device, &mut prog, &packet, SimTime::ZERO)?;
    println!(
        "patch 1 (map func) applied to unit {} in {} — digital, cheap",
        o1.unit, o1.apply_cost.latency
    );
    let scaled = run(&mut device, &mut prog)?;
    println!("after gain patch:  {:?}", &scaled[6..10]);

    // --- Patch 2: new weights — edge detector (expensive, analog) -------
    let mut edge = vec![0.0; width * width];
    for r in 0..width {
        edge[r * width + r] = 1.0;
        if r > 0 {
            edge[r * width + r - 1] = -1.0;
        }
    }
    let p2 = Patch::SetWeights {
        node: filt.index() as u32,
        weights: edge,
    };
    let packet = encode_patch_packet(&mut device, &prog, &p2, NodeId::new(3, 3))?;
    let o2 = deliver_and_apply(&mut device, &mut prog, &packet, SimTime::ZERO)?;
    println!(
        "patch 2 (weights) applied to unit {} in {} — full crossbar reprogram",
        o2.unit, o2.apply_cost.latency
    );
    let edges = run(&mut device, &mut prog)?;
    println!("after edge patch:  {:?}", &edges[6..10]);
    println!(
        "\nwrite asymmetry: weight patch cost {:.0}x the map patch",
        o2.apply_cost.latency.as_secs_f64() / o1.apply_cost.latency.as_secs_f64()
    );

    // The edge detector fires exactly at the step: the strongest
    // gradient magnitude away from the array boundary.
    let peak = edges[..width - 1]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
        .expect("non-empty");
    println!(
        "edge detected at lane {} (step transition is lanes {}..{})",
        peak.0,
        width / 2 - 1,
        width / 2
    );
    Ok(())
}
