//! Serviceability: graceful aging and self-healing (paper §V.D).
//!
//! "Understanding how individual devices age can enable switching them
//! out of active configurations preventing failures from even
//! happening." The monitor tracks two aging axes per micro-unit:
//!
//! * **retention drift** — programmed conductances decay over deployment
//!   time; past a drift budget the unit's answers degrade measurably;
//! * **endurance wear** — every reprogram consumes write cycles; a unit
//!   near its endurance limit should be *migrated away from*, not
//!   refreshed in place (a refresh spends exactly the cycles it is
//!   trying to conserve).
//!
//! [`ServiceabilityMonitor::proactive_service`] closes the loop:
//! drift-aged units are refreshed from the program's golden weights,
//! worn units are fenced and their nodes migrated to spares — before
//! anything fails.

use crate::device::CimDevice;
use crate::engine::MappedProgram;
use crate::error::{FabricError, Result};
use crate::unit::UnitHealth;
use cim_crossbar::aging::RetentionModel;
use cim_crossbar::array::OpCost;
use cim_dataflow::graph::NodeRef;

/// Health projection for one micro-unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitServiceReport {
    /// Unit index.
    pub unit: usize,
    /// Seconds since the unit's engine was last (re)programmed.
    pub age_secs: f64,
    /// Projected fractional conductance drift at the current age.
    pub projected_drift: f64,
    /// Total programming pulses absorbed by the unit's cells.
    pub write_pulses: u64,
    /// Fraction of endurance consumed (0 = fresh, 1 = worn out).
    pub wear: f64,
    /// Whether the monitor recommends service now.
    pub needs_service: bool,
}

/// One action taken by a proactive-service pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceAction {
    /// The unit was reprogrammed in place from golden weights.
    Refreshed {
        /// Serviced unit.
        unit: usize,
        /// Cost of the refresh.
        cost: OpCost,
    },
    /// The node was migrated to a spare and the worn unit fenced.
    Migrated {
        /// Worn unit taken out of service.
        from: usize,
        /// Spare that took over.
        to: usize,
        /// Cost of programming the spare.
        cost: OpCost,
    },
}

/// Tracks deployment aging across a device.
#[derive(Debug, Clone)]
pub struct ServiceabilityMonitor {
    retention: RetentionModel,
    /// Drift fraction beyond which a refresh is recommended.
    drift_budget: f64,
    /// Wear fraction beyond which migration (not refresh) is recommended.
    wear_budget: f64,
    /// Per-unit deployment age since last reprogram, seconds.
    ages: Vec<f64>,
}

impl ServiceabilityMonitor {
    /// Creates a monitor for a device with the given budgets.
    ///
    /// # Panics
    ///
    /// Panics if budgets are outside `(0, 1]`.
    pub fn new(
        device: &CimDevice,
        retention: RetentionModel,
        drift_budget: f64,
        wear_budget: f64,
    ) -> Self {
        assert!(
            drift_budget > 0.0 && drift_budget <= 1.0,
            "drift budget in (0,1]"
        );
        assert!(
            wear_budget > 0.0 && wear_budget <= 1.0,
            "wear budget in (0,1]"
        );
        ServiceabilityMonitor {
            retention,
            drift_budget,
            wear_budget,
            ages: vec![0.0; device.units().len()],
        }
    }

    /// Advances deployment time: every programmed engine drifts by the
    /// fraction its own age calls for and every unit's age grows.
    ///
    /// Drift is applied incrementally
    /// ([`RetentionModel::incremental_drift_fraction`]) so many small
    /// `advance` calls land on exactly the conductances one big call
    /// produces — units refreshed at different times each continue from
    /// their own age, and the clamp stays path-independent.
    pub fn advance(&mut self, device: &mut CimDevice, elapsed_secs: f64) {
        for (i, age) in self.ages.iter_mut().enumerate() {
            let frac = self
                .retention
                .incremental_drift_fraction(*age, elapsed_secs);
            *age += elapsed_secs;
            if let Some(dpe) = device.unit_mut(i).dpe_mut() {
                dpe.for_each_array(|_, _, _, _, xbar| xbar.drift_all(1.0, frac));
            }
        }
    }

    /// Current service report for every unit that hosts an engine.
    pub fn report(&self, device: &CimDevice) -> Vec<UnitServiceReport> {
        device
            .units()
            .iter()
            .filter_map(|u| {
                let dpe = u.dpe()?;
                let fp = dpe.footprint().ok()?;
                let pulses = dpe_total_writes(u);
                let endurance = device.config().dpe.device.endurance.max(1);
                let per_cell = pulses as f64 / fp.cells as f64;
                let wear = per_cell / endurance as f64;
                let age = self.ages[u.index()];
                let drift = self.retention.drift_fraction(age);
                Some(UnitServiceReport {
                    unit: u.index(),
                    age_secs: age,
                    projected_drift: drift,
                    write_pulses: pulses,
                    wear,
                    needs_service: drift > self.drift_budget || wear > self.wear_budget,
                })
            })
            .collect()
    }

    /// Services every program node whose unit exceeds a budget:
    /// drift-aged units are refreshed in place, wear-limited units are
    /// fenced and migrated to spares. Returns the actions taken.
    ///
    /// # Errors
    ///
    /// Propagates reprogramming/migration failures (e.g. no spare left).
    pub fn proactive_service(
        &mut self,
        device: &mut CimDevice,
        prog: &mut MappedProgram,
    ) -> Result<Vec<ServiceAction>> {
        let mut actions = Vec::new();
        let flagged: Vec<UnitServiceReport> = self
            .report(device)
            .into_iter()
            .filter(|r| r.needs_service)
            .collect();
        for r in flagged {
            // Which program node lives there?
            let Some(node) = device.unit(r.unit).assigned_node() else {
                continue;
            };
            if node >= prog.graph().node_count() || prog.placement().unit_of(node) != r.unit {
                continue; // belongs to another program
            }
            let op = prog.graph().node(NodeRef::from_index(node)).op.clone();
            let config = device.config().clone();
            let seeds = device.seeds().child("service");
            if r.wear > self.wear_budget {
                // Migrate: fence the worn unit, program a spare.
                let spare = device
                    .find_spare(r.unit)
                    .ok_or(FabricError::NoSpareAvailable { unit: r.unit })?;
                let cost = device.unit_mut(spare).assign(node, &op, &config, seeds)?;
                device.meter_mut().charge("config", cost.energy);
                device.unit_mut(r.unit).set_health(UnitHealth::Disabled);
                // The node has moved: drop the worn unit's stale assignment
                // so un-fencing it later returns it to the spare pool.
                device.unit_mut(r.unit).clear_assignment();
                prog.placement.node_to_unit[node] = spare;
                self.ages[spare] = 0.0;
                actions.push(ServiceAction::Migrated {
                    from: r.unit,
                    to: spare,
                    cost,
                });
            } else {
                // Refresh in place from golden weights.
                let cost = device.unit_mut(r.unit).assign(node, &op, &config, seeds)?;
                device.meter_mut().charge("config", cost.energy);
                self.ages[r.unit] = 0.0;
                actions.push(ServiceAction::Refreshed { unit: r.unit, cost });
            }
        }
        Ok(actions)
    }
}

fn dpe_total_writes(unit: &crate::unit::MicroUnit) -> u64 {
    // Sum of programming pulses across the unit's arrays. Accessible via
    // the immutable engine handle.
    unit.dpe().map_or(0, |dpe| dpe.programmed_pulses())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::engine::StreamOptions;
    use crate::mapper::MappingPolicy;
    use cim_crossbar::aging::YEAR_SECS;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::Operation;
    use std::collections::HashMap;

    fn setup() -> (CimDevice, MappedProgram, NodeRef, NodeRef) {
        let mut d = CimDevice::new(FabricConfig {
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .expect("fabric");
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 8 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 8,
                cols: 8,
                weights: (0..64).map(|i| ((i % 5) as f64) / 5.0 + 0.1).collect(),
            },
        );
        let k = b.add("k", Operation::Sink { width: 8 });
        b.chain(&[s, mv, k]).expect("chain");
        let g = b.build().expect("valid");
        let prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");
        (d, prog, s, k)
    }

    fn output(d: &mut CimDevice, prog: &mut MappedProgram, s: NodeRef, k: NodeRef) -> Vec<f64> {
        d.execute_stream(
            prog,
            &[HashMap::from([(s, vec![0.5; 8])])],
            &StreamOptions::default(),
        )
        .expect("runs")
        .outputs[0][&k]
            .clone()
    }

    #[test]
    fn aging_is_observable_and_refresh_heals_it() {
        let (mut d, mut prog, s, k) = setup();
        let fresh = output(&mut d, &mut prog, s, k);
        let mut mon = ServiceabilityMonitor::new(&d, RetentionModel::default(), 0.05, 0.9);
        mon.advance(&mut d, 8.0 * YEAR_SECS); // 8% drift > 5% budget
        let aged = output(&mut d, &mut prog, s, k);
        let drifted: f64 = fresh.iter().zip(&aged).map(|(a, b)| (a - b).abs()).sum();
        assert!(drifted > 0.01, "drift must be visible: {drifted}");

        let mv_unit = prog.placement().unit_of(1);
        let report = mon.report(&d);
        let entry = report
            .iter()
            .find(|r| r.unit == mv_unit)
            .expect("engine unit");
        assert!(entry.needs_service, "drift budget exceeded: {entry:?}");

        let actions = mon.proactive_service(&mut d, &mut prog).expect("services");
        assert!(matches!(actions[..], [ServiceAction::Refreshed { .. }]));
        let healed = output(&mut d, &mut prog, s, k);
        let residual: f64 = fresh.iter().zip(&healed).map(|(a, b)| (a - b).abs()).sum();
        assert!(residual < drifted / 5.0, "refresh restores accuracy");
        // Monitor is clean again.
        assert!(mon.report(&d).iter().all(|r| !r.needs_service));
    }

    #[test]
    fn worn_units_are_migrated_not_refreshed() {
        // Finite endurance so wear is measurable: one programming pass
        // consumes 1/1000 of each cell's life.
        let mut device_params = cim_crossbar::device::DeviceParams::ideal(2);
        device_params.endurance = 1_000;
        let mut d = CimDevice::new(FabricConfig {
            dpe: DpeConfig {
                device: device_params,
                ..DpeConfig::ideal()
            },
            ..FabricConfig::default()
        })
        .expect("fabric");
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 8 });
        let mv = b.add(
            "mv",
            Operation::MatVec {
                rows: 8,
                cols: 8,
                weights: (0..64).map(|i| ((i % 5) as f64) / 5.0 + 0.1).collect(),
            },
        );
        let k = b.add("k", Operation::Sink { width: 8 });
        b.chain(&[s, mv, k]).expect("chain");
        let g = b.build().expect("valid");
        let mut prog = d
            .load_program(&g, MappingPolicy::LocalityAware)
            .expect("fits");

        let before = output(&mut d, &mut prog, s, k);
        let mv_unit = prog.placement().unit_of(1);
        // Wear budget below the consumed 1/1000: migration required.
        let mut mon = ServiceabilityMonitor::new(&d, RetentionModel::default(), 0.5, 1e-4);
        let actions = mon.proactive_service(&mut d, &mut prog).expect("services");
        let migrated = actions
            .iter()
            .find_map(|a| match a {
                ServiceAction::Migrated { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .expect("wear triggers migration");
        assert_eq!(migrated.0, mv_unit);
        assert_ne!(migrated.1, mv_unit);
        assert_eq!(d.unit(mv_unit).health(), UnitHealth::Disabled);
        assert_eq!(prog.placement().unit_of(1), migrated.1);
        // Still computes the same function on the spare.
        let after = output(&mut d, &mut prog, s, k);
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn split_advance_matches_single_advance() {
        // Step-size independence: 16 quarter-year advances must leave the
        // device at exactly the state of one 4-year advance.
        let (mut d_split, mut prog_split, s, k) = setup();
        let (mut d_single, mut prog_single, _, _) = setup();
        let mut mon_split =
            ServiceabilityMonitor::new(&d_split, RetentionModel::default(), 0.05, 0.9);
        let mut mon_single =
            ServiceabilityMonitor::new(&d_single, RetentionModel::default(), 0.05, 0.9);
        for _ in 0..16 {
            mon_split.advance(&mut d_split, YEAR_SECS / 4.0);
        }
        mon_single.advance(&mut d_single, 4.0 * YEAR_SECS);

        let out_split = output(&mut d_split, &mut prog_split, s, k);
        let out_single = output(&mut d_single, &mut prog_single, s, k);
        for (a, b) in out_split.iter().zip(&out_single) {
            assert!((a - b).abs() < 1e-12, "split {a} vs single {b}");
        }
        // Reported projected drift agrees too (ages sum identically).
        let r_split = mon_split.report(&d_split);
        let r_single = mon_single.report(&d_single);
        for (a, b) in r_split.iter().zip(&r_single) {
            assert!((a.projected_drift - b.projected_drift).abs() < 1e-12);
        }
    }

    #[test]
    fn fresh_device_needs_no_service() {
        let (mut d, mut prog, _, _) = setup();
        let mut mon = ServiceabilityMonitor::new(&d, RetentionModel::default(), 0.05, 0.9);
        assert!(mon.report(&d).iter().all(|r| !r.needs_service));
        let actions = mon.proactive_service(&mut d, &mut prog).expect("no-op");
        assert!(actions.is_empty());
    }

    #[test]
    #[should_panic(expected = "drift budget")]
    fn bad_budget_panics() {
        let (d, _, _, _) = setup();
        let _ = ServiceabilityMonitor::new(&d, RetentionModel::default(), 0.0, 0.5);
    }
}
