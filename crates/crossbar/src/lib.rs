//! # cim-crossbar — memristor crossbar and Dot Product Engine simulator
//!
//! The analog compute substrate of the CIM reproduction: single-device
//! memristor models, crossbar arrays, DAC/ADC converters, the ISAAC-style
//! [`dpe::DotProductEngine`] (the hardware behind the paper's §VI), the
//! stateful-logic and TCAM engines of §III.A, plus fault-injection and
//! aging models for §V.
//!
//! Behaviour and cost are modeled together: every operation both computes
//! a (quantized, noisy) value *and* returns an [`array::OpCost`] with its
//! latency and energy, derived from the public calibration constants in
//! [`cim_sim::calib`].
//!
//! ## Example: analog matrix–vector product
//!
//! ```
//! use cim_crossbar::dpe::{DotProductEngine, DpeConfig};
//! use cim_crossbar::matrix::DenseMatrix;
//! use cim_sim::SeedTree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let weights = DenseMatrix::from_fn(128, 64, |r, c| {
//!     (((r * 31 + c * 17) % 97) as f64 / 97.0) - 0.5
//! });
//! let mut dpe = DotProductEngine::new(DpeConfig::default(), SeedTree::new(7));
//! let programming = dpe.program(&weights)?;
//! let out = dpe.matvec(&vec![0.25; 128])?;
//! // Analog reads are orders of magnitude faster than programming.
//! assert!(programming.latency > out.cost.latency);
//! assert_eq!(out.values.len(), 64);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod aging;
pub mod array;
pub mod device;
pub mod dpe;
pub mod error;
pub mod faults;
pub mod logic;
pub mod matrix;
pub mod quant;
pub mod tcam;

pub use array::{CrossbarArray, OpCost};
pub use device::{CellFault, DeviceParams, MemristorCell};
pub use dpe::{DotProductEngine, DpeConfig, DpeFootprint, DpeOutput};
pub use error::{CrossbarError, Result};
pub use matrix::DenseMatrix;
