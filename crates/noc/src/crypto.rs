//! Simulation-grade link encryption and authentication.
//!
//! The paper (§IV.A, §V.E) argues packets in flight should be encrypted
//! "like networks do". This module provides a keyed stream cipher and a
//! keyed authentication tag **for simulation purposes only**: the point is
//! to (a) make plaintext actually unreadable to the eavesdropping
//! experiments, (b) detect tampering, and (c) charge the calibrated
//! per-byte crypto latency/energy — not to be cryptographically strong.
//!
//! **This is not a real cipher. Do not use it to protect data.**

use cim_sim::calib::noc as cal;
use cim_sim::energy::Energy;
use cim_sim::rng::splitmix64;
use cim_sim::time::SimDuration;

/// A symmetric link key for one isolation domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkKey(u64);

impl LinkKey {
    /// Derives a key from a domain identifier and a device master seed.
    pub fn derive(master: u64, domain: u32) -> Self {
        LinkKey(splitmix64(master ^ (u64::from(domain) << 32 | 0xC1A0)))
    }

    /// Raw key material (test/diagnostic use).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Cost of one cryptographic pass over a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoCost {
    /// Added latency.
    pub latency: SimDuration,
    /// Added energy.
    pub energy: Energy,
}

/// Computes the cost of encrypting or decrypting `bytes` payload bytes.
pub fn crypto_cost(bytes: usize) -> CryptoCost {
    let cycles = cal::CRYPTO_CYCLES;
    let cycle_ps = (1e12 / cal::CLOCK_HZ) as u64;
    CryptoCost {
        latency: SimDuration::from_ps(cycles * cycle_ps),
        energy: Energy::from_fj(cal::CRYPTO_BYTE_FJ * bytes.max(1) as u64),
    }
}

fn keystream(key: LinkKey, nonce: u64, block: u64) -> u64 {
    splitmix64(key.0 ^ splitmix64(nonce.wrapping_add(block.wrapping_mul(0x9E37_79B9))))
}

/// Encrypts a payload under `key` with a per-packet `nonce`.
///
/// # Examples
///
/// ```
/// use cim_noc::crypto::{decrypt, encrypt, LinkKey};
///
/// let key = LinkKey::derive(42, 1);
/// let plain = b"dataflow packet".to_vec();
/// let (cipher, _) = encrypt(&plain, key, 7);
/// assert_ne!(&cipher[..], &plain[..]);
/// let (back, _) = decrypt(&cipher, key, 7);
/// assert_eq!(&back[..], &plain[..]);
/// ```
pub fn encrypt(plaintext: &[u8], key: LinkKey, nonce: u64) -> (Vec<u8>, CryptoCost) {
    let mut out = Vec::with_capacity(plaintext.len());
    for (i, chunk) in plaintext.chunks(8).enumerate() {
        let ks = keystream(key, nonce, i as u64).to_le_bytes();
        for (j, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks[j]);
        }
    }
    (out, crypto_cost(plaintext.len()))
}

/// Decrypts a payload (the stream cipher is its own inverse).
pub fn decrypt(ciphertext: &[u8], key: LinkKey, nonce: u64) -> (Vec<u8>, CryptoCost) {
    encrypt(ciphertext, key, nonce)
}

/// Computes a keyed authentication tag over a payload and header fields.
///
/// Detects accidental or simulated-adversarial modification of packets in
/// flight (§IV.A "data can be verified against the processing element").
pub fn auth_tag(payload: &[u8], key: LinkKey, header: u64) -> u64 {
    let mut acc = splitmix64(key.0 ^ header);
    for chunk in payload.chunks(8) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix64(acc ^ u64::from_le_bytes(block));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let key = LinkKey::derive(1, 2);
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let (cipher, _) = encrypt(&plain, key, 99);
            let (back, _) = decrypt(&cipher, key, 99);
            assert_eq!(&back[..], &plain[..], "len {len}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = LinkKey::derive(1, 2);
        let plain = vec![0u8; 64];
        let (cipher, _) = encrypt(&plain, key, 1);
        assert_ne!(&cipher[..], &plain[..]);
        // Different nonce => different ciphertext (no keystream reuse).
        let (cipher2, _) = encrypt(&plain, key, 2);
        assert_ne!(cipher, cipher2);
    }

    #[test]
    fn wrong_key_or_nonce_fails_to_decrypt() {
        let key = LinkKey::derive(1, 2);
        let plain = b"secret weights".to_vec();
        let (cipher, _) = encrypt(&plain, key, 5);
        let (bad_key, _) = decrypt(&cipher, LinkKey::derive(1, 3), 5);
        assert_ne!(&bad_key[..], &plain[..]);
        let (bad_nonce, _) = decrypt(&cipher, key, 6);
        assert_ne!(&bad_nonce[..], &plain[..]);
    }

    #[test]
    fn auth_tag_detects_tampering() {
        let key = LinkKey::derive(9, 0);
        let payload = b"route me".to_vec();
        let tag = auth_tag(&payload, key, 0xCAFE);
        let mut tampered = payload.clone();
        tampered[0] ^= 1;
        assert_ne!(auth_tag(&tampered, key, 0xCAFE), tag);
        assert_ne!(auth_tag(&payload, key, 1), tag, "header is authenticated");
        assert_ne!(
            auth_tag(&payload, LinkKey::derive(9, 1), 0xCAFE),
            tag,
            "tag is keyed"
        );
    }

    #[test]
    fn cost_scales_with_length() {
        let small = crypto_cost(16);
        let large = crypto_cost(160);
        assert_eq!(large.energy.as_fj(), small.energy.as_fj() * 10);
        assert_eq!(small.latency, large.latency, "pipelined: fixed latency");
    }

    #[test]
    fn derived_keys_differ_per_domain() {
        assert_ne!(LinkKey::derive(7, 0), LinkKey::derive(7, 1));
        assert_ne!(LinkKey::derive(7, 0), LinkKey::derive(8, 0));
        assert_eq!(LinkKey::derive(7, 0), LinkKey::derive(7, 0));
    }
}
