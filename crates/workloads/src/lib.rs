//! # cim-workloads — the Table 2 application suite
//!
//! Real, instrumented implementations of all 14 application classes the
//! paper rates in Appendix A (Table 2), plus the neural-network building
//! blocks the §VI Dot Product Engine experiments run.
//!
//! Each workload:
//!
//! * executes a genuine kernel (PageRank really ranks, CG really
//!   converges, the annealer really packs a knapsack);
//! * counts its arithmetic, footprint, traffic, communication and span
//!   ([`chars::Characteristics`]);
//! * buckets those counters onto the paper's low/medium/high vocabulary
//!   and derives a CIM suitability with the executable version of the
//!   appendix's reasoning ([`chars::cim_suitability`]);
//! * where the class maps naturally onto dataflow, lowers itself to a
//!   [`cim_dataflow::DataflowGraph`] runnable on the CIM fabric.
//!
//! ## Example
//!
//! ```
//! use cim_workloads::{standard_suite, Workload};
//! use cim_workloads::spec::WorkloadClass;
//!
//! let suite = standard_suite();
//! assert_eq!(suite.len(), 14);
//! let kvs = suite
//!     .iter()
//!     .find(|w| w.class() == WorkloadClass::KeyValueStores)
//!     .unwrap();
//! // `characterize` runs the real kernel with counters.
//! let c = kvs.characterize();
//! assert!(c.flops > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chars;
pub mod graphs;
pub mod misc;
pub mod ml;
pub mod nn;
pub mod optim;
pub mod prob;
pub mod sci;
pub mod search;
pub mod serving;
pub mod spec;
pub mod store;
pub mod workload;

pub use chars::{cim_suitability, Characteristics, MeasuredLevels};
pub use serving::{sample_class, standard_request_mix, RequestClassSpec};
pub use spec::{paper_rating, paper_table, Level, PaperRating, WorkloadClass};
pub use workload::{CpuKernelSpec, DataflowForm, Workload};

/// The standard suite: one instance per Table 2 row, at the calibrated
/// TAB2 sizes, in the paper's row order.
pub fn standard_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ml::MlTraining::default()),
        Box::new(ml::CnnInference::default()),
        Box::new(graphs::PageRank::default()),
        Box::new(prob::BeliefPropagation::default()),
        Box::new(prob::McmcChain::default()),
        Box::new(store::KvStore::default()),
        Box::new(store::ColumnAnalytics::default()),
        Box::new(store::Transactions::default()),
        Box::new(search::SearchIndexing::default()),
        Box::new(optim::Annealing::default()),
        Box::new(sci::JacobiSolver::default()),
        Box::new(sci::FemSolver::default()),
        Box::new(misc::MessageRouting::default()),
        Box::new(misc::FilterBank::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_class_in_order() {
        let suite = standard_suite();
        let classes: Vec<WorkloadClass> = suite.iter().map(|w| w.class()).collect();
        assert_eq!(classes, WorkloadClass::ALL.to_vec());
    }

    /// The headline TAB2 result: measured characteristics, fed through
    /// the executable suitability classifier, agree with the paper's CIM
    /// column on at least 12 of 14 rows.
    #[test]
    fn measured_suitability_matches_paper_on_most_rows() {
        let suite = standard_suite();
        let mut agree = 0;
        let mut report = Vec::new();
        for w in &suite {
            let predicted = cim_suitability(w.characterize().bucketize());
            let paper = paper_rating(w.class()).cim;
            if predicted == paper {
                agree += 1;
            }
            report.push((w.class(), predicted, paper));
        }
        assert!(
            agree >= 12,
            "expected >= 12/14 agreement, got {agree}: {report:?}"
        );
    }

    #[test]
    fn cpu_kernels_are_derived_consistently() {
        for w in standard_suite() {
            let k = w.cpu_kernel();
            let c = w.characterize();
            assert_eq!(k.flops, c.flops, "{:?}", w.class());
            assert_eq!(
                k.dram_bytes + k.l3_bytes,
                c.bytes_moved,
                "traffic split must conserve bytes for {:?}",
                w.class()
            );
        }
    }

    #[test]
    fn dataflow_forms_exist_for_the_streaming_classes() {
        let suite = standard_suite();
        let with_df: Vec<WorkloadClass> = suite
            .iter()
            .filter(|w| w.dataflow().is_some())
            .map(|w| w.class())
            .collect();
        for expected in [
            WorkloadClass::MachineLearning,
            WorkloadClass::NeuralNetworks,
            WorkloadClass::GraphProblems,
            WorkloadClass::DatabasesAnalytics,
            WorkloadClass::SignalProcessing,
        ] {
            assert!(
                with_df.contains(&expected),
                "{expected:?} should lower to dataflow"
            );
        }
    }
}
