//! Quickstart: load a neural network onto a CIM device, stream inputs
//! through it, and compare against the CPU and GPU baselines.
//!
//! Run with `cargo run --release --example quickstart`. Pass
//! `--telemetry out.jsonl` to also export the device's metrics as
//! JSON lines; a one-screen summary is printed either way. Pass
//! `--mode analytic` to run the closed-form fast tier instead of the
//! flow-level DES (see DESIGN.md "Two-tier simulation").

use cim::baseline::{CpuModel, GpuModel};
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::sim::telemetry::{validate_jsonl_line, TelemetryLevel};
use cim::sim::{SeedTree, SimMode};
use cim::workloads::nn::{mlp_graph, random_inputs};
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| {
            let path = args.get(i + 1).cloned();
            args.drain(i..args.len().min(i + 2));
            path.expect("--telemetry requires a path")
        })
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--telemetry=").map(str::to_owned))
        });
    let sim_mode = args
        .iter()
        .position(|a| a == "--mode")
        .map(|i| {
            let mode = args.get(i + 1).cloned();
            args.drain(i..args.len().min(i + 2));
            mode.expect("--mode requires detailed|analytic")
        })
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--mode=").map(str::to_owned))
        })
        .map(|m| m.parse::<SimMode>())
        .transpose()?
        .unwrap_or_default();

    // 1. A CIM device: 4×4 tiles × 4 micro-units on a packet mesh.
    let mut device = CimDevice::new(FabricConfig {
        sim_mode,
        ..FabricConfig::default()
    })?;
    if sim_mode == SimMode::Analytic {
        println!("mode: analytic fast tier (closed-form costs, no packet-level DES)");
    }
    let tel = device.enable_telemetry(TelemetryLevel::Metrics);
    println!(
        "device: {} micro-units on a {}x{} tile mesh",
        device.units().len(),
        device.config().mesh_width,
        device.config().mesh_height
    );

    // 2. A three-layer MLP as a dataflow graph.
    let seeds = SeedTree::new(42);
    let (graph, src, sink) = mlp_graph(&[256, 128, 64, 10], seeds);
    let m = graph.metrics();
    println!(
        "model: {} nodes, {:.1} kB of stationary weights, {} FLOPs/inference",
        graph.node_count(),
        m.state_bytes as f64 / 1e3,
        m.total_flops
    );

    // 3. Static-dataflow configuration: program the crossbars (slow!).
    let mut prog = device.load_program(&graph, MappingPolicy::LocalityAware)?;
    println!(
        "configuration: {} (crossbar programming), {}",
        prog.config_cost.latency, prog.config_cost.energy
    );

    // 4. Stream 64 inferences through the pipelined fabric.
    let batch = 64;
    let inputs: Vec<_> = random_inputs(batch, 256, seeds.child("x"))
        .into_iter()
        .map(|x| HashMap::from([(src, x)]))
        .collect();
    let report = device.execute_stream(&mut prog, &inputs, &StreamOptions::default())?;
    let per_item = report.makespan() / batch as u64;
    println!(
        "CIM: {} per inference sustained ({} mean residence), {} total energy",
        per_item,
        report.mean_latency(),
        report.energy
    );
    println!(
        "     first output vector: {:?}",
        &report.outputs[0][&sink][..4.min(report.outputs[0][&sink].len())]
    );

    // 5. The same graph on the Von Neumann comparators.
    let cpu = CpuModel::new(20).expect("20 cores is a valid socket");
    let cpu_cost = cpu.run_graph(&graph, batch);
    let gpu_cost = GpuModel::new().run_graph(&graph, batch);
    println!(
        "CPU: {} per inference, {} total energy",
        cpu_cost.latency / batch as u64,
        cpu_cost.energy
    );
    println!(
        "GPU: {} per inference, {} total energy",
        gpu_cost.latency / batch as u64,
        gpu_cost.energy
    );

    let cim_s = per_item.as_secs_f64();
    println!(
        "speedup: {:.1}x vs CPU, {:.1}x vs GPU (latency); {:.1}x vs CPU (energy)",
        cpu_cost.latency.as_secs_f64() / batch as f64 / cim_s,
        gpu_cost.latency.as_secs_f64() / batch as f64 / cim_s,
        cpu_cost.energy.as_joules() / report.energy.as_joules().max(1e-18)
    );

    // 6. Where did the time and energy go? One screen of metrics.
    println!();
    print!("{}", tel.render_summary(16));

    if let Some(path) = telemetry_path {
        let text = tel.export_jsonl();
        for (i, line) in text.lines().enumerate() {
            validate_jsonl_line(line).map_err(|e| format!("telemetry line {}: {e}", i + 1))?;
        }
        std::fs::write(&path, &text)?;
        println!("telemetry: wrote {} lines to {path}", text.lines().count());
    }
    Ok(())
}
