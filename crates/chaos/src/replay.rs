//! Self-contained replay files.
//!
//! A replay file is JSON lines in the telemetry export convention —
//! every line is an object with `component`, `metric` and `value` keys
//! and passes [`cim_sim::telemetry::validate_jsonl_line`] — so the same
//! tooling that consumes telemetry can consume reproducers. Line one is
//! the header (`metric: "repro"`): campaign seed, the full
//! [`ChaosConfig`], the schedule's pressure, the violated invariant and
//! the violating run's fingerprint. Each following line is one schedule
//! event (`metric: "event/<kind>"`, `value` = fire time in
//! picoseconds), then the triage timeline: the violating run's SLO
//! alerts (`metric: "alert/<rule>"`, rendered by
//! [`cim_obs::AlertEvent::to_jsonl_line`]) so a reproducer records
//! *when* the run went bad, not just that it did. The header's `value`
//! counts schedule events only — triage lines ride behind them and are
//! routed by metric prefix on parse.
//!
//! Two `u64` fields can exceed 2^53 — the campaign seed and the run
//! fingerprint — so they are serialized as `"0x…"` hex *strings*;
//! everything else is an exact JSON number. Rendering goes through
//! [`cim_sim::json::Json`], whose `Display` is canonical, so
//! `parse(render(x)) == x` byte-for-byte on re-render.

use crate::runner::{ChaosConfig, Weaken};
use crate::schedule::{ChaosAction, ChaosEvent, ChaosSchedule, Pressure};
use cim_obs::AlertEvent;
use cim_sim::json::{self, Json};
use cim_sim::time::SimDuration;

/// Everything needed to reproduce one violating run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayFile {
    /// Campaign seed the schedule was generated from (0 for hand-built
    /// schedules).
    pub seed: u64,
    /// The exact harness configuration of the violating run.
    pub config: ChaosConfig,
    /// The (possibly shrunk) schedule that violates the invariant.
    pub schedule: ChaosSchedule,
    /// Which invariant tripped.
    pub invariant: String,
    /// Human-readable violation description.
    pub detail: String,
    /// Fingerprint of the violating run, when the run completed.
    pub fingerprint: Option<u64>,
    /// Triage timeline: the violating run's SLO alerts in firing order,
    /// ending with the synthetic `invariant/<name>` page (see
    /// [`crate::runner::Violation::alerts`]). Empty for pre-triage
    /// replay files — parsing tolerates their absence.
    pub triage: Vec<AlertEvent>,
}

fn num(v: u64) -> Json {
    // Everything serialized as a plain number stays an exact integer.
    debug_assert!(v < (1u64 << 53));
    Json::Number(v as f64)
}

fn hex(v: u64) -> Json {
    Json::String(format!("{v:#018x}"))
}

fn action_pairs(action: &ChaosAction) -> Vec<(String, Json)> {
    let mut p = Vec::new();
    let mut push = |k: &str, v: u64| p.push((k.to_owned(), num(v)));
    match *action {
        ChaosAction::FailUnit { unit } | ChaosAction::RepairUnit { unit } => {
            push("unit", u64::from(unit));
        }
        ChaosAction::FailLink { ax, ay, bx, by } | ChaosAction::RepairLink { ax, ay, bx, by } => {
            push("ax", u64::from(ax));
            push("ay", u64::from(ay));
            push("bx", u64::from(bx));
            push("by", u64::from(by));
        }
        ChaosAction::CellFaults {
            unit,
            rate_ppm,
            stuck_on_ppm,
            seed,
        } => {
            push("unit", u64::from(unit));
            push("rate_ppm", u64::from(rate_ppm));
            push("stuck_on_ppm", u64::from(stuck_on_ppm));
            push("seed", u64::from(seed));
        }
        ChaosAction::DriftSpike { unit, drift_ppm } => {
            push("unit", u64::from(unit));
            push("drift_ppm", u64::from(drift_ppm));
        }
        ChaosAction::Congestion {
            ax,
            ay,
            bx,
            by,
            packets,
            bytes,
        } => {
            push("ax", u64::from(ax));
            push("ay", u64::from(ay));
            push("bx", u64::from(bx));
            push("by", u64::from(by));
            push("packets", u64::from(packets));
            push("bytes", u64::from(bytes));
        }
        ChaosAction::ArrivalBurst { extra } => push("extra", u64::from(extra)),
        ChaosAction::DeviceDown { device } | ChaosAction::DeviceUp { device } => {
            push("device", u64::from(device));
        }
        ChaosAction::PowerLoss {
            device,
            restart_after_ps,
        } => {
            push("device", u64::from(device));
            push("restart_after_ps", u64::from(restart_after_ps));
        }
        ChaosAction::ForgeToken { unit } => push("unit", u64::from(unit)),
        ChaosAction::ReplayToken { unit, age_ps } => {
            push("unit", u64::from(unit));
            push("age_ps", u64::from(age_ps));
        }
        ChaosAction::CrossPartitionScan {
            vx,
            vy,
            packets,
            bytes,
        } => {
            push("vx", u64::from(vx));
            push("vy", u64::from(vy));
            push("packets", u64::from(packets));
            push("bytes", u64::from(bytes));
        }
        ChaosAction::HostileSelfProg { seed } | ChaosAction::HostileDataflow { seed } => {
            push("seed", u64::from(seed));
        }
    }
    p
}

/// Renders a replay file to its JSON-lines text.
pub fn render_replay(file: &ReplayFile) -> String {
    let cfg = &file.config;
    let mut header: Vec<(String, Json)> = vec![
        ("component".to_owned(), Json::String("chaos".to_owned())),
        ("metric".to_owned(), Json::String("repro".to_owned())),
        ("value".to_owned(), num(file.schedule.events.len() as u64)),
        ("seed".to_owned(), hex(file.seed)),
        ("mesh_width".to_owned(), num(cfg.mesh_width as u64)),
        ("mesh_height".to_owned(), num(cfg.mesh_height as u64)),
        ("units_per_tile".to_owned(), num(cfg.units_per_tile as u64)),
        ("requests".to_owned(), num(cfg.requests as u64)),
        ("base_rate_hz".to_owned(), Json::Number(cfg.base_rate_hz)),
        ("queue_capacity".to_owned(), num(cfg.queue_capacity as u64)),
        ("max_attempts".to_owned(), num(u64::from(cfg.max_attempts))),
        (
            "base_deadline_ps".to_owned(),
            num(cfg.base_deadline.as_ps()),
        ),
        (
            "recovery_bound_ps".to_owned(),
            num(cfg.recovery_bound.as_ps()),
        ),
        ("horizon_ps".to_owned(), num(cfg.horizon_ps)),
        ("max_events".to_owned(), num(cfg.max_events as u64)),
        ("fleet_devices".to_owned(), num(cfg.fleet_devices as u64)),
        ("fleet_replicas".to_owned(), num(cfg.fleet_replicas as u64)),
        ("power_loss".to_owned(), num(u64::from(cfg.power_loss))),
        ("adversarial".to_owned(), num(u64::from(cfg.adversarial))),
        (
            "weaken".to_owned(),
            Json::String(cfg.weaken.name().to_owned()),
        ),
        (
            "rate_x1000".to_owned(),
            num(u64::from(file.schedule.pressure.rate_x1000)),
        ),
        (
            "deadline_div".to_owned(),
            num(u64::from(file.schedule.pressure.deadline_div)),
        ),
        ("invariant".to_owned(), Json::String(file.invariant.clone())),
        ("detail".to_owned(), Json::String(file.detail.clone())),
    ];
    header.push((
        "fingerprint".to_owned(),
        match file.fingerprint {
            Some(fp) => hex(fp),
            None => Json::Null,
        },
    ));

    let mut out = Json::Object(header).to_string();
    out.push('\n');
    for ev in &file.schedule.events {
        let mut pairs: Vec<(String, Json)> = vec![
            ("component".to_owned(), Json::String("chaos".to_owned())),
            (
                "metric".to_owned(),
                Json::String(format!("event/{}", ev.action.kind_name())),
            ),
            ("value".to_owned(), num(ev.at_ps)),
        ];
        pairs.extend(action_pairs(&ev.action));
        out.push_str(&Json::Object(pairs).to_string());
        out.push('\n');
    }
    for alert in &file.triage {
        out.push_str(&alert.to_jsonl_line());
        out.push('\n');
    }
    out
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field \"{key}\""))
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field \"{key}\""))
}

fn get_hex(obj: &Json, key: &str) -> Result<u64, String> {
    let s = get_str(obj, key)?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("field \"{key}\" is not a 0x-hex string: {s:?}"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("field \"{key}\" is not hex: {e}"))
}

fn get_u16(obj: &Json, key: &str) -> Result<u16, String> {
    u16::try_from(get_u64(obj, key)?).map_err(|_| format!("field \"{key}\" exceeds u16"))
}

fn get_u32(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(obj, key)?).map_err(|_| format!("field \"{key}\" exceeds u32"))
}

fn parse_event(obj: &Json) -> Result<ChaosEvent, String> {
    let metric = get_str(obj, "metric")?;
    let kind = metric
        .strip_prefix("event/")
        .ok_or_else(|| format!("event line metric {metric:?} lacks the event/ prefix"))?;
    let at_ps = get_u64(obj, "value")?;
    let action = match kind {
        "fail_unit" => ChaosAction::FailUnit {
            unit: get_u16(obj, "unit")?,
        },
        "repair_unit" => ChaosAction::RepairUnit {
            unit: get_u16(obj, "unit")?,
        },
        "fail_link" => ChaosAction::FailLink {
            ax: get_u16(obj, "ax")?,
            ay: get_u16(obj, "ay")?,
            bx: get_u16(obj, "bx")?,
            by: get_u16(obj, "by")?,
        },
        "repair_link" => ChaosAction::RepairLink {
            ax: get_u16(obj, "ax")?,
            ay: get_u16(obj, "ay")?,
            bx: get_u16(obj, "bx")?,
            by: get_u16(obj, "by")?,
        },
        "cell_faults" => ChaosAction::CellFaults {
            unit: get_u16(obj, "unit")?,
            rate_ppm: get_u32(obj, "rate_ppm")?,
            stuck_on_ppm: get_u32(obj, "stuck_on_ppm")?,
            seed: get_u32(obj, "seed")?,
        },
        "drift_spike" => ChaosAction::DriftSpike {
            unit: get_u16(obj, "unit")?,
            drift_ppm: get_u32(obj, "drift_ppm")?,
        },
        "congestion" => ChaosAction::Congestion {
            ax: get_u16(obj, "ax")?,
            ay: get_u16(obj, "ay")?,
            bx: get_u16(obj, "bx")?,
            by: get_u16(obj, "by")?,
            packets: get_u16(obj, "packets")?,
            bytes: get_u16(obj, "bytes")?,
        },
        "arrival_burst" => ChaosAction::ArrivalBurst {
            extra: get_u16(obj, "extra")?,
        },
        "device_down" => ChaosAction::DeviceDown {
            device: get_u16(obj, "device")?,
        },
        "device_up" => ChaosAction::DeviceUp {
            device: get_u16(obj, "device")?,
        },
        "power_loss" => ChaosAction::PowerLoss {
            device: get_u16(obj, "device")?,
            restart_after_ps: get_u32(obj, "restart_after_ps")?,
        },
        "forge_token" => ChaosAction::ForgeToken {
            unit: get_u16(obj, "unit")?,
        },
        "replay_token" => ChaosAction::ReplayToken {
            unit: get_u16(obj, "unit")?,
            age_ps: get_u32(obj, "age_ps")?,
        },
        "cross_partition_scan" => ChaosAction::CrossPartitionScan {
            vx: get_u16(obj, "vx")?,
            vy: get_u16(obj, "vy")?,
            packets: get_u16(obj, "packets")?,
            bytes: get_u16(obj, "bytes")?,
        },
        "hostile_self_prog" => ChaosAction::HostileSelfProg {
            seed: get_u32(obj, "seed")?,
        },
        "hostile_dataflow" => ChaosAction::HostileDataflow {
            seed: get_u32(obj, "seed")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(ChaosEvent { at_ps, action })
}

/// Parses a replay file from its JSON-lines text.
///
/// # Errors
///
/// Returns a description of the first malformed line or field.
pub fn parse_replay(text: &str) -> Result<ReplayFile, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines
        .next()
        .ok_or_else(|| "replay file is empty".to_owned())?;
    let header = json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    if get_str(&header, "metric")? != "repro" {
        return Err("first line is not a repro header (metric != \"repro\")".to_owned());
    }

    let weaken_name = get_str(&header, "weaken")?;
    let config = ChaosConfig {
        mesh_width: get_u64(&header, "mesh_width")? as usize,
        mesh_height: get_u64(&header, "mesh_height")? as usize,
        units_per_tile: get_u64(&header, "units_per_tile")? as usize,
        requests: get_u64(&header, "requests")? as usize,
        base_rate_hz: header
            .get("base_rate_hz")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing or non-numeric field \"base_rate_hz\"".to_owned())?,
        queue_capacity: get_u64(&header, "queue_capacity")? as usize,
        max_attempts: get_u32(&header, "max_attempts")?,
        base_deadline: SimDuration::from_ps(get_u64(&header, "base_deadline_ps")?),
        recovery_bound: SimDuration::from_ps(get_u64(&header, "recovery_bound_ps")?),
        horizon_ps: get_u64(&header, "horizon_ps")?,
        max_events: get_u64(&header, "max_events")? as usize,
        // Pre-fleet replay files lack these fields; default to the
        // single-device harness they were recorded against.
        fleet_devices: header
            .get("fleet_devices")
            .and_then(Json::as_u64)
            .unwrap_or(0) as usize,
        fleet_replicas: header
            .get("fleet_replicas")
            .and_then(Json::as_u64)
            .unwrap_or(2) as usize,
        // Pre-crash replay files lack this field; those campaigns never
        // generated PowerLoss events.
        power_loss: header.get("power_loss").and_then(Json::as_u64).unwrap_or(0) != 0,
        // Pre-adversarial replay files lack this field; those campaigns
        // never generated attack events.
        adversarial: header
            .get("adversarial")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            != 0,
        weaken: Weaken::from_name(weaken_name)
            .ok_or_else(|| format!("unknown weaken mode {weaken_name:?}"))?,
    };
    let pressure = Pressure {
        rate_x1000: get_u32(&header, "rate_x1000")?,
        deadline_div: get_u32(&header, "deadline_div")?,
    };
    let declared_events = get_u64(&header, "value")? as usize;
    let fingerprint = match header.get("fingerprint") {
        Some(Json::Null) | None => None,
        Some(_) => Some(get_hex(&header, "fingerprint")?),
    };

    let mut events = Vec::with_capacity(declared_events);
    let mut triage = Vec::new();
    for (i, line) in lines.enumerate() {
        let obj = json::parse(line).map_err(|e| format!("body line {}: {e}", i + 1))?;
        let metric = get_str(&obj, "metric")?;
        if metric.starts_with("alert/") {
            triage.push(
                AlertEvent::parse_jsonl_line(line)
                    .map_err(|e| format!("triage line {}: {e}", i + 1 - events.len()))?,
            );
        } else {
            events.push(parse_event(&obj).map_err(|e| format!("event line {}: {e}", i + 1))?);
        }
    }
    if events.len() != declared_events {
        return Err(format!(
            "header declares {declared_events} events, file has {}",
            events.len()
        ));
    }

    Ok(ReplayFile {
        seed: get_hex(&header, "seed")?,
        config,
        schedule: ChaosSchedule { pressure, events },
        invariant: get_str(&header, "invariant")?.to_owned(),
        detail: get_str(&header, "detail")?.to_owned(),
        fingerprint,
        triage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::telemetry::validate_jsonl_line;

    fn sample() -> ReplayFile {
        ReplayFile {
            seed: 0xFFFF_FFFF_FFFF_FFFF, // deliberately above 2^53
            config: ChaosConfig {
                weaken: Weaken::RecoveryBoundZero,
                adversarial: true,
                ..ChaosConfig::default()
            },
            schedule: ChaosSchedule {
                pressure: Pressure {
                    rate_x1000: 4000,
                    deadline_div: 2,
                },
                events: vec![
                    ChaosEvent {
                        at_ps: 1_000_000,
                        action: ChaosAction::FailUnit { unit: 3 },
                    },
                    ChaosEvent {
                        at_ps: 2_000_000,
                        action: ChaosAction::CellFaults {
                            unit: 1,
                            rate_ppm: 500,
                            stuck_on_ppm: 250_000,
                            seed: u32::MAX,
                        },
                    },
                    ChaosEvent {
                        at_ps: 3_000_000,
                        action: ChaosAction::Congestion {
                            ax: 0,
                            ay: 1,
                            bx: 3,
                            by: 0,
                            packets: 16,
                            bytes: 128,
                        },
                    },
                    ChaosEvent {
                        at_ps: 4_000_000,
                        action: ChaosAction::ArrivalBurst { extra: 9 },
                    },
                    ChaosEvent {
                        at_ps: 5_000_000,
                        action: ChaosAction::PowerLoss {
                            device: 1,
                            restart_after_ps: 25_000_000,
                        },
                    },
                    ChaosEvent {
                        at_ps: 6_000_000,
                        action: ChaosAction::ForgeToken { unit: 5 },
                    },
                    ChaosEvent {
                        at_ps: 7_000_000,
                        action: ChaosAction::ReplayToken {
                            unit: 2,
                            age_ps: 60_000_000,
                        },
                    },
                    ChaosEvent {
                        at_ps: 8_000_000,
                        action: ChaosAction::CrossPartitionScan {
                            vx: 1,
                            vy: 0,
                            packets: 4,
                            bytes: 96,
                        },
                    },
                    ChaosEvent {
                        at_ps: 9_000_000,
                        action: ChaosAction::HostileSelfProg { seed: 1234 },
                    },
                    ChaosEvent {
                        at_ps: 10_000_000,
                        action: ChaosAction::HostileDataflow { seed: 4321 },
                    },
                ],
            },
            invariant: "recovery_bound".to_owned(),
            detail: "recovery took 12.5 µs, bound is 0.0 µs".to_owned(),
            fingerprint: Some(0xDEAD_BEEF_DEAD_BEEF),
            triage: vec![
                AlertEvent {
                    at: cim_sim::time::SimTime::from_ps(2_500_000),
                    tenant: "mlp".to_owned(),
                    rule: "zero_loss".to_owned(),
                    severity: cim_obs::AlertSeverity::Page,
                    burn_rate: 1.0,
                    window: SimDuration::ZERO,
                },
                AlertEvent {
                    at: cim_sim::time::SimTime::from_ps(4_000_000),
                    tenant: "chaos".to_owned(),
                    rule: "invariant/recovery_bound".to_owned(),
                    severity: cim_obs::AlertSeverity::Page,
                    burn_rate: 1.0,
                    window: SimDuration::ZERO,
                },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let file = sample();
        let text = render_replay(&file);
        let parsed = parse_replay(&text).expect("parses");
        assert_eq!(parsed, file);
        assert_eq!(render_replay(&parsed), text, "canonical re-render");
    }

    #[test]
    fn every_line_is_telemetry_schema_valid() {
        let text = render_replay(&sample());
        for line in text.lines() {
            validate_jsonl_line(line).expect("replay lines reuse the telemetry schema");
        }
    }

    #[test]
    fn truncated_and_malformed_files_are_rejected() {
        let text = render_replay(&sample());
        let mut lines: Vec<&str> = text.lines().collect();
        // Drop the two triage lines plus the last schedule event so the
        // header's event count no longer matches.
        lines.truncate(lines.len() - 3);
        let truncated = lines.join("\n");
        assert!(parse_replay(&truncated)
            .expect_err("event count mismatch")
            .contains("declares"));
        assert!(parse_replay("").is_err());
        assert!(parse_replay("{\"component\":\"chaos\",\"metric\":\"other\"}").is_err());
    }
}
