//! Fault-injection campaigns for crossbar arrays.
//!
//! The paper's §V.A argues CIM fault tolerance must be revisited because
//! "application code is built into the silicon": a stuck cell corrupts a
//! *weight*, not a transient value. This module injects device faults at a
//! configurable rate and measures the accuracy impact, feeding both the
//! reliability experiments and the redundancy ablation.

use crate::device::CellFault;
use crate::dpe::DotProductEngine;
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// Parameters of a random stuck-at fault campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCampaign {
    /// Probability that any given cell is faulty.
    pub cell_fault_rate: f64,
    /// Of faulty cells, the fraction stuck at maximum conductance
    /// (the rest are stuck at minimum).
    pub stuck_on_fraction: f64,
}

impl FaultCampaign {
    /// Creates a campaign.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn new(cell_fault_rate: f64, stuck_on_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cell_fault_rate),
            "fault rate must be in [0,1], got {cell_fault_rate}"
        );
        assert!(
            (0.0..=1.0).contains(&stuck_on_fraction),
            "stuck-on fraction must be in [0,1], got {stuck_on_fraction}"
        );
        FaultCampaign {
            cell_fault_rate,
            stuck_on_fraction,
        }
    }

    /// Injects faults into every array of a programmed engine; returns the
    /// number of cells faulted.
    pub fn inject(&self, dpe: &mut DotProductEngine, seeds: SeedTree) -> usize {
        let mut rng = seeds.rng("fault-campaign");
        let mut injected = 0;
        let rate = self.cell_fault_rate;
        let on_frac = self.stuck_on_fraction;
        dpe.for_each_array(|_, _, _, _, xbar| {
            let (rows, cols) = (xbar.rows(), xbar.cols());
            for r in 0..rows {
                for c in 0..cols {
                    if rng.gen::<f64>() < rate {
                        let fault = if rng.gen::<f64>() < on_frac {
                            CellFault::StuckOn
                        } else {
                            CellFault::StuckOff
                        };
                        xbar.inject_fault(r, c, fault).expect("in-bounds");
                        injected += 1;
                    }
                }
            }
        });
        injected
    }
}

/// Root-mean-square error between a faulty engine's output and a
/// reference, normalized by the reference RMS. Used as the accuracy
/// metric in fault and aging experiments.
///
/// # Panics
///
/// Panics if the slices differ in length or the reference is all zeros.
pub fn normalized_rmse(got: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(got.len(), reference.len(), "length mismatch");
    let ref_ms: f64 = reference.iter().map(|x| x * x).sum::<f64>() / reference.len().max(1) as f64;
    assert!(ref_ms > 0.0, "reference must be non-zero");
    let err_ms: f64 = got
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / got.len() as f64;
    (err_ms / ref_ms).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpe::DpeConfig;
    use crate::matrix::DenseMatrix;

    fn programmed_engine() -> (DotProductEngine, DenseMatrix, Vec<f64>) {
        let w = DenseMatrix::from_fn(64, 32, |r, c| (((r + c) % 13) as f64 / 13.0) - 0.4);
        let mut dpe = DotProductEngine::new(DpeConfig::ideal(), SeedTree::new(11));
        dpe.program(&w).unwrap();
        let x: Vec<f64> = (0..64).map(|i| ((i % 7) as f64 / 7.0) + 0.1).collect();
        (dpe, w, x)
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let (mut dpe, w, x) = programmed_engine();
        let n = FaultCampaign::new(0.0, 0.5).inject(&mut dpe, SeedTree::new(1));
        assert_eq!(n, 0);
        let out = dpe.matvec(&x).unwrap();
        let exact = w.matvec(&x).unwrap();
        assert!(normalized_rmse(&out.values, &exact) < 0.02);
    }

    #[test]
    fn fault_rate_controls_injection_count() {
        let (mut dpe, _, _) = programmed_engine();
        let total_cells = dpe.footprint().unwrap().cells as f64;
        let n = FaultCampaign::new(0.01, 0.5).inject(&mut dpe, SeedTree::new(2));
        let expected = total_cells * 0.01;
        assert!(
            (n as f64) > expected * 0.6 && (n as f64) < expected * 1.4,
            "injected {n}, expected about {expected}"
        );
    }

    #[test]
    fn faults_degrade_accuracy_monotonically_in_expectation() {
        let mut errs = Vec::new();
        for rate in [0.0, 0.02, 0.2] {
            let (mut dpe, w, x) = programmed_engine();
            FaultCampaign::new(rate, 0.5).inject(&mut dpe, SeedTree::new(3));
            let out = dpe.matvec(&x).unwrap();
            let exact = w.matvec(&x).unwrap();
            errs.push(normalized_rmse(&out.values, &exact));
        }
        assert!(errs[0] < errs[1], "errors {errs:?}");
        assert!(errs[1] < errs[2], "errors {errs:?}");
    }

    #[test]
    fn stuck_on_fraction_biases_outputs() {
        // All faults stuck-on should bias positive-sign arrays upward.
        let (mut dpe, w, x) = programmed_engine();
        FaultCampaign::new(0.05, 1.0).inject(&mut dpe, SeedTree::new(4));
        let out = dpe.matvec(&x).unwrap();
        let exact = w.matvec(&x).unwrap();
        assert!(normalized_rmse(&out.values, &exact) > 0.0);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn invalid_rate_panics() {
        let _ = FaultCampaign::new(1.5, 0.0);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(normalized_rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = normalized_rmse(&[2.0], &[1.0]);
        assert!((e - 1.0).abs() < 1e-12);
    }
}
