//! Shared-memory multiprocessor model (Table 1, column "Parallel").
//!
//! The paper's Table 1 characterizes shared-memory machines as scaling to
//! "100s of cores" with multi-threaded programming, partition-granularity
//! failure, and partition-wide security exposure. This model makes those
//! three rows measurable:
//!
//! * **scaling** — Universal Scalability Law throughput with coherence
//!   contention (the "coherence wall" that caps useful core counts);
//! * **failure tolerance** — a fault takes down the whole partition and
//!   loses all uncheckpointed work;
//! * **security** — one compromised thread reaches the entire shared
//!   address space (blast radius 1.0).

use crate::cost::PlatformCost;
use cim_sim::calib::{cpu, smp};
use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// A cache-coherent shared-memory machine.
///
/// # Examples
///
/// ```
/// use cim_baseline::shared_memory::SmpMachine;
///
/// let m = SmpMachine::new(64).unwrap();
/// assert!(m.speedup(64) > 20.0);
/// assert!(m.speedup(64) < 64.0, "coherence overhead is not free");
/// ```
#[derive(Debug, Clone)]
pub struct SmpMachine {
    cores: usize,
    /// Serial/contention fraction (USL sigma).
    sigma: f64,
    /// Coherence (crosstalk) coefficient (USL kappa).
    kappa: f64,
}

impl SmpMachine {
    /// Creates a machine with `cores` cores and calibrated contention.
    ///
    /// Returns `None` if `cores` is zero or exceeds the calibrated maximum
    /// partition size.
    pub fn new(cores: usize) -> Option<Self> {
        if cores == 0 || cores > smp::MAX_CORES {
            return None;
        }
        Some(SmpMachine {
            cores,
            sigma: smp::CONTENTION_PER_CORE,
            kappa: smp::CONTENTION_PER_CORE / 10.0,
        })
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// USL speedup at `n` active cores relative to one core.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the machine's cores.
    pub fn speedup(&self, n: usize) -> f64 {
        assert!(n >= 1 && n <= self.cores, "n must be in 1..=cores");
        let nf = n as f64;
        nf / (1.0 + self.sigma * (nf - 1.0) + self.kappa * nf * (nf - 1.0))
    }

    /// The core count with the highest throughput — beyond it coherence
    /// crosstalk makes adding cores *slow the machine down* (the scaling
    /// wall Table 1 row 2 refers to).
    pub fn useful_scale_limit(&self) -> usize {
        (1..=self.cores)
            .max_by(|&a, &b| {
                self.speedup(a)
                    .partial_cmp(&self.speedup(b))
                    .expect("speedup is finite")
            })
            .expect("at least one core")
    }

    /// Runs `items` work items of `flops_each` on `n` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the machine's cores.
    pub fn run_stream(&self, items: u64, flops_each: u64, n: usize) -> PlatformCost {
        let single_core_s = (items * flops_each) as f64 / cpu::FLOPS_PER_CORE;
        let latency = SimDuration::from_secs_f64(single_core_s / self.speedup(n));
        // Coherence misses add energy: each contended access pays a
        // remote-socket round trip.
        let coherence_fraction = self.sigma * (n as f64 - 1.0);
        let coherence_accesses = (items as f64 * coherence_fraction).max(0.0) as u64;
        let mut energy = Energy::from_fj(
            items * flops_each * cpu::ENERGY_PER_FLOP_FJ
                + coherence_accesses * cpu::ENERGY_PER_DRAM_BYTE_FJ * cpu::LINE_BYTES as u64,
        );
        energy += Energy::from_joules(
            cpu::STATIC_W * (n as f64 / cpu::CORES as f64) * latency.as_secs_f64(),
        );
        PlatformCost { latency, energy }
    }

    /// Consequence of a hardware fault at `progress` (fraction of a run
    /// completed) with checkpoints every `checkpoint_interval` fraction:
    /// the whole partition fails, losing everything since the last
    /// checkpoint, and pays a full partition reboot.
    ///
    /// Returns `(lost_fraction, downtime)`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are in `(0, 1]`.
    pub fn fault_impact(&self, progress: f64, checkpoint_interval: f64) -> (f64, SimDuration) {
        assert!((0.0..=1.0).contains(&progress), "progress in [0,1]");
        assert!(
            checkpoint_interval > 0.0 && checkpoint_interval <= 1.0,
            "checkpoint interval in (0,1]"
        );
        let lost = progress % checkpoint_interval;
        // Partition reboot: OS + application restart, ~60 s scaled by size.
        let reboot = SimDuration::from_secs_f64(60.0 + 0.05 * self.cores as f64);
        (lost, reboot)
    }

    /// Fraction of system state reachable from one compromised thread:
    /// the entire shared address space.
    pub fn compromise_blast_radius(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(SmpMachine::new(0).is_none());
        assert!(SmpMachine::new(smp::MAX_CORES + 1).is_none());
        assert!(SmpMachine::new(smp::MAX_CORES).is_some());
    }

    #[test]
    fn speedup_is_sublinear_and_eventually_retrogrades() {
        let m = SmpMachine::new(1024).unwrap();
        assert_eq!(m.speedup(1), 1.0);
        assert!(m.speedup(64) > m.speedup(16));
        let limit = m.useful_scale_limit();
        assert!(limit < 1024, "coherence wall below max cores, got {limit}");
        assert!(
            m.speedup(1024) < m.speedup(limit),
            "past the wall, more cores are slower"
        );
    }

    #[test]
    fn stream_faster_on_more_cores_below_wall() {
        let m = SmpMachine::new(256).unwrap();
        let t8 = m.run_stream(10_000, 1_000_000, 8).latency;
        let t64 = m.run_stream(10_000, 1_000_000, 64).latency;
        assert!(t64 < t8);
    }

    #[test]
    fn fault_loses_work_since_checkpoint() {
        let m = SmpMachine::new(128).unwrap();
        let (lost, downtime) = m.fault_impact(0.55, 0.25);
        assert!((lost - 0.05).abs() < 1e-12);
        assert!(downtime.as_secs_f64() > 60.0);
        let (lost_no_ckpt, _) = m.fault_impact(0.99, 1.0);
        assert!(
            (lost_no_ckpt - 0.99).abs() < 1e-12,
            "no checkpoints: lose it all"
        );
    }

    #[test]
    fn blast_radius_is_total() {
        assert_eq!(SmpMachine::new(4).unwrap().compromise_blast_radius(), 1.0);
    }

    #[test]
    fn energy_grows_with_contention() {
        let m = SmpMachine::new(512).unwrap();
        let e_few = m.run_stream(100_000, 1_000, 2).energy;
        let e_many = m.run_stream(100_000, 1_000, 512).energy;
        assert!(e_many > e_few, "coherence traffic costs energy");
    }
}
