//! Regenerates §VI: Dot Product Engine vs CPU vs GPU (latency,
//! throughput, power), including the per-component breakdown of the CIM
//! batch-1 operating point. Pass a layer dimension to override the
//! default paper-scale 4096; pass `--telemetry out.jsonl` to export the
//! raw device metrics.
fn main() {
    let (args, tel_path) = cim_bench::telemetry_out::split_telemetry_arg(std::env::args().skip(1));
    let dim = args.first().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let (report, tel) = cim_bench::experiments::sec6::run_with_telemetry(dim, 6);
    print!("{}", cim_bench::experiments::sec6::render(&report));
    if let Some(path) = tel_path {
        let lines = cim_bench::telemetry_out::write_export(&tel, &path)
            .unwrap_or_else(|e| panic!("telemetry export to {}: {e}", path.display()));
        eprintln!("telemetry: wrote {lines} lines to {}", path.display());
    }
}
