//! ROOF: roofline placement of the Table 2 workload suite.
fn main() {
    let rows = cim_bench::experiments::roofline::run();
    print!("{}", cim_bench::experiments::roofline::render(&rows));
}
