//! Error types for the network-on-chip crate.

use crate::packet::NodeId;
use core::fmt;

/// Errors raised by NoC routing and transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A node coordinate is outside the mesh.
    UnknownNode {
        /// The offending node.
        node: NodeId,
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// The isolation policy forbids this source–destination pair.
    IsolationViolation {
        /// Packet source.
        src: NodeId,
        /// Packet destination.
        dst: NodeId,
    },
    /// No route exists (all candidate paths cross failed links).
    NoRoute {
        /// Packet source.
        src: NodeId,
        /// Packet destination.
        dst: NodeId,
    },
    /// The packet failed authentication at the destination boundary.
    AuthenticationFailed {
        /// Packet identifier.
        packet_id: u64,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::UnknownNode {
                node,
                width,
                height,
            } => write!(f, "node {node} outside {width}x{height} mesh"),
            NocError::IsolationViolation { src, dst } => {
                write!(f, "isolation policy forbids traffic {src} -> {dst}")
            }
            NocError::NoRoute { src, dst } => {
                write!(f, "no live route {src} -> {dst}")
            }
            NocError::AuthenticationFailed { packet_id } => {
                write!(f, "packet {packet_id} failed authentication")
            }
        }
    }
}

impl std::error::Error for NocError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, NocError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parties() {
        let e = NocError::IsolationViolation {
            src: NodeId::new(0, 0),
            dst: NodeId::new(1, 2),
        };
        assert!(e.to_string().contains("(0,0)"));
        assert!(e.to_string().contains("(1,2)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NocError>();
    }
}
