//! Reproduces a chaos violation from its replay file.
//!
//! ```text
//! chaos_replay path/to/repro.jsonl
//! ```
//!
//! Parses the replay file, re-runs the recorded schedule under the
//! recorded config, and checks the violation reproduces: same
//! invariant, and — when the file carries one — a bit-identical run
//! fingerprint. Exit 0 on a faithful reproduction, 1 otherwise. Because
//! the whole stack is deterministic, running this under different
//! `CIM_THREADS` settings must give the same result; CI does exactly
//! that.

use cim_chaos::replay::parse_replay;
use cim_chaos::runner::run_schedule;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: chaos_replay path/to/repro.jsonl");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos_replay: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match parse_replay(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("chaos_replay: malformed replay file: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "replaying seed {:#018x}: {} events, recorded violation '{}' ({})",
        file.seed,
        file.schedule.events.len(),
        file.invariant,
        file.detail
    );

    match run_schedule(&file.config, &file.schedule) {
        Ok(rec) => {
            eprintln!(
                "NOT REPRODUCED: the schedule now satisfies every invariant \
                 (fingerprint {:#018x})",
                rec.fingerprint
            );
            ExitCode::FAILURE
        }
        Err(v) => {
            if v.invariant != file.invariant {
                eprintln!(
                    "DIFFERENT VIOLATION: recorded '{}', observed '{}' ({})",
                    file.invariant, v.invariant, v.detail
                );
                return ExitCode::FAILURE;
            }
            match (file.fingerprint, v.fingerprint) {
                (Some(want), Some(got)) if want != got => {
                    eprintln!("FINGERPRINT MISMATCH: recorded {want:#018x}, observed {got:#018x}");
                    ExitCode::FAILURE
                }
                _ => {
                    println!(
                        "reproduced: '{}' ({}){}",
                        v.invariant,
                        v.detail,
                        v.fingerprint
                            .map(|fp| format!(", fingerprint {fp:#018x}"))
                            .unwrap_or_default()
                    );
                    ExitCode::SUCCESS
                }
            }
        }
    }
}
