//! Minimal in-tree property-testing harness (replaces `proptest`).
//!
//! A property is a seeded generator plus a predicate. The harness runs the
//! predicate over `cases` generated inputs; on the first failure it shrinks
//! the input by halving (numbers toward zero, vectors toward shorter) and
//! panics with the **case seed**, so any failure replays exactly:
//!
//! ```text
//! PROP_CASE_SEED=0x1d35..   # re-run just the failing case
//! PROP_SEED=7 PROP_CASES=10000   # widen or re-seed the whole sweep
//! ```
//!
//! ## Example
//!
//! ```
//! use cim_sim::prop::{check, PropConfig};
//! use cim_sim::rng::Rng;
//!
//! check(
//!     "reverse twice is identity",
//!     &PropConfig::cases(64),
//!     |rng| {
//!         let n = rng.gen_range(0usize..20);
//!         (0..n).map(|_| rng.gen::<u32>()).collect::<Vec<_>>()
//!     },
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         cim_sim::prop_assert_eq!(&w, v);
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::{splitmix64, Xoshiro256pp};
use std::fmt::Debug;

/// How many cases to run and from which root seed.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of generated cases (overridable with `PROP_CASES`).
    pub cases: u64,
    /// Root seed for the sweep (overridable with `PROP_SEED`).
    pub seed: u64,
    /// Cap on shrink iterations once a failure is found.
    pub max_shrink_steps: u32,
}

fn parse_u64(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| parse_u64(&v))
}

impl PropConfig {
    /// A config running `cases` cases, honouring the `PROP_CASES` and
    /// `PROP_SEED` environment overrides.
    pub fn cases(cases: u64) -> Self {
        PropConfig {
            cases: env_u64("PROP_CASES").unwrap_or(cases),
            seed: env_u64("PROP_SEED").unwrap_or(0x5EED_CA5E),
            max_shrink_steps: 1000,
        }
    }
}

/// Runs `property` over `cfg.cases` inputs drawn from `generate`.
///
/// Each case gets its own RNG seeded from `splitmix64(root ^ index)`, so a
/// reported case seed replays the exact input regardless of how many cases
/// precede it. Set `PROP_CASE_SEED` to run only that one case.
///
/// # Panics
///
/// Panics (failing the enclosing test) on the first falsified case, after
/// shrinking, with the case seed and both the original and shrunk inputs.
pub fn check<T, G, P>(name: &str, cfg: &PropConfig, mut generate: G, property: P)
where
    T: Debug + Clone + Shrink,
    G: FnMut(&mut Xoshiro256pp) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    if let Ok(v) = std::env::var("PROP_CASE_SEED") {
        let seed = parse_u64(&v).expect("PROP_CASE_SEED must be a u64 (decimal or 0x-hex)");
        run_case(name, seed, cfg, &mut generate, &property);
        return;
    }
    for case in 0..cfg.cases {
        let case_seed = splitmix64(cfg.seed ^ splitmix64(case));
        run_case(name, case_seed, cfg, &mut generate, &property);
    }
}

fn run_case<T, G, P>(name: &str, case_seed: u64, cfg: &PropConfig, generate: &mut G, property: &P)
where
    T: Debug + Clone + Shrink,
    G: FnMut(&mut Xoshiro256pp) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
    let input = generate(&mut rng);
    if let Err(original_error) = property(&input) {
        let (shrunk, error, steps) = shrink_failure(
            input.clone(),
            original_error.clone(),
            property,
            cfg.max_shrink_steps,
        );
        panic!(
            "property '{name}' falsified (case seed {case_seed:#018x})\n\
             original input: {input:?}\n\
             original error: {original_error}\n\
             shrunk input ({steps} steps): {shrunk:?}\n\
             shrunk error: {error}\n\
             replay just this case with PROP_CASE_SEED={case_seed:#x}"
        );
    }
}

/// Shrinks a *known-failing* input to a smaller one that still fails.
///
/// This is the same greedy loop [`check`] uses after falsifying a case,
/// exposed for harnesses that discover failures outside the property
/// sweep (e.g. a chaos campaign that already holds a failing fault
/// schedule). `property` must return `Err` for `input`; the returned
/// tuple is the shrunk input, the error it produced, and the number of
/// accepted shrink steps.
///
/// The loop is deterministic: candidates come from
/// [`Shrink::shrink_candidates`] in order and the first still-failing
/// candidate is always taken, so the same input shrinks to the same
/// minimum regardless of host threading.
pub fn shrink<T, P>(input: T, error: String, property: &P, max_steps: u32) -> (T, String, u32)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    shrink_failure(input, error, property, max_steps)
}

/// Greedy shrink: repeatedly take the first candidate that still fails.
fn shrink_failure<T, P>(
    mut input: T,
    mut error: String,
    property: &P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in input.shrink_candidates() {
            if let Err(e) = property(&candidate) {
                input = candidate;
                error = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (input, error, steps)
}

/// Produces structurally smaller variants of a failing input.
///
/// Numbers halve toward zero; vectors halve toward shorter. Implementations
/// must only yield values strictly "smaller" than `self` so the greedy
/// shrink loop terminates.
pub trait Shrink: Sized {
    /// Candidate smaller inputs, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    out.push(v - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}

shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    out.push(v - v.signum());
                    out.dedup();
                }
                out
            }
        }
    )*};
}

shrink_signed!(i8, i16, i32, i64, isize);

macro_rules! shrink_float {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0.0 && v.is_finite() {
                    out.push(0.0);
                    let half = v / 2.0;
                    if half != 0.0 {
                        out.push(half);
                    }
                    let trunc = v.trunc();
                    if trunc != v && trunc.abs() < v.abs() {
                        out.push(trunc);
                    }
                }
                out
            }
        }
    )*};
}

shrink_float!(f32, f64);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {}
impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.chars().count();
        if n == 0 {
            return Vec::new();
        }
        let take = |k: usize| self.chars().take(k).collect::<String>();
        let mut out = vec![String::new()];
        if n > 1 {
            out.push(take(n / 2));
            out.push(take(n - 1));
        }
        out
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Halve the length from either end, then drop one element, then
        // shrink individual elements in place.
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
            out.push(self[..n - 1].to_vec());
        }
        for (i, item) in self.iter().enumerate() {
            for candidate in item.shrink_candidates() {
                let mut v = self.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

impl<T: Clone + Shrink> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_candidates() {
                        let mut t = self.clone();
                        t.$idx = candidate;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

shrink_tuple!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

/// Fails the surrounding property with a message when `cond` is false.
///
/// Use inside `check`'s property closure; expands to an early
/// `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the surrounding property when two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("{}\n  both: {:?}", format!($($fmt)+), l));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        check(
            "u32 halves are smaller",
            &PropConfig {
                cases: 50,
                seed: 1,
                max_shrink_steps: 100,
            },
            |rng| rng.gen::<u32>(),
            |&v| {
                let _ = v;
                Ok(())
            },
        );
        ran += 50; // check() returning at all means no case panicked
        assert_eq!(ran, 50);
    }

    #[test]
    fn failing_property_panics_with_seed_and_shrunk_input() {
        let result = std::panic::catch_unwind(|| {
            check(
                "all u64 are < 1000 (false)",
                &PropConfig {
                    cases: 100,
                    seed: 2,
                    max_shrink_steps: 200,
                },
                |rng| rng.gen::<u64>(),
                |&v| {
                    crate::prop_assert!(v < 1000, "{v} >= 1000");
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("must falsify")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("case seed 0x"), "seed missing: {msg}");
        // Greedy halving lands just above the threshold.
        assert!(msg.contains("shrunk input"), "shrink missing: {msg}");
        let shrunk: u64 = msg
            .lines()
            .find(|l| l.contains("shrunk input"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("shrunk value parses");
        assert!(
            (1000..2000).contains(&shrunk),
            "expected near-minimal counterexample, got {shrunk}"
        );
    }

    #[test]
    fn vec_shrinking_reduces_length_and_elements() {
        // Property: no vec contains an element >= 100 (false for most
        // generated vecs). The shrunk counterexample should be a single
        // near-minimal element.
        let result = std::panic::catch_unwind(|| {
            check(
                "vec elements small",
                &PropConfig {
                    cases: 100,
                    seed: 3,
                    max_shrink_steps: 500,
                },
                |rng| {
                    let n = rng.gen_range(1usize..30);
                    (0..n)
                        .map(|_| rng.gen_range(0u64..10_000))
                        .collect::<Vec<_>>()
                },
                |v| {
                    crate::prop_assert!(v.iter().all(|&x| x < 100), "big element in {v:?}");
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("must falsify")
            .downcast::<String>()
            .expect("string panic");
        let shrunk_line = msg
            .lines()
            .find(|l| l.contains("shrunk input"))
            .expect("has shrunk line");
        let bracket = shrunk_line
            .split('[')
            .nth(1)
            .expect("vec debug")
            .trim_end_matches(']');
        let elems: Vec<u64> = bracket
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("u64"))
            .collect();
        assert_eq!(elems.len(), 1, "length should shrink to 1: {shrunk_line}");
        assert!(
            (100..200).contains(&elems[0]),
            "element should shrink near 100: {shrunk_line}"
        );
    }

    #[test]
    fn case_seeds_are_independent_of_case_count() {
        // The same root seed must generate the same 10th input whether the
        // sweep runs 10 or 10_000 cases — case seeds depend only on index.
        let a = splitmix64(7 ^ splitmix64(9));
        let b = splitmix64(7 ^ splitmix64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn tuple_shrink_shrinks_components_independently() {
        let t = (4u32, 0u32);
        let candidates = t.shrink_candidates();
        assert!(candidates.contains(&(0, 0)));
        assert!(candidates.contains(&(2, 0)));
        assert!(!candidates.contains(&(4, 0)), "must strictly decrease");
    }
}
