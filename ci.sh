#!/usr/bin/env bash
# The repo's single CI gate. Local runs and hosted CI execute this same
# script, so "passes ci.sh" and "passes CI" are the same statement.
#
# The workspace is hermetic: zero registry dependencies, so every step
# runs with --offline and succeeds from a clean checkout with no crates.io
# access. Keep it that way — see README.md "CI and the zero-dependency policy".
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s\n' "$1"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo build --release --offline"
cargo build --workspace --release --offline

# The suite runs twice: serial reference, then multi-threaded. The
# determinism contract (see DESIGN.md "Host-parallel execution") says
# both must see bit-identical modeled numbers, so any thread-count
# sensitivity fails here rather than on a user's machine.
step "cargo test -q --offline (CIM_THREADS=1)"
CIM_THREADS=1 cargo test --workspace -q --offline

step "cargo test -q --offline (CIM_THREADS=4)"
CIM_THREADS=4 cargo test --workspace -q --offline

step "smoke-run examples/quickstart.rs"
cargo run --release --offline --example quickstart

step "telemetry smoke: quickstart --telemetry + schema check"
TELEMETRY_OUT="$(mktemp -t cim-telemetry-XXXXXX.jsonl)"
trap 'rm -f "$TELEMETRY_OUT"' EXIT
cargo run --release --offline --example quickstart -- --telemetry "$TELEMETRY_OUT"
# Every line must parse as JSON with component/metric/value keys; the
# checker is in-tree (no external JSON tooling, per the hermetic policy).
cargo run --release --offline -p cim-bench --bin telemetry_check -- "$TELEMETRY_OUT"

step "serving soak (CIM_THREADS=1)"
# The serving front-end's acceptance gates: overload sheds with bounded
# p99, repeated unit failures lose nothing, retry-after-repair works.
# Run at both thread settings — every asserted number is modeled, so
# the two runs must agree bit-for-bit.
CIM_THREADS=1 cargo test -q --offline --test serving_soak

step "serving soak (CIM_THREADS=4)"
CIM_THREADS=4 cargo test -q --offline --test serving_soak

step "bench baseline: serial vs parallel batch throughput"
# Records the host-parallel baseline (threads=1 vs threads=4 on the
# same workload); outputs stay bit-identical, only wall-clock moves.
# Kept fast for CI with a small sample budget.
BENCH_SAMPLES=10 BENCH_WARMUP_MS=20 \
    cargo bench --offline -p cim-bench --bench parallel | tee BENCH_parallel.json
# Sanity: both thread-count lines landed as JSON objects.
grep -c '^{"bench":"parallel/matvec_batch64_t' BENCH_parallel.json | grep -qx 2

step "bench baseline: serving front-end throughput"
# Records the serving-layer baseline (light load and overload operating
# points) next to BENCH_parallel.json.
BENCH_SAMPLES=10 BENCH_WARMUP_MS=20 \
    cargo bench --offline -p cim-bench --bench serving | tee BENCH_serving.json
# Sanity: both operating-point lines landed as JSON objects.
grep -c '^{"bench":"serving/open_loop_' BENCH_serving.json | grep -qx 2

printf '\n== ci.sh: all gates passed\n'
