//! Error types for the crossbar crate.

use core::fmt;

/// Errors raised by crossbar construction and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// A matrix/vector dimension did not match the engine configuration.
    DimensionMismatch {
        /// What the operation expected.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
        /// Which dimension was wrong (for the message).
        what: &'static str,
    },
    /// A configuration parameter was out of its supported range.
    InvalidConfig {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// The engine was asked to compute before any matrix was programmed.
    NotProgrammed,
    /// A cell index was outside the array.
    OutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::DimensionMismatch {
                expected,
                actual,
                what,
            } => write!(f, "{what} mismatch: expected {expected}, got {actual}"),
            CrossbarError::InvalidConfig { reason } => {
                write!(f, "invalid crossbar configuration: {reason}")
            }
            CrossbarError::NotProgrammed => {
                write!(f, "no matrix has been programmed into the engine")
            }
            CrossbarError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "cell ({row},{col}) outside {rows}x{cols} array"),
        }
    }
}

impl std::error::Error for CrossbarError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, CrossbarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CrossbarError::DimensionMismatch {
            expected: 128,
            actual: 64,
            what: "input length",
        };
        assert_eq!(e.to_string(), "input length mismatch: expected 128, got 64");
        let e = CrossbarError::NotProgrammed;
        assert!(e.to_string().contains("no matrix"));
        let e = CrossbarError::OutOfBounds {
            row: 5,
            col: 9,
            rows: 4,
            cols: 4,
        };
        assert!(e.to_string().contains("(5,9)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CrossbarError>();
    }
}
