//! Serving: a CIM device as a multi-tenant inference service.
//!
//! Boots a [`CimService`], registers the standard three-tenant request
//! mix as resident programs, then drives an open-loop arrival stream
//! through three regimes:
//!
//! 1. light load — every request meets its SLO;
//! 2. saturation — the bounded admission queue sheds load and p99 of
//!    *admitted* requests stays bounded;
//! 3. faults — units die under the stream mid-flight; §V.A spare
//!    recovery plus service-level retry keep every request accounted.
//!
//! Every run carries the observability pipeline: per-tenant SLO
//! burn-rate tracking prints an alert timeline (healthy points stay
//! silent, overload pages), and a final span-traced run folds the
//! service's spans into a flamegraph + per-component utilization
//! walkthrough.
//!
//! Run with `cargo run --release --example serving`. Pass
//! `--telemetry out.jsonl` to export the full observability stream
//! (metrics + series + alerts + profile) as validated JSON lines.

use cim::fabric::service::{CimService, ServiceConfig, ServiceEvent, ServiceReport};
use cim::fabric::FabricConfig;
use cim::obs::profile::Profile;
use cim::obs::{alerts_jsonl, ObsConfig};
use cim::sim::telemetry::TelemetryLevel;
use cim::sim::time::SimTime;
use cim::sim::SeedTree;
use cim::workloads::serving::standard_request_mix;
use std::error::Error;

fn boot(seed: u64, level: TelemetryLevel) -> Result<CimService, Box<dyn Error>> {
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(seed),
    )?;
    svc.runtime_mut().device_mut().enable_telemetry(level);
    svc.enable_observability(ObsConfig::default());
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(seed ^ 0xC1A55));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)?;
    }
    Ok(svc)
}

fn print_alerts(r: &ServiceReport) {
    for a in &r.alerts {
        println!(
            "      ALERT t={:>9} ns [{}] {} tenant={} burn={:.2}",
            a.at.as_ps() / 1000,
            a.severity.name(),
            a.rule,
            a.tenant,
            a.burn_rate
        );
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let (_, tel_path) = cim::obs::export::split_telemetry_arg(std::env::args().skip(1));

    println!("== CIM serving: open-loop request stream ==\n");
    println!(
        "{:>12} {:>8} {:>6} {:>6} {:>8} {:>8} {:>9} {:>9} {:>7}",
        "rate(req/s)", "admitted", "shed", "t/o", "failed", "recov", "p50(us)", "p99(us)", "alerts"
    );
    for rate in [20_000.0, 100_000.0, 400_000.0, 1_600_000.0] {
        let mut svc = boot(0x5E21, TelemetryLevel::Metrics)?;
        let r = svc.run_open_loop(rate, 400, &[])?;
        println!(
            "{:>12} {:>8} {:>6} {:>6} {:>8} {:>8} {:>9.1} {:>9.1} {:>7}",
            rate as u64,
            r.admitted,
            r.shed,
            r.timed_out,
            r.failed,
            r.recoveries,
            r.latency.p50_us,
            r.latency.p99_us,
            r.alerts.len()
        );
        print_alerts(&r);
    }

    println!("\n== same stream, three unit failures injected ==\n");
    let mut svc = boot(0x5E21, TelemetryLevel::Metrics)?;
    // Kill three units that host nodes of the interactive tenant while
    // the stream is in flight.
    let job = svc.class_job(0).expect("registered");
    let prog = svc.runtime().program(job).expect("resident").clone();
    let victims: Vec<usize> = prog.placement().node_to_unit[1..4].to_vec();
    let events: Vec<ServiceEvent> = victims
        .iter()
        .enumerate()
        .map(|(i, &unit)| ServiceEvent::FailUnit {
            at: SimTime::from_ns(((i + 1) * 300_000) as u64),
            unit,
        })
        .collect();
    let r = svc.run_open_loop(100_000.0, 400, &events)?;
    println!(
        "failed units {:?}: admitted {}, shed {}, timed-out {}, failed {}, recoveries {}, \
         p99 {:.1} us, zero lost = {}",
        victims,
        r.admitted,
        r.shed,
        r.timed_out,
        r.failed,
        r.recoveries,
        r.latency.p99_us,
        r.zero_lost()
    );
    print_alerts(&r);
    assert!(r.zero_lost(), "no request may be lost under unit failures");

    // Span-traced run: fold the service's span tree into a flamegraph
    // and per-component utilization. Full tracing is heavier, so this
    // uses a shorter stream at a healthy rate.
    println!("\n== span-derived profile (flamegraph + utilization) ==\n");
    let mut svc = boot(0x5E21, TelemetryLevel::Full)?;
    let r = svc.run_open_loop(100_000.0, 100, &[])?;
    let tel = svc.runtime().device().telemetry();
    let profile = Profile::from_telemetry(tel, 32);
    print!("{}", profile.render_text(12));

    if let Some(path) = tel_path {
        let extra = [
            r.series_jsonl.as_str(),
            &alerts_jsonl(&r.alerts),
            &profile.export_jsonl(),
        ];
        let lines = cim::obs::export::write_export_with(tel, &extra, &path)
            .map_err(|e| format!("telemetry export failed: {e}"))?;
        println!(
            "\ntelemetry: {lines} validated lines (metrics + series + alerts + profile) \
             written to {}",
            path.display()
        );
    }
    Ok(())
}
