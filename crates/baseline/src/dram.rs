//! DRAM channel model with banks and row buffers.
//!
//! The Von Neumann story the paper tells (Fig 1/Fig 2) ends at DRAM, so
//! the baseline prices it properly: a channel of independent banks, each
//! with one open row. A hit in the open row pays CAS only; a closed bank
//! pays activate then CAS; a conflicting open row pays precharge,
//! activate, then CAS. Sequential scans therefore stream near the
//! channel's best case while pointer-chasing pays the full random-access
//! penalty — the same locality cliff the cache hierarchy shows, one
//! level down.
//!
//! Timing/energy constants follow DDR4-2666 datasheet class values.

use cim_sim::energy::Energy;
use cim_sim::time::SimDuration;

/// How an access resolved against the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open: CAS only.
    Hit,
    /// The bank was idle (no open row): activate + CAS.
    Miss,
    /// Another row was open: precharge + activate + CAS.
    Conflict,
}

/// DRAM channel geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent banks on the channel.
    pub banks: usize,
    /// Row (page) size per bank, bytes.
    pub row_bytes: usize,
    /// Column access strobe latency (CAS), ps.
    pub t_cas_ps: u64,
    /// Row-to-column delay (activate), ps.
    pub t_rcd_ps: u64,
    /// Precharge time, ps.
    pub t_rp_ps: u64,
    /// Energy of one row activation, fJ.
    pub activate_fj: u64,
    /// Energy per byte transferred, fJ.
    pub transfer_byte_fj: u64,
}

impl Default for DramConfig {
    /// DDR4-2666 class: 16 banks, 8 KiB rows, ~14 ns CAS/RCD/RP.
    fn default() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 8 * 1024,
            t_cas_ps: 14_000,
            t_rcd_ps: 14_000,
            t_rp_ps: 14_000,
            activate_fj: 2_000_000, // ~2 nJ per activation
            transfer_byte_fj: cim_sim::calib::cpu::ENERGY_PER_DRAM_BYTE_FJ,
        }
    }
}

impl DramConfig {
    /// Validates geometry.
    ///
    /// Returns `None` for zero banks or a non-power-of-two/zero row size.
    pub fn validated(self) -> Option<Self> {
        (self.banks > 0 && self.row_bytes.is_power_of_two()).then_some(self)
    }
}

/// Per-channel access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Accesses to idle banks.
    pub misses: u64,
    /// Row-buffer conflicts.
    pub conflicts: u64,
}

impl DramStats {
    /// All accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Row-buffer hit rate in `[0, 1]`; zero before any access.
    pub fn hit_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// One DRAM channel.
///
/// # Examples
///
/// ```
/// use cim_baseline::dram::{DramChannel, DramConfig, RowOutcome};
///
/// let mut ch = DramChannel::new(DramConfig::default()).unwrap();
/// let (first, _, _) = ch.access(0, 64);
/// assert_eq!(first, RowOutcome::Miss); // cold bank
/// let (second, lat2, _) = ch.access(64, 64);
/// assert_eq!(second, RowOutcome::Hit); // same row
/// let (_, lat1, _) = ch.access(1 << 30, 64); // far away: other row, same bank? maybe not
/// assert!(lat2 <= lat1);
/// ```
#[derive(Debug, Clone)]
pub struct DramChannel {
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl DramChannel {
    /// Creates a channel with all banks idle.
    ///
    /// Returns `None` for invalid geometry (see
    /// [`DramConfig::validated`]).
    pub fn new(config: DramConfig) -> Option<Self> {
        let config = config.validated()?;
        Some(DramChannel {
            open_rows: vec![None; config.banks],
            config,
            stats: DramStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Performs one access of `bytes` at `addr`; returns the row outcome,
    /// the access latency, and the energy consumed.
    pub fn access(&mut self, addr: u64, bytes: usize) -> (RowOutcome, SimDuration, Energy) {
        let row_global = addr / self.config.row_bytes as u64;
        let bank = (row_global % self.config.banks as u64) as usize;
        let row = row_global / self.config.banks as u64;
        let (outcome, ps) = match self.open_rows[bank] {
            Some(open) if open == row => (RowOutcome::Hit, self.config.t_cas_ps),
            Some(_) => (
                RowOutcome::Conflict,
                self.config.t_rp_ps + self.config.t_rcd_ps + self.config.t_cas_ps,
            ),
            None => (
                RowOutcome::Miss,
                self.config.t_rcd_ps + self.config.t_cas_ps,
            ),
        };
        self.open_rows[bank] = Some(row);
        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Miss => self.stats.misses += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        let mut energy = Energy::from_fj(self.config.transfer_byte_fj * bytes.max(1) as u64);
        if outcome != RowOutcome::Hit {
            energy += Energy::from_fj(self.config.activate_fj);
        }
        (outcome, SimDuration::from_ps(ps), energy)
    }

    /// Closes all rows (refresh / power-down boundary).
    pub fn precharge_all(&mut self) {
        self.open_rows.iter_mut().for_each(|r| *r = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(DramChannel::new(DramConfig {
            banks: 0,
            ..DramConfig::default()
        })
        .is_none());
        assert!(DramChannel::new(DramConfig {
            row_bytes: 1000,
            ..DramConfig::default()
        })
        .is_none());
        assert!(DramChannel::new(DramConfig::default()).is_some());
    }

    #[test]
    fn sequential_stream_is_mostly_row_hits() {
        let mut ch = DramChannel::new(DramConfig::default()).unwrap();
        for addr in (0..(1 << 20)).step_by(64) {
            ch.access(addr, 64);
        }
        assert!(
            ch.stats().hit_rate() > 0.95,
            "streaming hit rate {}",
            ch.stats().hit_rate()
        );
    }

    #[test]
    fn random_pointer_chase_conflicts() {
        let mut ch = DramChannel::new(DramConfig::default()).unwrap();
        let mut addr = 0x12345u64;
        for _ in 0..10_000 {
            addr = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (4 << 30);
            ch.access(addr, 64);
        }
        assert!(
            ch.stats().hit_rate() < 0.05,
            "random hit rate {}",
            ch.stats().hit_rate()
        );
        assert!(ch.stats().conflicts > ch.stats().hits);
    }

    #[test]
    fn latency_ordering_hit_miss_conflict() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg).unwrap();
        let (o1, miss_lat, miss_e) = ch.access(0, 64); // idle bank
        assert_eq!(o1, RowOutcome::Miss);
        let (o2, hit_lat, hit_e) = ch.access(128, 64); // same row
        assert_eq!(o2, RowOutcome::Hit);
        // Same bank, different row: row_global differs by banks.
        let conflict_addr = (cfg.banks * cfg.row_bytes) as u64;
        let (o3, conf_lat, _) = ch.access(conflict_addr, 64);
        assert_eq!(o3, RowOutcome::Conflict);
        assert!(hit_lat < miss_lat);
        assert!(miss_lat < conf_lat);
        assert!(hit_e < miss_e, "activation energy only on misses");
    }

    #[test]
    fn precharge_closes_rows() {
        let mut ch = DramChannel::new(DramConfig::default()).unwrap();
        ch.access(0, 64);
        ch.precharge_all();
        let (o, _, _) = ch.access(0, 64);
        assert_eq!(o, RowOutcome::Miss, "row was closed");
    }

    #[test]
    fn banks_are_independent() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg).unwrap();
        // Touch every bank once, then again: all second touches hit.
        for b in 0..cfg.banks {
            ch.access((b * cfg.row_bytes) as u64, 64);
        }
        for b in 0..cfg.banks {
            let (o, _, _) = ch.access((b * cfg.row_bytes) as u64 + 256, 64);
            assert_eq!(o, RowOutcome::Hit, "bank {b}");
        }
    }
}
