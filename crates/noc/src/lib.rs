//! # cim-noc — packet-switched interconnect for the CIM device
//!
//! The paper makes interconnects "an integral part of the CIM model"
//! (§III, Fig 4): micro-units exchange *packets*, and reconfiguration,
//! security (§IV.A), virtualization/QoS (§IV.B) and failover (§V.A) all
//! operate at packet granularity. This crate provides:
//!
//! * [`packet`] — packets, flits, traffic classes, node coordinates;
//! * [`topology`] — the 2-D mesh with XY/YX/BFS fault-aware routing;
//! * [`network`] — a flow-level link-reservation network with virtual
//!   channels (QoS), isolation domains and link encryption;
//! * [`crypto`] — the simulation-grade cipher and authentication tag.
//!
//! ## Example
//!
//! ```
//! use cim_noc::network::NocNetwork;
//! use cim_noc::packet::{NodeId, Packet, TrafficClass};
//! use cim_sim::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut noc = NocNetwork::new(4, 4, 7)?;
//! noc.set_encryption(true);
//! let p = Packet::new(0, NodeId::new(0, 0), NodeId::new(3, 1), b"tensor".to_vec())
//!     .with_class(TrafficClass::Guaranteed);
//! let d = noc.transmit(&p, SimTime::ZERO)?;
//! assert_eq!(&d.payload[..], b"tensor");
//! assert_ne!(&d.wire_payload[..], b"tensor"); // encrypted in flight
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crypto;
pub mod error;
pub mod network;
pub mod packet;
pub mod topology;

pub use error::{NocError, Result};
pub use network::{Delivery, IsolationPolicy, NocNetwork, NocStats};
pub use packet::{NodeId, Packet, TrafficClass};
pub use topology::{Link, Mesh};
