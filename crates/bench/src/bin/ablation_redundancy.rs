//! ABL-RED: spare provisioning vs fault survival.
fn main() {
    let points = cim_bench::experiments::ablations::run_redundancy(&[0, 1, 2, 3], 2);
    print!(
        "{}",
        cim_bench::experiments::ablations::render_redundancy(&points)
    );
}
