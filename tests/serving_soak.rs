//! Serving-layer soak: overload behaviour and fault survival, end to
//! end through the public API (the acceptance gates for the request
//! front-end).
//!
//! Run at `CIM_THREADS=1` and `=4` by `ci.sh`; every number asserted
//! here is modeled (sim-time), so thread count cannot move it.

use cim::fabric::service::{CimService, ServiceConfig, ServiceEvent};
use cim::fabric::FabricConfig;
use cim::sim::time::{SimDuration, SimTime};
use cim::sim::SeedTree;
use cim::workloads::serving::standard_request_mix;
use cim_crossbar::dpe::DpeConfig;

fn boot(seed: u64) -> CimService {
    let mut svc = CimService::new(
        FabricConfig::default(),
        ServiceConfig::default(),
        SeedTree::new(seed),
    )
    .expect("service boots");
    for spec in standard_request_mix() {
        let (g, src, sink) = spec.build_graph(SeedTree::new(seed ^ 0xC1A55));
        svc.register_class(spec.name, g, src, sink, spec.deadline, spec.weight)
            .expect("mix fits the default fabric");
    }
    svc
}

/// Past saturation the service sheds load instead of queueing without
/// bound, and the p99 of requests it *does* admit stays bounded by the
/// queue depth — the overload acceptance gate.
#[test]
fn overload_sheds_and_keeps_admitted_p99_bounded() {
    let mut svc = boot(0x50AC);
    let r = svc
        .run_open_loop(3_200_000.0, 400, &[])
        .expect("stream serves");
    assert!(r.shed > 0, "overload must shed: {r:?}");
    assert!(r.timed_out > 0, "overload must also miss deadlines");
    assert_eq!(r.failed, 0, "overload alone must not lose requests");
    assert!(r.zero_lost());
    // Queue capacity 16 bounds the wait; 50 µs is ~2× the worst p99
    // observed across the recorded sweep (EXPERIMENTS.md).
    assert!(
        r.latency.p99_us < 50.0,
        "p99 of admitted requests must stay bounded, got {}",
        r.latency.p99_us
    );
}

/// Three units die under one open-loop stream — each hosting a live
/// node of a tenant's resident program. §V.A spare recovery absorbs
/// every failure and no request is lost: the multi-failure acceptance
/// gate.
#[test]
fn stream_survives_three_unit_failures_with_zero_loss() {
    let mut svc = boot(0x5E21);
    // Victims: three units hosting nodes of the interactive tenant.
    let job = svc.class_job(0).expect("interactive is registered");
    let victims: Vec<usize> = svc
        .runtime()
        .program(job)
        .expect("resident")
        .placement()
        .node_to_unit[1..4]
        .to_vec();
    let events: Vec<ServiceEvent> = victims
        .iter()
        .enumerate()
        .map(|(i, &unit)| ServiceEvent::FailUnit {
            at: SimTime::from_ns(((i + 1) * 300_000) as u64),
            unit,
        })
        .collect();
    let r = svc
        .run_open_loop(100_000.0, 400, &events)
        .expect("stream serves");
    assert_eq!(r.recoveries, 3, "each failure must recover in-stream");
    assert_eq!(r.failed, 0, "no request may be lost");
    assert!(r.zero_lost(), "{r:?}");
    assert_eq!(r.shed, 0, "this load level does not shed");
    assert_eq!(
        r.completed + r.timed_out,
        r.admitted,
        "every admitted request is accounted for"
    );
}

/// When the spare pool is dry, a fenced retry with backoff picks the
/// request back up after a field repair returns the unit to service.
#[test]
fn retry_after_repair_completes_the_request() {
    // Exactly as many units as the class needs: no spares at all.
    let spec = &standard_request_mix()[0];
    let (g, src, sink) = spec.build_graph(SeedTree::new(3));
    let nodes = g.node_count();
    let mut svc = CimService::new(
        FabricConfig {
            mesh_width: nodes,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        },
        ServiceConfig {
            backoff_base: SimDuration::from_us(100),
            ..ServiceConfig::default()
        },
        SeedTree::new(0xF1D0),
    )
    .expect("boots");
    svc.register_class(spec.name, g, src, sink, SimDuration::from_ms(5), 1)
        .expect("resident");
    let job = svc.class_job(0).expect("registered");
    let victim = svc
        .runtime()
        .program(job)
        .expect("resident")
        .placement()
        .node_to_unit[1];
    let events = [
        ServiceEvent::FailUnit {
            at: SimTime::ZERO,
            unit: victim,
        },
        ServiceEvent::RepairUnit {
            at: SimTime::from_ns(50_000),
            unit: victim,
        },
    ];
    let r = svc.run_open_loop(1_000_000.0, 5, &events).expect("serves");
    assert_eq!(r.completed, 5);
    assert!(r.retries >= 1, "at least the first request must retry");
    assert_eq!(r.recoveries, 0, "no spare existed to recover onto");
    assert!(r.zero_lost());
}
