//! Stream capabilities and containment (paper §IV.A).
//!
//! The paper proposes fine-grained, capability-based protection (citing
//! CHERI \[73\]) as the complement to packet encryption: a stream may only
//! touch micro-units it holds a capability for. The table is
//! *default-closed* — a stream with no grants can run nowhere — and the
//! execution engine enforces it on every operator dispatch.
//!
//! Containment (§V.A) is the other half: [`fence_tile`] administratively
//! disables every unit on a tile so a detected fault (or compromise)
//! cannot spread.
//!
//! The adversarial half of this module models the attacks those
//! mechanisms exist to stop. A device can be *armed* with a compromised
//! tile ([`CimDevice::arm_adversary`]); the `attack_*` probes then fire
//! the Galeed-style intra-device adversary actions the chaos campaigns
//! schedule — forged and replayed capability tokens against the
//! [`TokenAuthority`], cross-partition packet injection and
//! exfiltration on the NoC, and hostile self-programming patches and
//! dataflow scanner programs launched from the compromised tile. Every
//! probe records its verdict in the device's [`AttackLog`]; the chaos
//! runner turns that ledger into the `iso_*` containment invariants.

use crate::device::CimDevice;
use cim_dataflow::graph::GraphBuilder;
use cim_dataflow::interpreter;
use cim_dataflow::ops::{Elementwise, Operation};
use cim_dataflow::program::Patch;
use cim_noc::packet::{NodeId, Packet, TrafficClass};
use cim_sim::rng::splitmix64;
use cim_sim::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Default-closed stream → unit capability table.
///
/// # Examples
///
/// ```
/// use cim_fabric::security::CapabilityTable;
///
/// let mut caps = CapabilityTable::new();
/// caps.grant(7, 3);
/// assert!(caps.allows(7, 3));
/// assert!(!caps.allows(7, 4), "no grant, no access");
/// assert!(!caps.allows(8, 3), "unknown stream denied");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilityTable {
    grants: HashMap<u64, HashSet<usize>>,
}

impl CapabilityTable {
    /// Creates an empty (deny-everything) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `stream` the right to execute on `unit`.
    pub fn grant(&mut self, stream: u64, unit: usize) {
        self.grants.entry(stream).or_default().insert(unit);
    }

    /// Grants a stream access to many units at once.
    pub fn grant_all<I: IntoIterator<Item = usize>>(&mut self, stream: u64, units: I) {
        let set = self.grants.entry(stream).or_default();
        set.extend(units);
    }

    /// Revokes a single grant.
    pub fn revoke(&mut self, stream: u64, unit: usize) {
        if let Some(set) = self.grants.get_mut(&stream) {
            set.remove(&unit);
        }
    }

    /// Revokes everything a stream holds.
    pub fn revoke_stream(&mut self, stream: u64) {
        self.grants.remove(&stream);
    }

    /// Whether `stream` may execute on `unit`.
    pub fn allows(&self, stream: u64, unit: usize) -> bool {
        self.grants
            .get(&stream)
            .is_some_and(|set| set.contains(&unit))
    }

    /// Number of units a stream can reach (its blast radius in units).
    pub fn reach(&self, stream: u64) -> usize {
        self.grants.get(&stream).map_or(0, HashSet::len)
    }

    /// Grants a stream exactly the units of an existing placement — the
    /// least privilege a loaded program needs.
    pub fn grant_placement(&mut self, stream: u64, placement: &crate::mapper::Placement) {
        self.grant_all(stream, placement.node_to_unit.iter().copied());
    }
}

/// Administratively disables every unit on `tile` (containment barrier).
/// Returns the fenced unit indices.
pub fn fence_tile(device: &mut CimDevice, tile: NodeId) -> Vec<usize> {
    let units = device.units_on_tile(tile);
    for &u in &units {
        device.disable_unit(u);
    }
    units
}

/// NoC isolation domain reserved for a compromised (armed) tile.
pub const ADVERSARY_DOMAIN: u32 = 0xAD;

/// Lifetime of an issued capability token, in picoseconds (50 µs — a
/// few service deadlines, so schedules straddle both fresh and expired
/// tokens).
pub const TOKEN_TTL_PS: u64 = 50_000_000;

/// Byte value marking victim-partition payloads in exfiltration probes;
/// any such byte observed at the attacker is a cross-tenant read.
pub const VICTIM_MARKER: u8 = 0x56;

/// Byte value marking attacker-crafted payloads in injection probes.
pub const ATTACK_MARKER: u8 = 0xA7;

/// A time-limited, domain-bound, MAC-sealed capability (§IV.A's
/// fine-grained protection with CHERI-style unforgeability): the right
/// for `stream` to touch `unit`, valid until `expires_at_ps`, redeemable
/// once, only from `domain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityToken {
    /// Stream the capability was issued to.
    pub stream: u64,
    /// Device-wide unit index the capability covers.
    pub unit: usize,
    /// Isolation domain the token may be presented from.
    pub domain: u32,
    /// Absolute expiry, picoseconds of sim time.
    pub expires_at_ps: u64,
    /// Single-use redemption nonce.
    pub nonce: u64,
    /// Keyed MAC over every other field.
    pub mac: u64,
}

/// Why a token presentation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenViolation {
    /// The MAC does not match the fields: fabricated or tampered.
    Forged,
    /// The nonce was already redeemed.
    Replayed,
    /// Presented after `expires_at_ps`.
    Expired,
    /// Presented from a different isolation domain than it was bound to.
    WrongDomain,
}

impl TokenViolation {
    /// Stable name for logs and replay files.
    pub fn name(self) -> &'static str {
        match self {
            TokenViolation::Forged => "forged",
            TokenViolation::Replayed => "replayed",
            TokenViolation::Expired => "expired",
            TokenViolation::WrongDomain => "wrong_domain",
        }
    }
}

/// The device's token issuer/verifier (the security coprocessor §IV.A
/// implies): issues MAC-sealed single-use capabilities and checks every
/// presentation for forgery, expiry, domain binding and replay — in
/// that order, so an attacker learns nothing about nonce state from a
/// forged token.
#[derive(Debug, Clone)]
pub struct TokenAuthority {
    secret: u64,
    next_nonce: u64,
    redeemed: HashSet<u64>,
}

impl TokenAuthority {
    /// Creates an authority keyed by `secret`.
    pub fn new(secret: u64) -> Self {
        TokenAuthority {
            secret,
            next_nonce: 1,
            redeemed: HashSet::new(),
        }
    }

    fn seal(&self, stream: u64, unit: usize, domain: u32, expires_at_ps: u64, nonce: u64) -> u64 {
        let mut m = splitmix64(self.secret ^ stream);
        m = splitmix64(m ^ unit as u64);
        m = splitmix64(m ^ u64::from(domain));
        m = splitmix64(m ^ expires_at_ps);
        splitmix64(m ^ nonce)
    }

    /// Issues a fresh token for `stream` on `unit`, bound to `domain`,
    /// expiring `ttl_ps` after `now`.
    pub fn issue(
        &mut self,
        stream: u64,
        unit: usize,
        domain: u32,
        now: SimTime,
        ttl_ps: u64,
    ) -> CapabilityToken {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let expires_at_ps = now.as_ps().saturating_add(ttl_ps);
        CapabilityToken {
            stream,
            unit,
            domain,
            expires_at_ps,
            nonce,
            mac: self.seal(stream, unit, domain, expires_at_ps, nonce),
        }
    }

    /// Verifies and consumes a token presented from `presented_from` at
    /// `now`. Success burns the nonce: a second presentation of the same
    /// token is [`TokenViolation::Replayed`].
    ///
    /// # Errors
    ///
    /// Returns the first [`TokenViolation`] in check order
    /// (forgery → expiry → domain → replay).
    pub fn redeem(
        &mut self,
        token: &CapabilityToken,
        presented_from: u32,
        now: SimTime,
    ) -> Result<(), TokenViolation> {
        let expect = self.seal(
            token.stream,
            token.unit,
            token.domain,
            token.expires_at_ps,
            token.nonce,
        );
        if expect != token.mac {
            return Err(TokenViolation::Forged);
        }
        if now.as_ps() > token.expires_at_ps {
            return Err(TokenViolation::Expired);
        }
        if presented_from != token.domain {
            return Err(TokenViolation::WrongDomain);
        }
        if !self.redeemed.insert(token.nonce) {
            return Err(TokenViolation::Replayed);
        }
        Ok(())
    }
}

/// Verdict ledger for every adversarial probe fired on a device. The
/// chaos runner's containment invariants read this after a run:
/// `iso_no_cross_tenant_read` fails on any `leaked_bytes`,
/// `cross_deliveries` or `tokens_accepted`; `iso_bounded_blast_radius`
/// fails if `touched_units` reaches outside the compromised tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackLog {
    /// Probe actions fired (packets sent, tokens presented).
    pub attempts: u64,
    /// Probes stopped by a boundary check (policy reject, token refusal).
    pub blocked: u64,
    /// Attacker packets delivered across a partition boundary.
    pub cross_deliveries: u64,
    /// Victim-marker bytes observed at the attacker (cross-tenant read).
    pub leaked_bytes: u64,
    /// Attack tokens the authority accepted (should stay zero).
    pub tokens_accepted: u64,
    /// Attack tokens refused.
    pub tokens_rejected: u64,
    /// Hostile dataflow programs assembled and run on the armed tile.
    pub hostile_programs: u64,
    /// Hostile self-programming patches built and launched.
    pub hostile_patches: u64,
    /// Units the attack reached (delivered packet or accepted token),
    /// sorted, deduplicated.
    pub touched_units: Vec<usize>,
}

impl AttackLog {
    fn touch(&mut self, unit: usize) {
        if let Err(pos) = self.touched_units.binary_search(&unit) {
            self.touched_units.insert(pos, unit);
        }
    }

    fn touch_all<I: IntoIterator<Item = usize>>(&mut self, units: I) {
        for u in units {
            self.touch(u);
        }
    }

    /// Units the attack reached outside the `allowed` (compromised) set
    /// — the blast radius beyond the attacker's own domain.
    pub fn touched_outside(&self, allowed: &[usize]) -> usize {
        self.touched_units
            .iter()
            .filter(|u| !allowed.contains(u))
            .count()
    }

    /// Whether the attack was fully contained: nothing read across the
    /// tenant boundary and no attack token honoured.
    pub fn contained(&self) -> bool {
        self.cross_deliveries == 0 && self.leaked_bytes == 0 && self.tokens_accepted == 0
    }

    /// Folds another device's ledger into this one (fleet aggregation).
    /// `touched_units` are kept per-call meaningful by offsetting with
    /// `unit_base` so fleet blast radii stay per-device-distinct.
    pub fn absorb(&mut self, other: &AttackLog, unit_base: usize) {
        self.attempts += other.attempts;
        self.blocked += other.blocked;
        self.cross_deliveries += other.cross_deliveries;
        self.leaked_bytes += other.leaked_bytes;
        self.tokens_accepted += other.tokens_accepted;
        self.tokens_rejected += other.tokens_rejected;
        self.hostile_programs += other.hostile_programs;
        self.hostile_patches += other.hostile_patches;
        self.touch_all(other.touched_units.iter().map(|&u| u + unit_base));
    }
}

/// The armed-adversary state a device carries when a chaos campaign
/// reserves a compromised tile: which tile, the token authority probes
/// attack, and the verdict ledger. Lives outside the volatile/nonvolatile
/// split — like telemetry it is the *host-side observer* of the attack,
/// so a power cycle neither erases the ledger nor disarms the tile.
#[derive(Debug, Clone)]
pub struct AdversaryState {
    /// The compromised tile (fenced at boot; mapper never places there).
    pub tile: NodeId,
    /// Token issuer/verifier the token probes attack.
    pub authority: TokenAuthority,
    /// Verdict ledger.
    pub log: AttackLog,
}

impl AdversaryState {
    /// Creates the state for a compromised `tile`, authority keyed by
    /// `secret`.
    pub fn new(tile: NodeId, secret: u64) -> Self {
        AdversaryState {
            tile,
            authority: TokenAuthority::new(secret),
            log: AttackLog::default(),
        }
    }
}

/// Forged-token probe: the attacker fabricates a token for `unit` with a
/// guessed MAC, then steals a legitimately issued victim token and
/// presents it from the adversary domain. Both must be refused. No-op on
/// an unarmed device.
pub fn attack_forge_token(device: &mut CimDevice, unit: usize, now: SimTime) {
    let Some(mut adv) = device.take_adversary() else {
        return;
    };
    // Fabrication: right shape, attacker-chosen seal.
    let forged = CapabilityToken {
        stream: 0xBAD0_0000 | unit as u64,
        unit,
        domain: 0,
        expires_at_ps: now.as_ps().saturating_add(TOKEN_TTL_PS),
        nonce: splitmix64(unit as u64 ^ 0xF0F0),
        mac: splitmix64(0xDEAD_FACE ^ unit as u64),
    };
    adv.log.attempts += 1;
    record_token_verdict(
        &mut adv.log,
        adv.authority.redeem(&forged, ADVERSARY_DOMAIN, now),
        unit,
    );
    // Theft: a real token, bound to the victim domain, presented from
    // the adversary domain.
    let stolen = adv
        .authority
        .issue(0x51C7_0000 | unit as u64, unit, 0, now, TOKEN_TTL_PS);
    adv.log.attempts += 1;
    record_token_verdict(
        &mut adv.log,
        adv.authority.redeem(&stolen, ADVERSARY_DOMAIN, now),
        unit,
    );
    device.put_adversary(adv);
}

/// Replayed/expired-token probe: a token is issued at `now` and the
/// attacker presents it — from inside the victim domain, modelling a
/// compromised co-tenant process — `age_ps` later, twice. Depending on
/// `age_ps` vs [`TOKEN_TTL_PS`] the second presentation must fail as a
/// replay or both must fail as expired. No-op on an unarmed device.
pub fn attack_replay_token(device: &mut CimDevice, unit: usize, age_ps: u64, now: SimTime) {
    let Some(mut adv) = device.take_adversary() else {
        return;
    };
    let token = adv
        .authority
        .issue(0x3EB1_0000 | unit as u64, unit, 0, now, TOKEN_TTL_PS);
    let later = now + SimDuration::from_ps(age_ps);
    // The victim's own (legitimate) redemption; only its *expiry* verdict
    // matters for the ledger — a fresh first use is not an attack.
    if adv.authority.redeem(&token, 0, later).is_err() {
        adv.log.attempts += 1;
        adv.log.tokens_rejected += 1;
        adv.log.blocked += 1;
    }
    // The captured copy, replayed.
    adv.log.attempts += 1;
    record_token_verdict(&mut adv.log, adv.authority.redeem(&token, 0, later), unit);
    device.put_adversary(adv);
}

fn record_token_verdict(log: &mut AttackLog, verdict: Result<(), TokenViolation>, unit: usize) {
    match verdict {
        Ok(()) => {
            log.tokens_accepted += 1;
            log.touch(unit);
        }
        Err(_) => {
            log.tokens_rejected += 1;
            log.blocked += 1;
        }
    }
}

/// Cross-partition packet probe: `packets` rounds of an attacker-crafted
/// injection into the `victim` tile plus an exfiltration pull of
/// victim-marker bytes back to the attacker's observation point. The NoC
/// boundary check must refuse both directions. No-op on an unarmed
/// device.
pub fn attack_cross_partition(
    device: &mut CimDevice,
    victim: NodeId,
    packets: u16,
    bytes: u16,
    now: SimTime,
) {
    let Some(mut adv) = device.take_adversary() else {
        return;
    };
    let tile = adv.tile;
    // Scanning the adversary's own tile is not a cross-partition attack
    // — same domain, trivially allowed — so fold such a victim onto the
    // opposite mesh corner. On a degenerate one-tile mesh there is no
    // victim partition at all: nothing to probe.
    let victim = if victim == tile {
        NodeId::new(0, 0)
    } else {
        victim
    };
    if victim == tile {
        device.put_adversary(adv);
        return;
    }
    let len = bytes.max(1) as usize;
    for _ in 0..packets.max(1) {
        // Injection: attacker → victim partition.
        let id = device.next_packet_id();
        let pkt = Packet::new(id, tile, victim, vec![ATTACK_MARKER; len])
            .with_class(TrafficClass::BestEffort);
        adv.log.attempts += 1;
        let delivered = {
            let (_, noc) = device.units_and_noc_mut();
            noc.transmit(&pkt, now).is_ok()
        };
        if delivered {
            adv.log.cross_deliveries += 1;
            let touched = device.units_on_tile(victim);
            adv.log.touch_all(touched);
        } else {
            adv.log.blocked += 1;
        }
        // Exfiltration: victim partition bytes → attacker.
        let id = device.next_packet_id();
        let pkt = Packet::new(id, victim, tile, vec![VICTIM_MARKER; len])
            .with_class(TrafficClass::BestEffort);
        adv.log.attempts += 1;
        let res = {
            let (_, noc) = device.units_and_noc_mut();
            noc.transmit(&pkt, now)
        };
        match res {
            Ok(d) => {
                adv.log.cross_deliveries += 1;
                adv.log.leaked_bytes +=
                    d.payload.iter().filter(|&&b| b == VICTIM_MARKER).count() as u64;
            }
            Err(_) => adv.log.blocked += 1,
        }
    }
    device.put_adversary(adv);
}

/// Hostile-dataflow probe: the compromised tile assembles a scanner
/// program, runs it through the dataflow interpreter (the compromised
/// domain's own compute is not restricted), and uses its output as probe
/// payloads to scan — and attempt to exfiltrate from — every mesh
/// neighbour. No-op on an unarmed device.
pub fn attack_hostile_dataflow(device: &mut CimDevice, seed: u64, now: SimTime) {
    let Some(mut adv) = device.take_adversary() else {
        return;
    };
    // Scanner program: source → scale → sink, parameters from the seed.
    let k = 1.0 + (seed % 7) as f64;
    let mut b = GraphBuilder::new();
    let s = b.add("scan-src", Operation::Source { width: 4 });
    let m = b.add(
        "scan-map",
        Operation::Map {
            func: Elementwise::Scale(k),
            width: 4,
        },
    );
    let t = b.add("scan-sink", Operation::Sink { width: 4 });
    b.chain(&[s, m, t]).expect("scanner chain is well-formed");
    let graph = b.build().expect("scanner graph is well-formed");
    let x = (seed % 97) as f64;
    let inputs = HashMap::from([(s, vec![x, x + 1.0, x + 2.0, x + 3.0])]);
    let out = interpreter::execute(&graph, &inputs).expect("scanner graph executes");
    adv.log.hostile_programs += 1;
    let probe: Vec<u8> = out[&t]
        .iter()
        .map(|v| (v.abs() as u64 % 251) as u8)
        .collect();

    let (w, h) = {
        let c = device.config();
        (c.mesh_width as u16, c.mesh_height as u16)
    };
    let tile = adv.tile;
    let mut neighbours = Vec::new();
    if tile.x > 0 {
        neighbours.push(NodeId::new(tile.x - 1, tile.y));
    }
    if tile.x + 1 < w {
        neighbours.push(NodeId::new(tile.x + 1, tile.y));
    }
    if tile.y > 0 {
        neighbours.push(NodeId::new(tile.x, tile.y - 1));
    }
    if tile.y + 1 < h {
        neighbours.push(NodeId::new(tile.x, tile.y + 1));
    }
    for nb in neighbours {
        // Scan: computed probe payload into the neighbour partition.
        let id = device.next_packet_id();
        let pkt = Packet::new(id, tile, nb, probe.clone()).with_class(TrafficClass::BestEffort);
        adv.log.attempts += 1;
        let delivered = {
            let (_, noc) = device.units_and_noc_mut();
            noc.transmit(&pkt, now).is_ok()
        };
        if delivered {
            adv.log.cross_deliveries += 1;
            let touched = device.units_on_tile(nb);
            adv.log.touch_all(touched);
        } else {
            adv.log.blocked += 1;
        }
        // Exfiltrate: neighbour-partition bytes back to the scanner.
        let id = device.next_packet_id();
        let pkt =
            Packet::new(id, nb, tile, vec![VICTIM_MARKER; 32]).with_class(TrafficClass::BestEffort);
        adv.log.attempts += 1;
        let res = {
            let (_, noc) = device.units_and_noc_mut();
            noc.transmit(&pkt, now)
        };
        match res {
            Ok(d) => {
                adv.log.cross_deliveries += 1;
                adv.log.leaked_bytes +=
                    d.payload.iter().filter(|&&b| b == VICTIM_MARKER).count() as u64;
            }
            Err(_) => adv.log.blocked += 1,
        }
    }
    device.put_adversary(adv);
}

/// Hostile self-programming probe: the compromised tile builds a code
/// patch, verifies it works by self-programming its own scratch graph
/// (legal inside the compromised domain), then launches the encoded
/// patch as a control packet at a victim tile — which the NoC boundary
/// check must refuse. No-op on an unarmed device.
pub fn attack_hostile_self_prog(device: &mut CimDevice, seed: u64, now: SimTime) {
    let Some(mut adv) = device.take_adversary() else {
        return;
    };
    let func = if seed.is_multiple_of(2) {
        Elementwise::Scale(2.0 + (seed % 13) as f64)
    } else {
        Elementwise::Offset(1.0 + (seed % 11) as f64)
    };
    let patch = Patch::SetMapFunc { node: 1, func };
    adv.log.hostile_patches += 1;

    // Local dry-run: self-programming the attacker's own graph succeeds
    // (containment restricts reach, not the compromised tile's compute).
    let mut b = GraphBuilder::new();
    let s = b.add("own-src", Operation::Source { width: 2 });
    let m = b.add(
        "own-map",
        Operation::Map {
            func: Elementwise::Identity,
            width: 2,
        },
    );
    let t = b.add("own-sink", Operation::Sink { width: 2 });
    b.chain(&[s, m, t])
        .expect("patch target chain is well-formed");
    let mut own = b.build().expect("patch target graph is well-formed");
    own.replace_op(m, Operation::Map { func, width: 2 })
        .expect("a shape-preserving patch applies locally");

    // Launch: the encoded patch, addressed across the boundary.
    let (w, h) = {
        let c = device.config();
        (c.mesh_width as u16, c.mesh_height as u16)
    };
    let mut victim = NodeId::new(
        (seed % u64::from(w.max(1))) as u16,
        ((seed >> 8) % u64::from(h.max(1))) as u16,
    );
    if victim == adv.tile {
        victim = NodeId::new(0, 0);
    }
    let pkt = crate::self_prog::rogue_patch_packet(device, &patch, adv.tile, victim, 0xBAD_5EED);
    adv.log.attempts += 1;
    let delivered = {
        let (_, noc) = device.units_and_noc_mut();
        noc.transmit(&pkt, now).is_ok()
    };
    if delivered {
        // A delivered code packet reprograms whatever the patch decodes
        // to on the victim tile: the whole tile is inside the blast
        // radius.
        adv.log.cross_deliveries += 1;
        let touched = device.units_on_tile(victim);
        adv.log.touch_all(touched);
    } else {
        adv.log.blocked += 1;
    }
    device.put_adversary(adv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::engine::StreamOptions;
    use crate::error::FabricError;
    use crate::mapper::MappingPolicy;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};
    use std::collections::HashMap;

    #[test]
    fn default_closed_and_revocable() {
        let mut caps = CapabilityTable::new();
        assert!(!caps.allows(1, 0));
        caps.grant_all(1, [0, 1, 2]);
        assert_eq!(caps.reach(1), 3);
        caps.revoke(1, 1);
        assert!(caps.allows(1, 0));
        assert!(!caps.allows(1, 1));
        caps.revoke_stream(1);
        assert_eq!(caps.reach(1), 0);
    }

    fn tiny_program() -> (
        CimDevice,
        crate::engine::MappedProgram,
        cim_dataflow::NodeRef,
    ) {
        let mut d = CimDevice::new(FabricConfig {
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        })
        .unwrap();
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width: 2 });
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width: 2,
            },
        );
        let k = b.add("k", Operation::Sink { width: 2 });
        b.chain(&[s, m, k]).unwrap();
        let g = b.build().unwrap();
        let prog = d.load_program(&g, MappingPolicy::LocalityAware).unwrap();
        (d, prog, s)
    }

    #[test]
    fn engine_enforces_capabilities() {
        let (mut d, mut prog, s) = tiny_program();
        let inputs = vec![HashMap::from([(s, vec![1.0, -1.0])])];

        // Deny-all: execution refused.
        let opts = StreamOptions {
            capabilities: Some(CapabilityTable::new()),
            ..StreamOptions::default()
        };
        let res = d.execute_stream(&mut prog, &inputs, &opts);
        assert!(matches!(res, Err(FabricError::CapabilityDenied { .. })));

        // Least privilege: grant exactly the placement, execution runs.
        let mut caps = CapabilityTable::new();
        caps.grant_placement(prog.stream_id, prog.placement());
        let opts = StreamOptions {
            capabilities: Some(caps),
            ..StreamOptions::default()
        };
        assert!(d.execute_stream(&mut prog, &inputs, &opts).is_ok());
    }

    #[test]
    fn fence_tile_disables_all_its_units() {
        let mut d = CimDevice::new(FabricConfig::default()).unwrap();
        let tile = NodeId::new(1, 1);
        let fenced = fence_tile(&mut d, tile);
        assert_eq!(fenced.len(), 4);
        assert_eq!(d.healthy_unit_count(), 60);
        for &u in &fenced {
            assert_eq!(d.unit(u).health(), crate::unit::UnitHealth::Disabled);
        }
    }

    // --- token lifecycle, independent of the chaos harness ---

    fn authority() -> TokenAuthority {
        TokenAuthority::new(0x5EC2_E7A1)
    }

    #[test]
    fn token_happy_path_accepted() {
        let mut auth = authority();
        let now = SimTime::ZERO;
        let t = auth.issue(7, 3, 0, now, TOKEN_TTL_PS);
        assert_eq!(auth.redeem(&t, 0, now + SimDuration::from_us(1)), Ok(()));
    }

    #[test]
    fn forged_token_rejected() {
        let mut auth = authority();
        let now = SimTime::ZERO;
        // Fabricated from whole cloth.
        let fake = CapabilityToken {
            stream: 7,
            unit: 3,
            domain: 0,
            expires_at_ps: TOKEN_TTL_PS,
            nonce: 99,
            mac: 0x1234_5678,
        };
        assert_eq!(auth.redeem(&fake, 0, now), Err(TokenViolation::Forged));
        // A real token with one tampered field is just as forged.
        let mut t = auth.issue(7, 3, 0, now, TOKEN_TTL_PS);
        t.unit = 4;
        assert_eq!(auth.redeem(&t, 0, now), Err(TokenViolation::Forged));
    }

    #[test]
    fn replayed_token_rejected() {
        let mut auth = authority();
        let now = SimTime::ZERO;
        let t = auth.issue(7, 3, 0, now, TOKEN_TTL_PS);
        assert_eq!(auth.redeem(&t, 0, now), Ok(()));
        assert_eq!(auth.redeem(&t, 0, now), Err(TokenViolation::Replayed));
    }

    #[test]
    fn expired_token_rejected() {
        let mut auth = authority();
        let t = auth.issue(7, 3, 0, SimTime::ZERO, TOKEN_TTL_PS);
        let late = SimTime::ZERO + SimDuration::from_ps(TOKEN_TTL_PS + 1);
        assert_eq!(auth.redeem(&t, 0, late), Err(TokenViolation::Expired));
        // Expiry is checked before replay: the nonce was never burned,
        // so the verdict stays Expired on re-presentation.
        assert_eq!(auth.redeem(&t, 0, late), Err(TokenViolation::Expired));
    }

    #[test]
    fn cross_domain_use_rejected() {
        let mut auth = authority();
        let now = SimTime::ZERO;
        let t = auth.issue(7, 3, 0, now, TOKEN_TTL_PS);
        assert_eq!(
            auth.redeem(&t, ADVERSARY_DOMAIN, now),
            Err(TokenViolation::WrongDomain)
        );
        // Refusal does not burn the nonce; the rightful domain still can.
        assert_eq!(auth.redeem(&t, 0, now), Ok(()));
    }

    // --- armed-adversary probes ---

    fn armed_device() -> CimDevice {
        let mut d = CimDevice::new(FabricConfig {
            dpe: DpeConfig::ideal(),
            encryption: true,
            ..FabricConfig::default()
        })
        .unwrap();
        let fenced = d.arm_adversary(NodeId::new(3, 3));
        assert_eq!(fenced.len(), 4, "the compromised tile is fenced");
        d
    }

    #[test]
    fn probes_are_contained_on_a_healthy_device() {
        let mut d = armed_device();
        attack_forge_token(&mut d, 5, SimTime::ZERO);
        attack_replay_token(&mut d, 5, 1_000, SimTime::ZERO);
        attack_cross_partition(&mut d, NodeId::new(0, 0), 3, 64, SimTime::ZERO);
        attack_hostile_dataflow(&mut d, 42, SimTime::ZERO);
        attack_hostile_self_prog(&mut d, 42, SimTime::ZERO);
        let log = d.attack_log().expect("armed");
        assert!(log.attempts > 0);
        assert!(log.contained(), "healthy boundaries block everything");
        assert_eq!(log.blocked, log.attempts, "every probe was refused");
        assert!(log.hostile_programs >= 1);
        assert!(log.hostile_patches >= 1);
        assert!(log.touched_units.is_empty());
    }

    #[test]
    fn leaky_boundary_is_observable() {
        let mut d = armed_device();
        d.noc_mut().set_leak_cross_partition(true);
        attack_cross_partition(&mut d, NodeId::new(0, 0), 2, 64, SimTime::ZERO);
        let log = d.attack_log().expect("armed");
        assert!(!log.contained());
        assert!(log.leaked_bytes >= 64, "victim bytes reached the attacker");
        assert!(log.cross_deliveries >= 1);
        let allowed = d.units_on_tile(NodeId::new(3, 3));
        assert!(log.touched_outside(&allowed) > 0, "blast radius escaped");
    }

    #[test]
    fn probes_are_noops_on_unarmed_devices() {
        let mut d = CimDevice::new(FabricConfig::default()).unwrap();
        attack_forge_token(&mut d, 0, SimTime::ZERO);
        attack_cross_partition(&mut d, NodeId::new(0, 0), 1, 16, SimTime::ZERO);
        attack_hostile_dataflow(&mut d, 1, SimTime::ZERO);
        assert!(d.attack_log().is_none());
        assert_eq!(d.noc().stats().packets, 0);
    }
}
