//! Collaborative and signal-processing workloads (Table 2 rows
//! "Collaborative (mail, chat)" and "Signal (image) processing").
//!
//! * [`MessageRouting`] — a mail/chat hub: almost no arithmetic, all
//!   communication, and a hot mailbox that serializes delivery.
//! * [`FilterBank`] — a chain of 5×5 convolutions over an image: dense
//!   streaming arithmetic with stage-to-stage frame handoff.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::{DataflowForm, Workload};
use cim_dataflow::graph::GraphBuilder;
use cim_dataflow::ops::{Elementwise, Operation};
use cim_sim::rng::Rng;
use cim_sim::rng::Zipf;
use cim_sim::SeedTree;

/// A mail/chat message router with skewed recipients.
#[derive(Debug, Clone)]
pub struct MessageRouting {
    /// Messages routed.
    pub messages: usize,
    /// Message size in bytes.
    pub message_bytes: usize,
    /// Mailboxes.
    pub mailboxes: usize,
    /// Fraction of traffic addressed to the hottest mailbox.
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MessageRouting {
    /// The standard TAB2 size: 20 k messages × 200 B, 5 k mailboxes,
    /// one mailbox receiving half the traffic.
    fn default() -> Self {
        MessageRouting {
            messages: 20_000,
            message_bytes: 200,
            mailboxes: 5_000,
            hot_fraction: 0.5,
            seed: 47,
        }
    }
}

impl MessageRouting {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        MessageRouting {
            messages: 500,
            message_bytes: 64,
            mailboxes: 50,
            hot_fraction: 0.5,
            seed: 47,
        }
    }

    /// Routes all messages; returns `(delivered, hot_mailbox_count)`.
    pub fn run(&self) -> (u64, u64) {
        let mut rng = SeedTree::new(self.seed).rng("mail");
        let zipf = Zipf::new(self.mailboxes - 1, 0.9);
        let mut mailboxes: Vec<Vec<u8>> = vec![Vec::new(); self.mailboxes];
        let mut hot = 0u64;
        for m in 0..self.messages {
            let to = if rng.gen::<f64>() < self.hot_fraction {
                hot += 1;
                0
            } else {
                1 + zipf.sample(&mut rng)
            };
            // "Parse headers": a small checksum over the payload prefix.
            let mut acc = m as u64;
            for i in 0..16 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            let byte = (acc & 0xFF) as u8;
            mailboxes[to].extend(std::iter::repeat_n(byte, self.message_bytes));
        }
        let delivered: u64 = mailboxes
            .iter()
            .map(|m| (m.len() / self.message_bytes) as u64)
            .sum();
        (delivered, hot)
    }
}

impl Workload for MessageRouting {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::Collaborative
    }

    fn characterize(&self) -> Characteristics {
        let (delivered, hot) = self.run();
        let msgs = self.messages as u64;
        debug_assert_eq!(delivered, msgs);
        std::hint::black_box(delivered);
        // Header parse + route ≈ 25 ops per message.
        let flops = msgs * 25;
        let footprint = msgs * self.message_bytes as u64;
        let moved = msgs * self.message_bytes as u64 * 2;
        // Every message *is* communication.
        let comm = msgs * self.message_bytes as u64;
        // Hot-mailbox appends serialize.
        let span = hot * 25;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span.max(1),
        }
    }
}

/// A 4-stage 5×5 convolution filter bank over one image.
#[derive(Debug, Clone)]
pub struct FilterBank {
    /// Square image side.
    pub image: usize,
    /// Convolution stages chained output→input.
    pub stages: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FilterBank {
    /// The standard TAB2 size: 768×768 image, 4 stages.
    fn default() -> Self {
        FilterBank {
            image: 768,
            stages: 4,
            seed: 53,
        }
    }
}

impl FilterBank {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        FilterBank {
            image: 32,
            stages: 2,
            seed: 53,
        }
    }

    /// Runs the bank; returns the mean absolute output (smoothing sanity).
    pub fn run(&self) -> f64 {
        let n = self.image;
        let mut rng = SeedTree::new(self.seed).rng("filter");
        let mut img: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0.0f64; n * n];
        // A normalized box-ish kernel with a random perturbation.
        let kernel: Vec<f64> = (0..25)
            .map(|_| 0.04 + rng.gen_range(-0.005..0.005))
            .collect();
        for _ in 0..self.stages {
            for y in 2..n - 2 {
                for x in 2..n - 2 {
                    let mut acc = 0.0;
                    for ky in 0..5 {
                        for kx in 0..5 {
                            acc += kernel[ky * 5 + kx] * img[(y + ky - 2) * n + (x + kx - 2)];
                        }
                    }
                    out[y * n + x] = acc;
                }
            }
            std::mem::swap(&mut img, &mut out);
        }
        img.iter().map(|v| v.abs()).sum::<f64>() / (n * n) as f64
    }
}

impl Workload for FilterBank {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::SignalProcessing
    }

    fn characterize(&self) -> Characteristics {
        let mean = self.run();
        std::hint::black_box(mean);
        let n = self.image as u64;
        let stages = self.stages as u64;
        let interior = (n - 4) * (n - 4);
        // 25 multiply-adds per pixel per stage.
        let flops = stages * interior * 50;
        let footprint = 2 * n * n * 8; // ping-pong buffers
        let moved = stages * interior * 8 * 26; // 25 reads + 1 write
                                                // Stage-to-stage frame handoff.
        let comm = stages * n * n * 8;
        // Stages sequential, pixels parallel within a stage.
        let span = stages * 50;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }

    fn dataflow(&self) -> Option<DataflowForm> {
        // A row-window of the convolution as a matvec stage pipeline:
        // each stage is a (window × window) banded matrix.
        let width = 64usize;
        let mut rng = SeedTree::new(self.seed).rng("filter-df");
        let mut b = GraphBuilder::new();
        let src = b.add("scanline", Operation::Source { width });
        let mut prev = src;
        for s in 0..self.stages.min(4) {
            let mut weights = vec![0.0f64; width * width];
            for r in 0..width {
                for dc in 0..5usize {
                    let c = (r + dc).saturating_sub(2).min(width - 1);
                    weights[r * width + c] += 0.2 + rng.gen_range(-0.01..0.01);
                }
            }
            let stage = b.add(
                format!("conv{s}"),
                Operation::MatVec {
                    rows: width,
                    cols: width,
                    weights,
                },
            );
            let clamp = b.add(
                format!("clamp{s}"),
                Operation::Map {
                    func: Elementwise::Tanh,
                    width,
                },
            );
            b.connect(prev, stage, 0).ok()?;
            b.connect(stage, clamp, 0).ok()?;
            prev = clamp;
        }
        let sink = b.add("filtered", Operation::Sink { width });
        b.connect(prev, sink, 0).ok()?;
        let graph = b.build().ok()?;
        Some(DataflowForm {
            graph,
            source: src,
            sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn routing_delivers_everything() {
        let (delivered, hot) = MessageRouting::small().run();
        assert_eq!(delivered, 500);
        // Hot mailbox takes roughly half.
        assert!((200..=300).contains(&hot), "hot count {hot}");
    }

    #[test]
    fn routing_buckets_are_serial_and_chatty() {
        let l = MessageRouting::default().characterize().bucketize();
        assert_eq!(l.compute, Level::Low);
        assert_eq!(l.communication, Level::High);
        assert_eq!(l.parallelism, Level::Low);
    }

    #[test]
    fn filter_bank_smooths() {
        // Raw noise in [-1, 1] has mean |x| = 0.5; one near-box smoothing
        // pass collapses it by several times.
        let smoothed = FilterBank {
            image: 64,
            stages: 1,
            seed: 1,
        }
        .run();
        assert!(
            smoothed < 0.3,
            "smoothing must shrink noise magnitude, got {smoothed}"
        );
    }

    #[test]
    fn filter_buckets() {
        let l = FilterBank::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.size, Level::High);
        assert_eq!(l.bandwidth, Level::High);
        assert_eq!(l.op_intensity, Level::Low);
        assert_eq!(l.communication, Level::High);
    }

    #[test]
    fn filter_dataflow_is_a_pipeline() {
        let df = FilterBank::small().dataflow().unwrap();
        // source + 2 stages × (conv + clamp) + sink
        assert_eq!(df.graph.node_count(), 6);
    }
}
