//! # cim-dataflow — dataflow graph IR and programming models
//!
//! The paper's applications "employ dataflow" (§II.B): computation is a
//! graph of operators that data streams through. This crate provides the
//! graph IR ([`graph::DataflowGraph`]), a reference interpreter
//! ([`interpreter::execute`]) that defines the semantics every hardware
//! model must match, and the three programming models of §III.B
//! ([`program`]): static, dynamic, and self-programmable dataflow.
//!
//! ## Example
//!
//! ```
//! use cim_dataflow::graph::GraphBuilder;
//! use cim_dataflow::interpreter::execute;
//! use cim_dataflow::ops::{Elementwise, Operation, Reduction};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny classifier: matvec -> relu -> argmax.
//! let mut b = GraphBuilder::new();
//! let src = b.add("pixels", Operation::Source { width: 4 });
//! let fc = b.add("fc", Operation::MatVec {
//!     rows: 4, cols: 3,
//!     weights: vec![0.1; 12],
//! });
//! let relu = b.add("relu", Operation::Map { func: Elementwise::Relu, width: 3 });
//! let arg = b.add("argmax", Operation::Reduce { kind: Reduction::ArgMax, width: 3 });
//! let out = b.add("class", Operation::Sink { width: 1 });
//! b.chain(&[src, fc, relu, arg, out])?;
//! let g = b.build()?;
//! let result = execute(&g, &HashMap::from([(src, vec![1.0; 4])]))?;
//! assert_eq!(result[&out].len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod graph;
pub mod interpreter;
pub mod ops;
pub mod program;

pub use error::{DataflowError, Result};
pub use graph::{DataflowGraph, GraphBuilder, GraphMetrics, Node, NodeRef};
pub use ops::{Elementwise, Operation, Reduction};
pub use program::{HashRoute, LeastLoadedRoute, Patch, RoutePolicy, RouteState, StaticProgram};
