//! Error types for the dataflow crate.

use core::fmt;

/// Errors raised while building, validating or executing dataflow graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataflowError {
    /// A node id referenced a node that does not exist.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// An edge connects ports whose widths disagree.
    WidthMismatch {
        /// Producer node index.
        from: usize,
        /// Consumer node index.
        to: usize,
        /// Producer output width.
        produced: usize,
        /// Consumer expected width.
        expected: usize,
    },
    /// A node has the wrong number of inputs for its operation.
    ArityMismatch {
        /// The node index.
        node: usize,
        /// Inputs the operation requires.
        required: usize,
        /// Inputs actually connected.
        connected: usize,
    },
    /// The graph contains a cycle (static dataflow graphs must be DAGs).
    CyclicGraph,
    /// An operation was constructed with inconsistent parameters.
    InvalidOperation {
        /// Why the operation is invalid.
        reason: String,
    },
    /// Execution was given inputs that do not match the graph sources.
    InputMismatch {
        /// Why the inputs are unusable.
        reason: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownNode { node } => write!(f, "unknown node {node}"),
            DataflowError::WidthMismatch {
                from,
                to,
                produced,
                expected,
            } => write!(
                f,
                "edge {from} -> {to} width mismatch: produces {produced}, consumer expects {expected}"
            ),
            DataflowError::ArityMismatch {
                node,
                required,
                connected,
            } => write!(
                f,
                "node {node} requires {required} inputs, has {connected}"
            ),
            DataflowError::CyclicGraph => write!(f, "graph contains a cycle"),
            DataflowError::InvalidOperation { reason } => {
                write!(f, "invalid operation: {reason}")
            }
            DataflowError::InputMismatch { reason } => {
                write!(f, "input mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, DataflowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = DataflowError::WidthMismatch {
            from: 1,
            to: 2,
            produced: 64,
            expected: 128,
        };
        assert!(e.to_string().contains("produces 64"));
        assert!(DataflowError::CyclicGraph.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DataflowError>();
    }
}
