//! Per-tenant request classes for the serving experiments (§VI).
//!
//! A CIM device deployed "as a slave device" (§III.E) serves inference
//! requests from several tenants at once: each tenant keeps an MLP
//! resident in crossbars (stationary weights) and sends requests against
//! a latency SLO. This module defines the request-class vocabulary —
//! model shape, deadline, traffic weight — that `cim_fabric::service`
//! turns into an open-loop serving workload.

use cim_dataflow::graph::{DataflowGraph, NodeRef};
use cim_sim::rng::Rng;
use cim_sim::time::SimDuration;
use cim_sim::SeedTree;

use crate::nn::mlp_graph;

/// One tenant's request class: the resident model, its latency SLO and
/// its share of the offered traffic.
#[derive(Debug, Clone)]
pub struct RequestClassSpec {
    /// Tenant/class name (reporting).
    pub name: &'static str,
    /// MLP layer dimensions, `input → … → output`.
    pub layer_dims: Vec<usize>,
    /// End-to-end latency SLO for a request of this class.
    pub deadline: SimDuration,
    /// Relative traffic weight in the offered mix.
    pub weight: u32,
}

impl RequestClassSpec {
    /// Input vector width for requests of this class.
    pub fn input_width(&self) -> usize {
        self.layer_dims[0]
    }

    /// Builds the tenant's resident dataflow graph (random Gaussian
    /// weights, deterministic in `seeds`). Returns graph, source, sink.
    pub fn build_graph(&self, seeds: SeedTree) -> (DataflowGraph, NodeRef, NodeRef) {
        mlp_graph(&self.layer_dims, seeds)
    }

    /// Floating-point operations one request of this class costs a
    /// conventional machine: 2·rows·cols per matvec layer (multiply +
    /// accumulate) plus the activation pass between layers. The cluster
    /// baseline charges this against its FLOPS budget so CIM-vs-cluster
    /// comparisons serve the same arithmetic.
    pub fn flops_per_request(&self) -> u64 {
        let mut flops = 0u64;
        for w in self.layer_dims.windows(2) {
            flops += 2 * (w[0] as u64) * (w[1] as u64);
        }
        // ReLU between layers (not after the last).
        for &d in &self.layer_dims[1..self.layer_dims.len() - 1] {
            flops += d as u64;
        }
        flops
    }

    /// Bytes of model state this class keeps resident: its weight
    /// matrices at f64 precision. This is what a conventional cluster
    /// ships to a standby on machine failover — and what a CIM device
    /// would have to reprogram after power loss if memristor
    /// conductances were not nonvolatile. The fleet ships (and
    /// reprograms) nothing; the cluster baseline charges this against
    /// its link on every failover.
    pub fn weights_bytes(&self) -> u64 {
        self.layer_dims
            .windows(2)
            .map(|w| 8 * (w[0] as u64) * (w[1] as u64))
            .sum()
    }
}

/// The standard three-tenant mix the serving experiments use.
///
/// Deadlines are calibrated against the default [`cim_fabric`] device
/// model: generous enough that an unloaded device meets every SLO, tight
/// enough that saturation queueing blows through them (so overload shows
/// up as timeouts and shed load rather than unbounded latency).
///
/// # Examples
///
/// ```
/// use cim_workloads::serving::standard_request_mix;
///
/// let mix = standard_request_mix();
/// assert_eq!(mix.len(), 3);
/// assert!(mix.iter().all(|c| c.weight > 0));
/// ```
pub fn standard_request_mix() -> Vec<RequestClassSpec> {
    vec![
        RequestClassSpec {
            name: "interactive",
            layer_dims: vec![16, 8, 4],
            deadline: SimDuration::from_us(20),
            weight: 6,
        },
        RequestClassSpec {
            name: "standard",
            layer_dims: vec![32, 16, 8],
            deadline: SimDuration::from_us(40),
            weight: 3,
        },
        RequestClassSpec {
            name: "batch",
            layer_dims: vec![64, 32, 8],
            deadline: SimDuration::from_us(80),
            weight: 1,
        },
    ]
}

/// Samples a class index from the mix's traffic weights.
///
/// # Panics
///
/// Panics if the mix is empty or all weights are zero.
pub fn sample_class<R: Rng + ?Sized>(rng: &mut R, mix: &[RequestClassSpec]) -> usize {
    let total: u64 = mix.iter().map(|c| u64::from(c.weight)).sum();
    assert!(total > 0, "request mix needs at least one positive weight");
    let mut pick = rng.gen_range(0..total);
    for (i, c) in mix.iter().enumerate() {
        let w = u64::from(c.weight);
        if pick < w {
            return i;
        }
        pick -= w;
    }
    mix.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_classes_build_runnable_graphs() {
        for spec in standard_request_mix() {
            let (g, src, sink) = spec.build_graph(SeedTree::new(7));
            assert!(g.node_count() >= 3, "{}", spec.name);
            let out = cim_dataflow::interpreter::execute(
                &g,
                &std::collections::HashMap::from([(src, vec![0.1; spec.input_width()])]),
            )
            .expect("runs");
            assert_eq!(out[&sink].len(), *spec.layer_dims.last().unwrap());
        }
    }

    #[test]
    fn flops_count_layers_and_activations() {
        let spec = RequestClassSpec {
            name: "t",
            layer_dims: vec![16, 8, 4],
            deadline: SimDuration::from_us(20),
            weight: 1,
        };
        // 2·16·8 + 2·8·4 matvec flops + 8 hidden-layer relu ops.
        assert_eq!(spec.flops_per_request(), 256 + 64 + 8);
        // (16·8 + 8·4) f64 weights resident in crossbars.
        assert_eq!(spec.weights_bytes(), 8 * (128 + 32));
    }

    #[test]
    fn class_sampling_follows_weights() {
        let mix = standard_request_mix();
        let mut rng = SeedTree::new(11).rng("classes");
        let mut counts = vec![0usize; mix.len()];
        for _ in 0..10_000 {
            counts[sample_class(&mut rng, &mix)] += 1;
        }
        // 6:3:1 mix — order must hold with a wide margin at n=10k.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        let share0 = counts[0] as f64 / 10_000.0;
        assert!((share0 - 0.6).abs() < 0.05, "interactive share {share0}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = standard_request_mix();
        let draw = |seed| {
            let mut rng = SeedTree::new(seed).rng("classes");
            (0..64)
                .map(|_| sample_class(&mut rng, &mix))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4), "different seeds should differ");
    }
}
