//! Regenerates Fig 6: slave -> cooperative -> integrated -> native.
//! Pass `--telemetry out.jsonl` to export the device metrics.
fn main() {
    let (_, tel_path) = cim_bench::telemetry_out::split_telemetry_arg(std::env::args().skip(1));
    let (report, tel) = cim_bench::experiments::fig6::run_with_telemetry(32);
    print!("{}", cim_bench::experiments::fig6::render(&report));
    if let Some(path) = tel_path {
        let lines = cim_bench::telemetry_out::write_export(&tel, &path)
            .unwrap_or_else(|e| panic!("telemetry export to {}: {e}", path.display()));
        eprintln!("telemetry: wrote {lines} lines to {}", path.display());
    }
}
