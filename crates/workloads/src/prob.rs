//! Probabilistic workloads (Table 2 rows "Bayesian inference" and
//! "Markov chain").
//!
//! * [`BeliefPropagation`] — loopy BP on a grid MRF: tiny state ground
//!   to dust by iterated message updates (compute-intensive, chatty,
//!   data-poor — a poor CIM fit per the paper).
//! * [`McmcChain`] — Metropolis sampling: an inherently *serial*
//!   dependency chain, the anti-parallel extreme.

use crate::chars::Characteristics;
use crate::spec::WorkloadClass;
use crate::workload::Workload;
use cim_sim::rng::normal;
use cim_sim::rng::Rng;
use cim_sim::SeedTree;

/// Loopy belief propagation on an `n × n` grid MRF with `states` labels.
#[derive(Debug, Clone)]
pub struct BeliefPropagation {
    /// Grid side.
    pub n: usize,
    /// Labels per node.
    pub states: usize,
    /// Message-passing iterations.
    pub iters: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BeliefPropagation {
    /// The standard TAB2 size: 8×8 grid, 4 states, 12 iterations.
    fn default() -> Self {
        BeliefPropagation {
            n: 8,
            states: 4,
            iters: 12,
            seed: 19,
        }
    }
}

impl BeliefPropagation {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        BeliefPropagation {
            n: 4,
            states: 2,
            iters: 5,
            seed: 19,
        }
    }

    /// Runs BP and returns per-node beliefs (normalized).
    pub fn run(&self) -> Vec<Vec<f64>> {
        let (n, s) = (self.n, self.states);
        let mut rng = SeedTree::new(self.seed).rng("bp");
        // Unary potentials and a smoothness pairwise potential.
        let unary: Vec<Vec<f64>> = (0..n * n)
            .map(|_| (0..s).map(|_| rng.gen_range(0.1..1.0)).collect())
            .collect();
        let pairwise = |a: usize, b: usize| if a == b { 1.0 } else { 0.4 };
        // messages[dir][node][state], dirs: 0=from-left 1=right 2=up 3=down
        let mut msgs = vec![vec![vec![1.0 / s as f64; s]; n * n]; 4];
        for _ in 0..self.iters {
            let mut new_msgs = msgs.clone();
            for y in 0..n {
                for x in 0..n {
                    let u = y * n + x;
                    // For each outgoing direction compute the message.
                    let neighbors = [
                        (x > 0).then(|| (y * n + x - 1, 1usize, 0usize)),
                        (x + 1 < n).then(|| (y * n + x + 1, 0, 1)),
                        (y > 0).then(|| ((y - 1) * n + x, 3, 2)),
                        (y + 1 < n).then(|| ((y + 1) * n + x, 2, 3)),
                    ];
                    for nb in neighbors.into_iter().flatten() {
                        let (v, incoming_dir_at_v, exclude_dir) = nb;
                        let mut out = vec![0.0; s];
                        for (sv, o) in out.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for su in 0..s {
                                let mut prod = unary[u][su] * pairwise(su, sv);
                                for (d, m) in msgs.iter().enumerate() {
                                    if d != exclude_dir {
                                        prod *= m[u][su];
                                    }
                                }
                                acc += prod;
                            }
                            *o = acc;
                        }
                        let z: f64 = out.iter().sum::<f64>().max(1e-300);
                        out.iter_mut().for_each(|v| *v /= z);
                        new_msgs[incoming_dir_at_v][v] = out;
                    }
                }
            }
            msgs = new_msgs;
        }
        // Beliefs.
        (0..n * n)
            .map(|u| {
                let mut b: Vec<f64> = (0..s)
                    .map(|su| {
                        let mut p = unary[u][su];
                        for m in &msgs {
                            p *= m[u][su];
                        }
                        p
                    })
                    .collect();
                let z: f64 = b.iter().sum::<f64>().max(1e-300);
                b.iter_mut().for_each(|v| *v /= z);
                b
            })
            .collect()
    }
}

impl Workload for BeliefPropagation {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::BayesianInference
    }

    fn characterize(&self) -> Characteristics {
        let beliefs = self.run();
        std::hint::black_box(beliefs.len());
        let (n, s, iters) = (self.n as u64, self.states as u64, u64::from(self.iters));
        let nodes = n * n;
        let edges = 2 * n * (n - 1);
        // Per directed message per iteration: s outgoing states × s inner
        // states × (1 mul-pair + 3 message muls + 1 add) ≈ 6s² flops.
        let flops = iters * 2 * edges * 6 * s * s;
        let footprint = 8 * (4 * nodes * s + nodes * s); // messages + unary
        let moved = iters * 2 * edges * 8 * (5 * s * s + 2 * s);
        // Every message is communication between dependent units.
        let comm = iters * 2 * edges * 8 * s;
        // Iterations are sequential; within one, messages parallel.
        let span = iters * 6 * s * s;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }
}

/// A Metropolis MCMC chain over a `dim`-dimensional Gaussian target.
#[derive(Debug, Clone)]
pub struct McmcChain {
    /// State dimensionality.
    pub dim: usize,
    /// Chain steps.
    pub steps: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McmcChain {
    /// The standard TAB2 size: 64 dims, 80 000 steps.
    fn default() -> Self {
        McmcChain {
            dim: 64,
            steps: 80_000,
            seed: 23,
        }
    }
}

impl McmcChain {
    /// A small instance for fast tests.
    pub fn small() -> Self {
        McmcChain {
            dim: 8,
            steps: 1_000,
            seed: 23,
        }
    }

    /// Runs the chain; returns the acceptance rate and final state norm.
    pub fn run(&self) -> (f64, f64) {
        let mut rng = SeedTree::new(self.seed).rng("mcmc");
        let mut state = vec![0.0f64; self.dim];
        let mut log_p = 0.0; // log density of N(0, I) up to constant: -|x|²/2
        let mut accepts = 0u64;
        for _ in 0..self.steps {
            let i = rng.gen_range(0..self.dim);
            let delta = normal(&mut rng, 0.0, 0.5);
            let old = state[i];
            let new = old + delta;
            let new_log_p = log_p - 0.5 * (new * new - old * old);
            let accept = (new_log_p - log_p).exp().min(1.0);
            if rng.gen::<f64>() < accept {
                state[i] = new;
                log_p = new_log_p;
                accepts += 1;
            }
        }
        let norm = state.iter().map(|x| x * x).sum::<f64>().sqrt();
        (accepts as f64 / f64::from(self.steps), norm)
    }
}

impl Workload for McmcChain {
    fn class(&self) -> WorkloadClass {
        WorkloadClass::MarkovChain
    }

    fn characterize(&self) -> Characteristics {
        let (rate, norm) = self.run();
        std::hint::black_box((rate, norm));
        let steps = u64::from(self.steps);
        // Per step: proposal, density update, accept test ≈ 8 flops.
        let flops = steps * 8;
        let footprint = 8 * self.dim as u64 + 16; // state + log density
        let moved = steps * 24; // read-modify-write one coordinate + density
                                // Every step depends on the previous: the chain itself is the
                                // communication.
        let comm = steps * 8;
        // Fully serial.
        let span = flops;
        Characteristics {
            flops,
            footprint_bytes: footprint,
            bytes_moved: moved,
            comm_bytes: comm,
            critical_path_flops: span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Level;

    #[test]
    fn bp_beliefs_are_distributions() {
        let beliefs = BeliefPropagation::small().run();
        assert_eq!(beliefs.len(), 16);
        for b in &beliefs {
            let z: f64 = b.iter().sum();
            assert!((z - 1.0).abs() < 1e-9, "normalized, got {z}");
            assert!(b.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn bp_buckets_are_data_poor_and_chatty() {
        let l = BeliefPropagation::default().characterize().bucketize();
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.size, Level::Low);
        assert_eq!(l.bandwidth, Level::Low);
        assert_eq!(l.communication, Level::High);
    }

    #[test]
    fn mcmc_behaves_statistically() {
        let (rate, norm) = McmcChain::default().run();
        assert!(rate > 0.5 && rate < 0.99, "acceptance {rate}");
        // Stationary distribution is N(0, I_64): |x| concentrates near 8.
        assert!(norm > 3.0 && norm < 16.0, "norm {norm}");
    }

    #[test]
    fn mcmc_is_serial_and_tiny() {
        let c = McmcChain::default().characterize();
        assert!(c.parallelism() < 1.5, "a chain has no parallelism");
        let l = c.bucketize();
        assert_eq!(l.parallelism, Level::Low);
        assert_eq!(l.size, Level::Low);
        assert_eq!(l.compute, Level::High);
        assert_eq!(l.communication, Level::High);
    }
}
