//! Validates a telemetry JSON-lines file (as written by `--telemetry`):
//! every non-empty line must parse as a JSON object carrying the
//! required `component`, `metric` and `value` keys, plus the
//! kind-specific fields (`series`, `alert`, `profile` records carry
//! timestamps, tenant/severity, folded stacks). Exits non-zero with the
//! first offending line on failure — the in-tree CI checker, so the
//! hermetic build needs no external JSON tooling.
//!
//! ```text
//! telemetry_check <file.jsonl> [--require-kinds a,b,c]
//! ```
//!
//! `--require-kinds` additionally demands at least one record of each
//! listed kind (e.g. `series,alert,profile`), so CI fails when an
//! exporter silently stops emitting a record family.
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<PathBuf> = None;
    let mut kinds: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-kinds" => match args.get(i + 1) {
                Some(k) => {
                    kinds = Some(k.clone());
                    i += 2;
                }
                None => return usage("--require-kinds needs a comma-separated list"),
            },
            other if path.is_none() => {
                path = Some(PathBuf::from(other));
                i += 1;
            }
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing input file");
    };
    match cim_bench::telemetry_out::validate_file(&path) {
        Ok(lines) => println!("{}: {lines} valid telemetry lines", path.display()),
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(kinds) = kinds {
        let wanted: Vec<&str> = kinds.split(',').map(str::trim).collect();
        match cim_bench::telemetry_out::require_kinds(&path, &wanted) {
            Ok(counts) => {
                let parts: Vec<String> = wanted
                    .iter()
                    .zip(&counts)
                    .map(|(k, n)| format!("{k}={n}"))
                    .collect();
                println!("{}: kinds present: {}", path.display(), parts.join(" "));
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("telemetry_check: {err}");
    eprintln!("usage: telemetry_check <file.jsonl> [--require-kinds a,b,c]");
    ExitCode::FAILURE
}
