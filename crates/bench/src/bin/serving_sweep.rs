//! Serving load sweep (§III.E serving front-end over the CIM fabric):
//! offered load from light traffic through ~8× saturation, standard
//! three-tenant mix. Pass a request count per point to override the
//! default 400.
fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let points = cim_bench::experiments::serving::run(
        &cim_bench::experiments::serving::DEFAULT_RATES,
        n,
        0x5E21,
    );
    print!("{}", cim_bench::experiments::serving::render(&points));
}
