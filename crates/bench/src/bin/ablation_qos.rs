//! ABL-QOS: virtual-channel isolation between streams.
fn main() {
    let report = cim_bench::experiments::ablations::run_qos(64);
    print!("{}", cim_bench::experiments::ablations::render_qos(&report));
}
