//! # cim-fabric — the Computing-In-Memory device
//!
//! The paper's primary contribution made executable: micro-units
//! (control, data and processing, Fig 5) grouped into tiles on a
//! packet-switched mesh, programmed with static, dynamic and
//! self-programmable dataflow (§III.B), secured with packet crypto and
//! capabilities (§IV.A), partitioned and QoS-isolated (§IV.B),
//! load-managed (§IV.C), and made fault-tolerant through
//! detection, containment, redundancy and recovery (§V.A).
//!
//! ## Layer map
//!
//! | Module | Paper section |
//! |---|---|
//! | [`config`], [`unit`](mod@unit), [`device`] | §III, Figs 3–5 |
//! | [`mapper`] | §III.D compilers |
//! | [`engine`] | §III.B static dataflow + §V.A recovery |
//! | [`security`] | §IV.A |
//! | [`virt`] | §IV.B |
//! | [`resman`] | §IV.C + §III.B dynamic dataflow |
//! | [`replicate`] | §VI scale-out (replicated devices, host-parallel) |
//! | [`runtime`] | §III.E run-times and operating systems |
//! | [`persist`] | nonvolatility exploited — crash persistence + power-loss recovery |
//! | [`service`](mod@service) | §III.E serving front-end + §V.A retry |
//! | [`fleet`](mod@fleet) | §IV.B/C at fleet scale — router, device failover (Table 1) |
//! | [`reliability`] | §V.A |
//! | [`self_prog`] | §III.B self-programmable dataflow |
//! | [`serviceability`] | §V.D graceful aging and self-healing |
//! | [`integration`] | §III.E–F, Fig 6 |
//!
//! ## Example: load and run a model
//!
//! ```
//! use cim_fabric::config::FabricConfig;
//! use cim_fabric::device::CimDevice;
//! use cim_fabric::engine::StreamOptions;
//! use cim_fabric::mapper::MappingPolicy;
//! use cim_dataflow::graph::GraphBuilder;
//! use cim_dataflow::ops::{Elementwise, Operation};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut device = CimDevice::new(FabricConfig::default())?;
//! let mut b = GraphBuilder::new();
//! let src = b.add("in", Operation::Source { width: 8 });
//! let fc = b.add("fc", Operation::MatVec {
//!     rows: 8, cols: 4, weights: vec![0.1; 32],
//! });
//! let relu = b.add("relu", Operation::Map { func: Elementwise::Relu, width: 4 });
//! let out = b.add("out", Operation::Sink { width: 4 });
//! b.chain(&[src, fc, relu, out])?;
//! let graph = b.build()?;
//!
//! let mut prog = device.load_program(&graph, MappingPolicy::LocalityAware)?;
//! let report = device.execute_stream(
//!     &mut prog,
//!     &[HashMap::from([(src, vec![0.5; 8])])],
//!     &StreamOptions::default(),
//! )?;
//! assert_eq!(report.outputs[0][&out].len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod device;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod integration;
pub mod mapper;
pub mod persist;
pub mod reliability;
pub mod replicate;
pub mod resman;
pub mod runtime;
pub mod security;
pub mod self_prog;
pub mod service;
pub mod serviceability;
pub mod unit;
pub mod virt;

pub use config::FabricConfig;
pub use device::CimDevice;
pub use engine::{MappedProgram, RecoveryEvent, StreamOptions, StreamReport};
pub use error::{FabricError, Result};
pub use fleet::{CimFleet, DeviceLoad, FleetConfig, FleetEvent, FleetReport, RoutingPolicy};
pub use integration::{run_integrated, IntegrationMode, IntegrationReport};
pub use mapper::{map_graph, map_graph_subset, MappingPolicy, Placement};
pub use persist::PersistentImage;
pub use reliability::{run_duplex, run_fault_campaign, CampaignReport, ScheduledFault};
pub use replicate::{execute_stream_replicated, execute_stream_replicated_threads, StreamItem};
pub use resman::{run_farm, FarmReport, LoadReport, SlaController};
pub use runtime::{CimRuntime, JobId, JobStatus};
pub use security::{fence_tile, CapabilityTable};
pub use self_prog::{apply_patch, deliver_and_apply, encode_patch_packet, PatchOutcome};
pub use service::{
    CimService, Disposition, LatencyStats, RequestOutcome, ServiceConfig, ServiceEvent,
    ServiceReport,
};
pub use serviceability::{ServiceAction, ServiceabilityMonitor, UnitServiceReport};
pub use unit::{MicroUnit, UnitHealth};
pub use virt::{Partition, PartitionManager};
