//! Serial-vs-parallel batch throughput — the recorded baseline for the
//! host-parallel execution layer (`BENCH_parallel.json`).
//!
//! Times the same deterministic workload at `threads = 1` and
//! `threads = 4` so the trajectory captures the host-parallel speedup
//! (or, on a single-core runner, its absence) without changing any
//! modeled numbers: outputs are bit-identical across all variants.
//!
//! ```text
//! cargo bench --bench parallel > BENCH_parallel.json
//! ```

use cim_bench::harness::Group;
use cim_crossbar::dpe::{DotProductEngine, DpeConfig};
use cim_crossbar::matrix::DenseMatrix;
use cim_sim::SeedTree;

const BATCH: usize = 64;
const DIM: usize = 128;

fn programmed_engine() -> DotProductEngine {
    let w = DenseMatrix::from_fn(DIM, DIM, |r, c| (((r * 3 + c) % 17) as f64 / 17.0) - 0.5);
    let mut dpe = DotProductEngine::new(DpeConfig::noise_free(), SeedTree::new(0xBA7C));
    dpe.program(&w).expect("programs");
    dpe
}

fn batch_inputs() -> Vec<Vec<f64>> {
    (0..BATCH)
        .map(|i| {
            (0..DIM)
                .map(|j| (((i + j) % 7) as f64 / 7.0) - 0.4)
                .collect()
        })
        .collect()
}

fn main() {
    cim_bench::harness::emit_calibration();
    let xs = batch_inputs();
    let mut g = Group::new("parallel");
    g.throughput(BATCH as u64);
    for threads in [1usize, 4] {
        let mut dpe = programmed_engine();
        g.bench(&format!("matvec_batch{BATCH}_t{threads}"), || {
            dpe.matvec_batch_threads(&xs, threads).expect("runs").1
        });
    }
    g.finish();
}
