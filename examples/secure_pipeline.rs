//! Security on a CIM device (paper §IV.A / §IV.B): packet encryption,
//! tamper detection, isolation domains, and least-privilege capabilities.
//!
//! Run with `cargo run --release --example secure_pipeline`.

use cim::fabric::security::CapabilityTable;
use cim::fabric::{CimDevice, FabricConfig, MappingPolicy, StreamOptions};
use cim::noc::packet::{NodeId, Packet};
use cim::noc::NocError;
use cim::sim::{SeedTree, SimTime};
use cim::workloads::nn::mlp_graph;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut device = CimDevice::new(FabricConfig {
        encryption: true,
        ..FabricConfig::default()
    })?;

    // --- 1. Eavesdropping: what does a link tap see? -------------------
    let secret = b"patient record #4711".to_vec();
    let packet = Packet::new(1, NodeId::new(0, 0), NodeId::new(3, 3), secret.clone());
    let delivery = device.noc_mut().transmit(&packet, SimTime::ZERO)?;
    println!("plaintext:  {:?}", String::from_utf8_lossy(&secret));
    println!(
        "on the wire: {:02x?}... (tap sees ciphertext)",
        &delivery.wire_payload[..8]
    );
    assert_ne!(&delivery.wire_payload[..], &secret[..]);
    assert_eq!(&delivery.payload[..], &secret[..]);
    println!(
        "delivered:  {:?} (verified + decrypted at the boundary)\n",
        String::from_utf8_lossy(&delivery.payload)
    );

    // --- 2. Tampering: a man-in-the-middle flips bits ------------------
    let tamper = |buf: &mut Vec<u8>| buf[0] ^= 0xFF;
    let res = device
        .noc_mut()
        .transmit_with(&packet, SimTime::ZERO, Some(&tamper));
    match res {
        Err(NocError::AuthenticationFailed { packet_id }) => {
            println!("tampered packet {packet_id}: rejected by authentication tag\n");
        }
        other => panic!("tampering must be detected, got {other:?}"),
    }

    // --- 3. Isolation domains: two tenants on one device ---------------
    let policy = device.noc_mut().policy_mut();
    for y in 0..4u16 {
        policy.assign(NodeId::new(0, y), 1); // tenant A: column 0
        policy.assign(NodeId::new(1, y), 2); // tenant B: column 1
    }
    let cross = Packet::new(2, NodeId::new(0, 0), NodeId::new(1, 0), vec![1, 2, 3]);
    match device.noc_mut().transmit(&cross, SimTime::ZERO) {
        Err(NocError::IsolationViolation { src, dst }) => {
            println!("cross-tenant packet {src} -> {dst}: blocked by isolation policy");
        }
        other => panic!("isolation must block cross-tenant traffic, got {other:?}"),
    }
    device.noc_mut().policy_mut().allow(1, 2);
    let ok = device.noc_mut().transmit(&cross, SimTime::ZERO)?;
    println!("after explicit grant: delivered in {} hops\n", ok.hops);

    // --- 4. Capabilities: least privilege for a loaded model -----------
    let (graph, src, _sink) = mlp_graph(&[32, 16, 4], SeedTree::new(9));
    let mut prog = device.load_program(&graph, MappingPolicy::LocalityAware)?;
    let inputs = vec![HashMap::from([(src, vec![0.5; 32])])];

    let denied = device.execute_stream(
        &mut prog,
        &inputs,
        &StreamOptions {
            capabilities: Some(CapabilityTable::new()), // deny-all
            ..StreamOptions::default()
        },
    );
    println!(
        "deny-all capability table: {:?}",
        denied.err().map(|e| e.to_string())
    );

    let mut caps = CapabilityTable::new();
    caps.grant_placement(prog.stream_id, prog.placement());
    println!(
        "least-privilege grant: stream {} may touch {} units",
        prog.stream_id,
        caps.reach(prog.stream_id)
    );
    let report = device.execute_stream(
        &mut prog,
        &inputs,
        &StreamOptions {
            capabilities: Some(caps),
            ..StreamOptions::default()
        },
    )?;
    println!(
        "inference under capabilities: completed in {} with {}",
        report.mean_latency(),
        report.energy
    );

    // --- 5. The cost of security ---------------------------------------
    let mut plain_device = CimDevice::new(FabricConfig::default())?;
    let mut plain_prog = plain_device.load_program(&graph, MappingPolicy::LocalityAware)?;
    let plain = plain_device.execute_stream(&mut plain_prog, &inputs, &StreamOptions::default())?;
    let overhead = report.mean_latency().as_ns_f64() / plain.mean_latency().as_ns_f64();
    println!(
        "encryption overhead: {:.2}x latency ({} vs {})",
        overhead,
        report.mean_latency(),
        plain.mean_latency()
    );
    Ok(())
}
