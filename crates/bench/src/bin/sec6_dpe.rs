//! Regenerates §VI: Dot Product Engine vs CPU vs GPU (latency,
//! throughput, power). Pass a layer dimension to override the default
//! paper-scale 4096.
fn main() {
    let dim = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let report = cim_bench::experiments::sec6::run(dim, 6);
    print!("{}", cim_bench::experiments::sec6::render(&report));
}
