//! Fixed-width table rendering for experiment output.
//!
//! Every experiment binary prints its results as a plain-text table whose
//! rows mirror the paper's tables/figure series, so `EXPERIMENTS.md` can
//! quote the output verbatim.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a power-of-ten style string (`1.2e3x`).
pub fn ratio(x: f64) -> String {
    if !x.is_finite() {
        return "inf".to_owned();
    }
    if x >= 100.0 || (x > 0.0 && x < 0.01) {
        format!("{x:.1e}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(ratio(1234.0), "1.2e3x");
        assert_eq!(ratio(0.001), "1.0e-3x");
        assert_eq!(ratio(f64::INFINITY), "inf");
    }
}
