//! Request serving: admission control, deadlines and retry (§III.E, §V.A).
//!
//! The paper's deployment story starts with CIM parts attached "as slave
//! devices" that a host hands work to. This module is that front door:
//! a [`CimService`] keeps one resident program per tenant class on the
//! device (stationary weights), admits an open-loop arrival stream
//! against a bounded queue, sheds load once the queue is full, enforces
//! per-request deadlines, and retries recoverable faults with bounded
//! exponential backoff — riding on the engine's §V.A mid-stream spare
//! recovery for faults that surface while a request is executing.
//!
//! Everything runs in simulated time on the in-tree RNG, so a serving
//! sweep is bit-identical at every `CIM_THREADS` setting.
//!
//! ```text
//! arrivals ──► admission (queue bound) ──► dispatch ──► engine
//!                  │ full                     │ fault        │ fault,
//!                  ▼                          ▼ (no spare)   ▼ spare left
//!                shed                  backoff + retry   §V.A recovery
//! ```

use crate::engine::{Injection, InjectionKind, StreamOptions};
use crate::error::{FabricError, Result};
use crate::mapper::MappingPolicy;
use crate::runtime::{CimRuntime, JobId, JobStatus};
use cim_dataflow::graph::{DataflowGraph, NodeRef};
use cim_sim::rng::{exponential, Rng};
use cim_sim::stats::Samples;
use cim_sim::time::{SimDuration, SimTime};
use cim_sim::SeedTree;
use std::collections::HashMap;

/// Serving-policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests in flight (admitted but not yet departed);
    /// arrivals beyond this are shed.
    pub queue_capacity: usize,
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base · 2^min(k-1, 32)` —
    /// exponential, saturating at the cap (see [`backoff_delay`]).
    pub backoff_base: SimDuration,
    /// Placement policy for resident class programs.
    pub mapping: MappingPolicy,
    /// Whether a power-loss restore wipes volatile device state before
    /// reloading the persisted image (the correct recovery pass). Only
    /// chaos campaigns turn this off, to prove the recovery contract
    /// *detects* a restart that inherits stale state.
    pub restore_clears_volatile: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 16,
            max_attempts: 3,
            backoff_base: SimDuration::from_us(10),
            mapping: MappingPolicy::LocalityAware,
            restore_clears_volatile: true,
        }
    }
}

/// Backoff before the next attempt after `attempts` attempts have been
/// made: `base · 2^(attempts-1)`, with the exponent saturated at 32 so
/// attempt counts near 64 (or beyond) cap the delay instead of
/// overflowing the shift. Monotone non-decreasing in `attempts`, then
/// constant at the cap. Shared by the service and fleet retry paths.
pub(crate) fn backoff_delay(base: SimDuration, attempts: u32) -> SimDuration {
    base * (1u64 << attempts.saturating_sub(1).min(32))
}

/// A scheduled serviceability event applied while the stream runs.
///
/// Events due between dispatches are applied exactly once by the
/// service's own cursor; the still-future tail is additionally handed
/// to the engine as [`StreamOptions::injections`], so an event whose
/// time falls *inside* a request's execution lands at that precise
/// sim-time point instead of waiting for the next dispatch boundary.
/// Because both layers may see the same event, applications must
/// tolerate repetition: health and link events are absolute state-sets
/// and [`InjectionKind::CellFaults`] is seed-deterministic, so
/// re-application is a no-op; [`InjectionKind::Congestion`] and
/// [`InjectionKind::DriftSpike`] compound when a mid-stream landing is
/// replayed at the next boundary — deterministically, so replays stay
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEvent {
    /// Hard-fail a unit (detected by the engine on next dispatch).
    FailUnit {
        /// Simulated time at which the unit dies.
        at: SimTime,
        /// The unit index.
        unit: usize,
    },
    /// Return a failed unit to service (field replacement / reboot).
    RepairUnit {
        /// Simulated time at which the unit is healthy again.
        at: SimTime,
        /// The unit index.
        unit: usize,
    },
    /// Any engine-level injection (link failure/repair, congestion
    /// burst, crossbar cell faults, drift spike) at a precise sim-time
    /// point.
    Inject {
        /// Simulated time at which the injection lands.
        at: SimTime,
        /// What it does.
        kind: InjectionKind,
    },
    /// An arrival burst at the service front door: the next `extra`
    /// open-loop arrivals after this point land back-to-back at the
    /// same instant, hammering the admission queue.
    ArrivalBurst {
        /// Simulated time at which the burst begins.
        at: SimTime,
        /// Arrivals beyond the first that land simultaneously.
        extra: u16,
    },
    /// Power loss: the device goes dark at `at`, loses all volatile
    /// state, and comes back `restart_after` later through the
    /// [`crate::runtime::CimRuntime::power_cycle`] recovery pass.
    /// Programmed conductances, resident programs and drift state
    /// survive (memristor nonvolatility); any attempt executing across
    /// the crash is voided and re-dispatched after the restart, exactly
    /// the way fleet failover voids in-flight work.
    PowerLoss {
        /// Simulated time at which power is lost.
        at: SimTime,
        /// Outage duration: the device restarts at `at + restart_after`.
        restart_after: SimDuration,
    },
}

impl ServiceEvent {
    /// The simulated time this event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            ServiceEvent::FailUnit { at, .. }
            | ServiceEvent::RepairUnit { at, .. }
            | ServiceEvent::Inject { at, .. }
            | ServiceEvent::ArrivalBurst { at, .. }
            | ServiceEvent::PowerLoss { at, .. } => at,
        }
    }

    /// The engine-level injection this event maps to; `None` for
    /// service-layer-only events ([`ServiceEvent::ArrivalBurst`],
    /// [`ServiceEvent::PowerLoss`] — a crash never rides into the
    /// engine; the service voids the straddled attempt instead).
    pub fn to_injection(&self) -> Option<Injection> {
        match *self {
            ServiceEvent::FailUnit { at, unit } => Some(Injection {
                at,
                kind: InjectionKind::FailUnit { unit },
            }),
            ServiceEvent::RepairUnit { at, unit } => Some(Injection {
                at,
                kind: InjectionKind::RepairUnit { unit },
            }),
            ServiceEvent::Inject { at, kind } => Some(Injection { at, kind }),
            ServiceEvent::ArrivalBurst { .. } | ServiceEvent::PowerLoss { .. } => None,
        }
    }
}

/// Terminal state of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Finished within its deadline.
    Completed {
        /// Completion time.
        finished: SimTime,
        /// Attempts made (1 = no retries).
        attempts: u32,
        /// Whether a §V.A mid-stream recovery happened underneath it.
        recovered: bool,
        /// Sink output vector.
        output: Vec<f64>,
    },
    /// Finished, but past its deadline (SLO miss; result discarded).
    TimedOut {
        /// Time the request left the system.
        finished: SimTime,
        /// Attempts made before giving up or finishing late.
        attempts: u32,
    },
    /// Rejected at admission: the queue was full.
    Shed,
    /// Every attempt hit a fault and the retry budget ran out.
    Failed {
        /// Attempts made.
        attempts: u32,
    },
}

/// One request's journey through the service.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Arrival-order request id.
    pub id: u64,
    /// Index of the request's class (registration order).
    pub class: usize,
    /// Open-loop arrival time.
    pub arrival: SimTime,
    /// How the request ended.
    pub disposition: Disposition,
}

/// Latency percentiles over requests that ran to completion (including
/// SLO misses), in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Median latency.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Worst admitted request.
    pub max_us: f64,
}

/// SLO accounting for one open-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Per-request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests offered by the arrival process.
    pub offered: usize,
    /// Requests that passed admission.
    pub admitted: usize,
    /// Requests shed at admission (queue full).
    pub shed: usize,
    /// Requests completed within deadline.
    pub completed: usize,
    /// Requests that finished or gave up past deadline.
    pub timed_out: usize,
    /// Requests whose retry budget ran out.
    pub failed: usize,
    /// §V.A mid-stream recoveries observed under successful attempts.
    pub recoveries: usize,
    /// Retry attempts beyond each request's first.
    pub retries: usize,
    /// Power-loss crashes the device survived during the run.
    pub crashes: usize,
    /// Crashes whose restore left non-pristine volatile state. Always 0
    /// under the shipped recovery pass; nonzero only when
    /// [`ServiceConfig::restore_clears_volatile`] is deliberately
    /// weakened — the detectable half of the recovery contract.
    pub dirty_restores: usize,
    /// Latency distribution of requests that ran to completion.
    pub latency: LatencyStats,
    /// SLO alert timeline from the observability pipeline, in firing
    /// order (empty unless [`CimService::enable_observability`] was
    /// called).
    pub alerts: Vec<cim_obs::AlertEvent>,
    /// `kind:"series"` JSON-lines export of the windowed time-series
    /// (empty unless observability is enabled; analytic-mode runs carry
    /// the coarse series synthesized from the queue operating point).
    pub series_jsonl: String,
}

impl ServiceReport {
    /// No request was lost: every admitted request either completed or
    /// is accounted as a deliberate SLO miss — none vanished or failed.
    pub fn zero_lost(&self) -> bool {
        self.failed == 0 && self.completed + self.timed_out == self.admitted
    }

    /// Goodput: fraction of offered requests completed within deadline.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.completed as f64 / self.offered as f64
    }

    /// The analytic tier's queueing view of this run: an M/D/1-style
    /// model built from the offered arrival rate and the observed mean
    /// service time of requests that ran to completion. Use it to ask
    /// closed-form questions — is this operating point stable, what
    /// wait does the queue add — without re-running the stream;
    /// `analytic_check` cross-validates it against full runs.
    pub fn queue_model(&self, rate_hz: f64) -> cim_sim::analytic::QueueModel {
        cim_sim::analytic::QueueModel::new(
            rate_hz,
            SimDuration::from_ns_f64(self.latency.mean_us * 1_000.0),
        )
    }
}

/// Draws an index from `weights` proportionally to each entry, consuming
/// exactly one `gen_range` from the RNG. Shared by the service and fleet
/// front doors so their class mixes stay draw-for-draw identical.
///
/// # Panics
///
/// Panics (in `gen_range`) if every weight is zero; callers validate.
pub(crate) fn weighted_pick(rng: &mut impl Rng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut pick = rng.gen_range(0..total);
    let mut idx = weights.len() - 1;
    for (i, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if pick < w {
            idx = i;
            break;
        }
        pick -= w;
    }
    idx
}

struct ServiceClass {
    name: String,
    job: JobId,
    src: NodeRef,
    sink: NodeRef,
    input_width: usize,
    deadline: SimDuration,
    weight: u32,
}

/// The request-serving front-end over a [`CimRuntime`].
///
/// # Examples
///
/// ```
/// use cim_fabric::service::{CimService, ServiceConfig};
/// use cim_fabric::FabricConfig;
/// use cim_sim::time::SimDuration;
/// use cim_sim::SeedTree;
/// use cim_dataflow::graph::GraphBuilder;
/// use cim_dataflow::ops::Operation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut svc = CimService::new(
///     FabricConfig::default(),
///     ServiceConfig::default(),
///     SeedTree::new(1),
/// )?;
/// let mut b = GraphBuilder::new();
/// let s = b.add("in", Operation::Source { width: 4 });
/// let k = b.add("out", Operation::Sink { width: 4 });
/// b.connect(s, k, 0)?;
/// svc.register_class("echo", b.build()?, s, k, SimDuration::from_us(500), 1)?;
/// let report = svc.run_open_loop(50_000.0, 20, &[])?;
/// assert_eq!(report.offered, 20);
/// assert!(report.zero_lost());
/// # Ok(())
/// # }
/// ```
pub struct CimService {
    rt: CimRuntime,
    cfg: ServiceConfig,
    classes: Vec<ServiceClass>,
    seeds: SeedTree,
    /// Departure times of admitted-but-unfinished requests.
    in_flight: Vec<SimTime>,
    next_request: u64,
    /// Power-loss crashes applied during the current run.
    crashes: usize,
    /// Crashes whose restore reported non-pristine volatile state.
    dirty_restores: usize,
    /// Observability pipeline config; `None` keeps the run unobserved.
    obs: Option<cim_obs::ObsConfig>,
}

impl std::fmt::Debug for CimService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CimService")
            .field("classes", &self.classes.len())
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl CimService {
    /// Boots a service on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates device-construction failures.
    pub fn new(
        fabric: crate::config::FabricConfig,
        cfg: ServiceConfig,
        seeds: SeedTree,
    ) -> Result<Self> {
        assert!(cfg.max_attempts >= 1, "need at least one attempt");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be positive");
        Ok(CimService {
            rt: CimRuntime::new(fabric)?,
            cfg,
            classes: Vec::new(),
            seeds,
            in_flight: Vec::new(),
            next_request: 0,
            crashes: 0,
            dirty_restores: 0,
            obs: None,
        })
    }

    /// Attaches the observability pipeline to subsequent
    /// [`CimService::run_open_loop`] calls: windowed time-series sampled
    /// on the config's cadence, per-tenant SLO burn-rate alerting (specs
    /// derived from registered classes when the config leaves them
    /// empty), and the series/alert exports on [`ServiceReport`].
    pub fn enable_observability(&mut self, cfg: cim_obs::ObsConfig) {
        self.obs = Some(cfg);
    }

    /// The underlying runtime (telemetry, fault injection, placement).
    pub fn runtime(&self) -> &CimRuntime {
        &self.rt
    }

    /// The underlying runtime, mutable.
    pub fn runtime_mut(&mut self) -> &mut CimRuntime {
        &mut self.rt
    }

    /// Registered class names, in registration order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// The resident job serving a class (placement inspection / fault
    /// targeting). `None` for out-of-range indices.
    pub fn class_job(&self, class: usize) -> Option<JobId> {
        self.classes.get(class).map(|c| c.job)
    }

    /// Registers a tenant class: loads its graph as a *resident* program
    /// and returns the class index. `weight` is the class's share of the
    /// open-loop traffic mix.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityExceeded`] if the graph cannot be
    /// resident alongside the already-registered classes (residency is
    /// the point: serving never waits for reprogramming), or propagates
    /// programming failures.
    pub fn register_class(
        &mut self,
        name: &str,
        graph: DataflowGraph,
        src: NodeRef,
        sink: NodeRef,
        deadline: SimDuration,
        weight: u32,
    ) -> Result<usize> {
        let input_width = graph.node(src).op.output_width();
        let nodes = graph.node_count();
        let free = self.rt.free_units();
        let status = self.rt.submit(graph, self.cfg.mapping)?;
        let job = match status {
            JobStatus::Running(id) => id,
            // Resident or bust: a queued class could never serve.
            JobStatus::Queued(_) => {
                return Err(FabricError::CapacityExceeded {
                    needed: nodes,
                    available: free,
                });
            }
        };
        self.classes.push(ServiceClass {
            name: name.to_string(),
            job,
            src,
            sink,
            input_width,
            deadline,
            weight,
        });
        Ok(self.classes.len() - 1)
    }

    /// Admission control: purges departed requests and checks the queue
    /// bound at `arrival`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::QueueFull`] when the request must be shed.
    fn try_admit(&mut self, arrival: SimTime) -> Result<()> {
        self.in_flight.retain(|&dep| dep > arrival);
        if self.in_flight.len() >= self.cfg.queue_capacity {
            return Err(FabricError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        Ok(())
    }

    /// Dispatches one admitted request with deadline-aware bounded
    /// retry. Returns `(finished, attempts, recovered, output)`.
    ///
    /// # Errors
    ///
    /// [`FabricError::RetriesExhausted`] when every attempt hit a
    /// recoverable fault; recoverable means the engine ran out of
    /// spares ([`FabricError::NoSpareAvailable`]) or the mesh lost the
    /// route ([`cim_noc::NocError::NoRoute`] — a severed link partition)
    /// — in both cases a later attempt can succeed after a repair.
    /// Other execution errors propagate.
    fn dispatch(
        &mut self,
        class: usize,
        arrival: SimTime,
        input: Vec<f64>,
        events: &[ServiceEvent],
        next_event: &mut usize,
        outages: &[(SimTime, SimTime)],
    ) -> Result<(SimTime, u32, bool, Vec<f64>)> {
        let deadline = arrival + self.classes[class].deadline;
        let job = self.classes[class].job;
        let src = self.classes[class].src;
        let sink = self.classes[class].sink;
        let mut when = arrival;
        let mut attempts = 0u32;
        loop {
            // A power outage blacks the device out for its whole
            // `[start, end)` window: no attempt can start while it is
            // dark, so dispatch waits for the restart.
            if let Some(&(_, end)) = outages.iter().find(|&&(s, e)| s <= when && when < e) {
                when = end;
            }
            attempts += 1;
            self.apply_events_until(events, next_event, when);
            // The still-future event tail rides into the engine so that
            // an event falling inside this request's execution lands at
            // its precise sim-time point (§V.A mid-item detection).
            let opts = StreamOptions {
                start: when,
                injections: events[*next_event..]
                    .iter()
                    .filter_map(ServiceEvent::to_injection)
                    .collect(),
                ..StreamOptions::default()
            };
            let item = HashMap::from([(src, input.clone())]);
            match self.rt.run(job, std::slice::from_ref(&item), &opts) {
                Ok(report) => {
                    let finished = report.completed[0];
                    // A crash inside the execution window voids the
                    // attempt exactly like fleet failover: the result is
                    // lost with the device's volatile state, and the
                    // request re-dispatches after the restart without
                    // burning retry budget (no double execution: the
                    // voided result is never surfaced).
                    if let Some(&(_, end)) =
                        outages.iter().find(|&&(s, _)| when < s && s <= finished)
                    {
                        attempts -= 1;
                        when = end;
                        if when > deadline {
                            return Ok((when, attempts.max(1), false, Vec::new()));
                        }
                        continue;
                    }
                    let output = report.outputs[0][&sink].clone();
                    return Ok((finished, attempts, !report.recoveries.is_empty(), output));
                }
                Err(
                    FabricError::NoSpareAvailable { .. }
                    | FabricError::Noc(cim_noc::NocError::NoRoute { .. }),
                ) => {
                    if attempts >= self.cfg.max_attempts {
                        return Err(FabricError::RetriesExhausted { attempts });
                    }
                    // Exponential backoff: 1×, 2×, 4×… the base gap,
                    // saturating so huge attempt budgets cannot overflow.
                    when += backoff_delay(self.cfg.backoff_base, attempts);
                    if when > deadline {
                        // The budget outlives the SLO; stop burning spares.
                        return Ok((when, attempts, false, Vec::new()));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn apply_events_until(&mut self, events: &[ServiceEvent], next: &mut usize, now: SimTime) {
        while let Some(ev) = events.get(*next) {
            if ev.at() > now {
                break;
            }
            if let ServiceEvent::PowerLoss { .. } = ev {
                // The crash happened in the past (the outage window
                // already fenced dispatch); apply the recovery pass now,
                // exactly once, before the next attempt touches state.
                let pristine = self.rt.power_cycle(self.cfg.restore_clears_volatile);
                self.crashes += 1;
                if !pristine {
                    self.dirty_restores += 1;
                }
                let tel = self.rt.device().telemetry().clone();
                if tel.is_enabled() {
                    let c = tel.component("service");
                    tel.counter_add(c, "crashes", 1);
                    if !pristine {
                        tel.counter_add(c, "dirty_restores", 1);
                    }
                }
            } else if let Some(inj) = ev.to_injection() {
                self.rt.device_mut().apply_injection(&inj);
            }
            *next += 1;
        }
    }

    /// Serves an open-loop Poisson-like arrival stream of `n` requests
    /// at `rate_hz` offered requests per second, classes drawn from the
    /// registered traffic weights. `events` is a fault/repair schedule
    /// (applied in time order as the stream passes each event's time).
    ///
    /// Deterministic in the service's seed: bit-identical outcomes and
    /// telemetry at every `CIM_THREADS` setting.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidConfig`] if no class is registered
    /// or all weights are zero; propagates non-recoverable execution
    /// errors (recoverable faults become dispositions, not errors).
    pub fn run_open_loop(
        &mut self,
        rate_hz: f64,
        n: usize,
        events: &[ServiceEvent],
    ) -> Result<ServiceReport> {
        if self.classes.is_empty() {
            return Err(FabricError::InvalidConfig {
                reason: "no request class registered".into(),
            });
        }
        let class_weights: Vec<u32> = self.classes.iter().map(|c| c.weight).collect();
        let total_weight: u64 = class_weights.iter().map(|&w| u64::from(w)).sum();
        if total_weight == 0 {
            return Err(FabricError::InvalidConfig {
                reason: "all class weights are zero".into(),
            });
        }
        assert!(rate_hz > 0.0, "offered rate must be positive");
        let mut events = events.to_vec();
        events.sort_by_key(ServiceEvent::at);
        // Power-loss outages: the device is dark from each crash until
        // its restart completes. A crash landing while the device is
        // already dark is a no-op (there is nothing left to kill), so it
        // is dropped from the schedule entirely — the outage list and
        // the power-cycle cursor stay consistent.
        let mut outages: Vec<(SimTime, SimTime)> = Vec::new();
        events.retain(|e| match *e {
            ServiceEvent::PowerLoss { at, restart_after } => {
                if outages.last().is_some_and(|&(_, end)| at < end) {
                    false
                } else {
                    outages.push((at, at + restart_after));
                    true
                }
            }
            _ => true,
        });
        self.crashes = 0;
        self.dirty_restores = 0;
        let mut next_event = 0usize;
        // Arrival bursts are a service-layer effect: once the open-loop
        // clock passes a burst's time, its `extra` follow-on arrivals
        // land at the same instant as the triggering arrival. The RNG is
        // only consumed for non-burst arrivals, so schedules without
        // bursts draw the exact same arrival sequence as before.
        let bursts: Vec<(SimTime, u16)> = events
            .iter()
            .filter_map(|e| match *e {
                ServiceEvent::ArrivalBurst { at, extra } => Some((at, extra)),
                _ => None,
            })
            .collect();
        let mut burst_idx = 0usize;
        let mut burst_left = 0u32;

        let mut arrivals_rng = self.seeds.rng("arrivals");
        let mut class_rng = self.seeds.rng("classes");
        let mut input_rng = self.seeds.rng("inputs");

        let tel = self.rt.device().telemetry().clone();
        let comp = tel.is_enabled().then(|| tel.component("service"));
        let mut obs = self.obs.as_ref().map(|cfg| {
            let tenants: Vec<(String, SimDuration)> = self
                .classes
                .iter()
                .map(|c| (c.name.clone(), c.deadline))
                .collect();
            cim_obs::Observability::new(cfg, &tenants, &tel)
        });

        let mut outcomes = Vec::with_capacity(n);
        let mut now = SimTime::ZERO;
        let mut latencies = Samples::new();
        let (mut admitted, mut shed, mut completed, mut timed_out, mut failed) = (0, 0, 0, 0, 0);
        let (mut recoveries, mut retries) = (0usize, 0usize);

        for _ in 0..n {
            if burst_left > 0 {
                burst_left -= 1; // simultaneous with the previous arrival
            } else {
                now += SimDuration::from_secs_f64(exponential(&mut arrivals_rng, rate_hz));
                while burst_idx < bursts.len() && bursts[burst_idx].0 <= now {
                    burst_left += u32::from(bursts[burst_idx].1);
                    burst_idx += 1;
                }
            }
            let class = weighted_pick(&mut class_rng, &class_weights);
            let width = self.classes[class].input_width;
            let input: Vec<f64> = (0..width).map(|_| input_rng.gen_range(-1.0..1.0)).collect();

            let id = self.next_request;
            self.next_request += 1;

            // Counters are bumped as each disposition lands (not batched
            // after the run) so the time-series recorder below sees live
            // values; end-of-run totals are unchanged.
            if let Some(c) = comp {
                tel.counter_add(c, "offered", 1);
            }
            let disposition = if let Err(FabricError::QueueFull { .. }) = self.try_admit(now) {
                shed += 1;
                if let Some(c) = comp {
                    tel.counter_add(c, "shed", 1);
                }
                Disposition::Shed
            } else {
                admitted += 1;
                if let Some(c) = comp {
                    tel.counter_add(c, "admitted", 1);
                }
                match self.dispatch(class, now, input, &events, &mut next_event, &outages) {
                    Ok((finished, attempts, recovered, output)) => {
                        retries += (attempts - 1) as usize;
                        if recovered {
                            recoveries += 1;
                        }
                        if let Some(c) = comp {
                            tel.counter_add(c, "retries", (attempts - 1) as u64);
                            tel.counter_add(c, "recoveries", u64::from(recovered));
                        }
                        self.in_flight.push(finished);
                        let lat = finished.saturating_since(now);
                        if let Some(c) = comp {
                            tel.record(c, "latency_ns", lat.as_ps() / 1000);
                        }
                        if lat <= self.classes[class].deadline && !output.is_empty() {
                            completed += 1;
                            latencies.record(lat.as_us_f64());
                            if let Some(c) = comp {
                                tel.counter_add(c, "completed", 1);
                            }
                            Disposition::Completed {
                                finished,
                                attempts,
                                recovered,
                                output,
                            }
                        } else {
                            timed_out += 1;
                            latencies.record(lat.as_us_f64());
                            if let Some(c) = comp {
                                tel.counter_add(c, "timed_out", 1);
                            }
                            Disposition::TimedOut { finished, attempts }
                        }
                    }
                    Err(FabricError::RetriesExhausted { attempts }) => {
                        retries += (attempts - 1) as usize;
                        failed += 1;
                        if let Some(c) = comp {
                            tel.counter_add(c, "retries", (attempts - 1) as u64);
                            tel.counter_add(c, "failed", 1);
                        }
                        self.in_flight.push(now);
                        Disposition::Failed { attempts }
                    }
                    Err(e) => return Err(e),
                }
            };
            if let Some(c) = comp {
                tel.gauge_set(c, "queue_depth", self.in_flight.len() as f64);
            }
            if let Some(o) = obs.as_mut() {
                let (at, observed) = match &disposition {
                    Disposition::Completed { finished, .. } => (
                        *finished,
                        cim_obs::Observed::Done {
                            latency: finished.saturating_since(now),
                        },
                    ),
                    Disposition::TimedOut { finished, .. } => {
                        (*finished, cim_obs::Observed::TimedOut)
                    }
                    Disposition::Shed => (now, cim_obs::Observed::Shed),
                    Disposition::Failed { .. } => (now, cim_obs::Observed::Failed),
                };
                o.observe_request(class, at, observed);
                // Sampling rides the monotone arrival clock; finish times
                // may run slightly ahead but the tick grid stays regular.
                tel.with_registry(|r| o.sample_to(now, r));
            }
            outcomes.push(RequestOutcome {
                id,
                class,
                arrival: now,
                disposition,
            });
        }

        let latency = match latencies.percentiles(&[50.0, 95.0, 99.0]) {
            Some(ps) => LatencyStats {
                p50_us: ps[0],
                p95_us: ps[1],
                p99_us: ps[2],
                mean_us: latencies.mean(),
                max_us: latencies.percentile(100.0).unwrap_or(0.0),
            },
            None => LatencyStats::default(),
        };

        if let Some(c) = comp {
            tel.gauge_set(c, "p99_us", latency.p99_us);
            tel.gauge_set(c, "goodput", completed as f64 / n.max(1) as f64);
        }

        let (alerts, series_jsonl) = match obs {
            Some(mut o) => {
                tel.with_registry(|r| o.finalize(now, r));
                // The analytic tier records no event-by-event registry
                // evolution; hand the operating point to `finish` so the
                // report still carries series-shaped signals.
                let qm = cim_sim::analytic::QueueModel::new(
                    rate_hz,
                    SimDuration::from_ns_f64(latency.mean_us * 1_000.0),
                );
                let synthetic = (self.rt.device().config().sim_mode == cim_sim::SimMode::Analytic)
                    .then_some((&qm, now));
                let rep = o.finish(synthetic);
                (rep.alerts, rep.series_jsonl)
            }
            None => (Vec::new(), String::new()),
        };

        Ok(ServiceReport {
            outcomes,
            offered: n,
            admitted,
            shed,
            completed,
            timed_out,
            failed,
            recoveries,
            retries,
            crashes: self.crashes,
            dirty_restores: self.dirty_restores,
            latency,
            alerts,
            series_jsonl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use cim_crossbar::dpe::DpeConfig;
    use cim_dataflow::graph::GraphBuilder;
    use cim_dataflow::ops::{Elementwise, Operation};

    /// source → relu → sink on `width` lanes.
    fn tiny_graph(width: usize) -> (DataflowGraph, NodeRef, NodeRef) {
        let mut b = GraphBuilder::new();
        let s = b.add("s", Operation::Source { width });
        let m = b.add(
            "m",
            Operation::Map {
                func: Elementwise::Relu,
                width,
            },
        );
        let k = b.add("k", Operation::Sink { width });
        b.chain(&[s, m, k]).expect("chain");
        (b.build().expect("valid"), s, k)
    }

    fn fabric(units: usize) -> FabricConfig {
        FabricConfig {
            mesh_width: units,
            mesh_height: 1,
            units_per_tile: 1,
            dpe: DpeConfig::ideal(),
            ..FabricConfig::default()
        }
    }

    fn service(units: usize, cfg: ServiceConfig, deadline: SimDuration) -> CimService {
        let mut svc = CimService::new(fabric(units), cfg, SeedTree::new(0x5EED)).expect("boots");
        let (g, s, k) = tiny_graph(4);
        svc.register_class("tiny", g, s, k, deadline, 1)
            .expect("resident");
        svc
    }

    #[test]
    fn light_load_meets_every_slo() {
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(100));
        let r = svc.run_open_loop(10_000.0, 50, &[]).expect("serves");
        assert_eq!(r.offered, 50);
        assert_eq!(r.completed, 50);
        assert_eq!((r.shed, r.timed_out, r.failed), (0, 0, 0));
        assert!(r.zero_lost());
        assert!((r.goodput() - 1.0).abs() < 1e-12);
        assert!(r.latency.p99_us <= 100.0, "p99 {}", r.latency.p99_us);
        for o in &r.outcomes {
            assert!(matches!(
                o.disposition,
                Disposition::Completed {
                    attempts: 1,
                    recovered: false,
                    ..
                }
            ));
        }
    }

    #[test]
    fn overload_sheds_and_bounds_p99() {
        let cfg = ServiceConfig {
            queue_capacity: 4,
            ..ServiceConfig::default()
        };
        let mut svc = service(4, cfg, SimDuration::from_us(100));
        // Far past saturation: the relu pipeline serves an item in
        // ~15 ns, so 500 M req/s offers ~7× its capacity.
        let r = svc.run_open_loop(500_000_000.0, 300, &[]).expect("serves");
        assert!(r.shed > 0, "overload must shed: {r:?}");
        assert!(r.admitted > 0, "some requests still get in");
        assert!(r.zero_lost(), "shedding loses nothing that was admitted");
        // Bounded queue ⇒ bounded wait: p99 of admitted requests stays
        // within (capacity + 1) service times, not open-ended.
        let unloaded = {
            let mut probe = service(4, ServiceConfig::default(), SimDuration::from_us(100));
            let p = probe.run_open_loop(1_000.0, 20, &[]).expect("probe");
            p.latency.max_us
        };
        let bound = unloaded * 5.0 + 10.0;
        assert!(
            r.latency.p99_us <= bound,
            "p99 {} must stay under {bound}",
            r.latency.p99_us
        );
    }

    #[test]
    fn service_level_retry_succeeds_after_repair() {
        // 3 units, 3 nodes: no spare exists, so the engine's §V.A path
        // cannot help — only the service-level backoff retry can.
        let cfg = ServiceConfig {
            backoff_base: SimDuration::from_us(100),
            ..ServiceConfig::default()
        };
        let mut svc = service(3, cfg, SimDuration::from_ms(5));
        let job = svc.class_job(0).expect("registered");
        let victim = svc
            .runtime()
            .program(job)
            .expect("resident")
            .placement()
            .node_to_unit[1];
        let events = [
            ServiceEvent::FailUnit {
                at: SimTime::ZERO,
                unit: victim,
            },
            // Repaired before the first backoff expires.
            ServiceEvent::RepairUnit {
                at: SimTime::from_ns(50_000),
                unit: victim,
            },
        ];
        let r = svc.run_open_loop(1_000_000.0, 1, &events).expect("serves");
        assert_eq!(r.completed, 1);
        assert_eq!(r.retries, 1, "exactly one backoff retry");
        assert!(r.zero_lost());
        assert!(matches!(
            r.outcomes[0].disposition,
            Disposition::Completed { attempts: 2, .. }
        ));
    }

    #[test]
    fn retries_exhaust_into_failed_disposition() {
        let cfg = ServiceConfig {
            max_attempts: 3,
            backoff_base: SimDuration::from_us(100),
            ..ServiceConfig::default()
        };
        let mut svc = service(3, cfg, SimDuration::from_ms(5));
        let job = svc.class_job(0).expect("registered");
        let victim = svc
            .runtime()
            .program(job)
            .expect("resident")
            .placement()
            .node_to_unit[1];
        let events = [ServiceEvent::FailUnit {
            at: SimTime::ZERO,
            unit: victim,
        }];
        let r = svc.run_open_loop(1_000_000.0, 1, &events).expect("serves");
        assert_eq!(r.failed, 1);
        assert_eq!(r.retries, 2);
        assert!(!r.zero_lost());
        assert!(matches!(
            r.outcomes[0].disposition,
            Disposition::Failed { attempts: 3 }
        ));
    }

    #[test]
    fn deadline_cuts_the_retry_budget_short() {
        // Backoff alone (100 µs) exceeds the 20 µs SLO: the service must
        // stop after one attempt instead of burning the remaining budget.
        let cfg = ServiceConfig {
            max_attempts: 5,
            backoff_base: SimDuration::from_us(100),
            ..ServiceConfig::default()
        };
        let mut svc = service(3, cfg, SimDuration::from_us(20));
        let job = svc.class_job(0).expect("registered");
        let victim = svc
            .runtime()
            .program(job)
            .expect("resident")
            .placement()
            .node_to_unit[1];
        let events = [ServiceEvent::FailUnit {
            at: SimTime::ZERO,
            unit: victim,
        }];
        let r = svc.run_open_loop(1_000_000.0, 1, &events).expect("serves");
        assert_eq!(r.timed_out, 1);
        assert!(matches!(
            r.outcomes[0].disposition,
            Disposition::TimedOut { attempts: 1, .. }
        ));
    }

    #[test]
    fn mid_stream_failure_recovers_transparently() {
        // 6 units, 3 nodes: spares exist, so the engine's §V.A recovery
        // absorbs the fault without any service-level retry.
        let mut svc = service(6, ServiceConfig::default(), SimDuration::from_ms(1));
        let job = svc.class_job(0).expect("registered");
        let victim = svc
            .runtime()
            .program(job)
            .expect("resident")
            .placement()
            .node_to_unit[1];
        let events = [ServiceEvent::FailUnit {
            at: SimTime::ZERO,
            unit: victim,
        }];
        let r = svc.run_open_loop(100_000.0, 10, &events).expect("serves");
        assert_eq!(r.completed, 10);
        assert_eq!(r.recoveries, 1, "one mid-stream recovery");
        assert_eq!(r.retries, 0, "no service-level retry needed");
        assert!(r.zero_lost());
        assert!(r.outcomes.iter().any(|o| matches!(
            o.disposition,
            Disposition::Completed {
                recovered: true,
                ..
            }
        )));
    }

    #[test]
    fn arrival_burst_hammers_the_admission_queue() {
        let cfg = ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        };
        // Light offered rate: without the burst nothing is ever shed.
        let clean = {
            let mut svc = service(4, cfg.clone(), SimDuration::from_us(100));
            svc.run_open_loop(10_000.0, 40, &[]).expect("serves")
        };
        assert_eq!(clean.shed, 0);
        let mut svc = service(4, cfg, SimDuration::from_us(100));
        let events = [ServiceEvent::ArrivalBurst {
            at: SimTime::ZERO,
            extra: 20,
        }];
        let r = svc.run_open_loop(10_000.0, 40, &events).expect("serves");
        assert_eq!(r.offered, 40, "bursts compress arrivals, not add them");
        assert!(r.shed > 0, "21 simultaneous arrivals must overrun cap 2");
        assert!(r.zero_lost(), "shedding loses nothing admitted");
        // The burst lands back-to-back: 21 outcomes share one arrival time.
        let first_burst_arrival = r.outcomes[0].arrival;
        let simultaneous = r
            .outcomes
            .iter()
            .filter(|o| o.arrival == first_burst_arrival)
            .count();
        assert_eq!(simultaneous, 21);
    }

    #[test]
    fn inject_events_land_through_the_service() {
        use cim_noc::packet::NodeId;
        // Link + congestion + cell-fault events flow through the same
        // schedule; the run completes and stays accounted.
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(500));
        let events = [
            ServiceEvent::Inject {
                at: SimTime::ZERO,
                kind: InjectionKind::Congestion {
                    from: NodeId::new(0, 0),
                    to: NodeId::new(3, 0),
                    packets: 4,
                    bytes: 256,
                },
            },
            ServiceEvent::Inject {
                at: SimTime::from_ns(1000),
                kind: InjectionKind::CellFaults {
                    unit: 1,
                    rate_ppm: 1000,
                    stuck_on_ppm: 500_000,
                    seed: 9,
                },
            },
            // Sever the only route between fc's tiles (1-D mesh): any
            // request in the window fails its attempt with NoRoute and
            // must be rescued by backoff retry after the repair below.
            ServiceEvent::Inject {
                at: SimTime::from_ns(2000),
                kind: InjectionKind::FailLink {
                    a: NodeId::new(1, 0),
                    b: NodeId::new(2, 0),
                },
            },
            ServiceEvent::Inject {
                at: SimTime::from_ns(5000),
                kind: InjectionKind::RepairLink {
                    a: NodeId::new(1, 0),
                    b: NodeId::new(2, 0),
                },
            },
        ];
        let r = svc.run_open_loop(100_000.0, 20, &events).expect("serves");
        assert_eq!(r.offered, 20);
        assert!(r.zero_lost(), "injections must not lose requests: {r:?}");
        assert!(!svc
            .runtime_mut()
            .device_mut()
            .noc_mut()
            .mesh_mut()
            .link_failed(NodeId::new(1, 0), NodeId::new(2, 0)));
    }

    #[test]
    fn event_schedules_are_deterministic() {
        use cim_noc::packet::NodeId;
        let run = || {
            let mut svc = service(6, ServiceConfig::default(), SimDuration::from_us(200));
            let events = [
                ServiceEvent::ArrivalBurst {
                    at: SimTime::ZERO,
                    extra: 5,
                },
                ServiceEvent::FailUnit {
                    at: SimTime::from_ns(500),
                    unit: 1,
                },
                ServiceEvent::Inject {
                    at: SimTime::from_ns(800),
                    kind: InjectionKind::FailLink {
                        a: NodeId::new(0, 0),
                        b: NodeId::new(1, 0),
                    },
                },
                ServiceEvent::RepairUnit {
                    at: SimTime::from_ns(50_000),
                    unit: 1,
                },
            ];
            svc.run_open_loop(200_000.0, 60, &events).expect("serves")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backoff_is_monotone_then_saturates() {
        let base = SimDuration::from_us(10);
        // Monotone non-decreasing over the whole climb and past the cap.
        let mut prev = SimDuration::ZERO;
        for attempts in 1..=80u32 {
            let d = backoff_delay(base, attempts);
            assert!(d >= prev, "backoff must be monotone at attempt {attempts}");
            prev = d;
        }
        // Constant once the exponent saturates: attempt counts near 64
        // (the old shift's overflow cliff) and beyond all cap out.
        let cap = backoff_delay(base, 33);
        assert_eq!(cap, base * (1u64 << 32));
        for attempts in [33u32, 34, 63, 64, 65, 1_000, u32::MAX] {
            assert_eq!(
                backoff_delay(base, attempts),
                cap,
                "backoff must be constant at attempt {attempts}"
            );
        }
        // First retry waits exactly the base gap.
        assert_eq!(backoff_delay(base, 1), base);
    }

    /// Probes an unperturbed run and returns the first request's
    /// execution window, so a crash can be planted strictly inside it.
    fn first_request_window() -> (SimTime, SimTime) {
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_ms(1));
        let probe = svc.run_open_loop(100_000.0, 5, &[]).expect("probe");
        match &probe.outcomes[0].disposition {
            Disposition::Completed { finished, .. } => (probe.outcomes[0].arrival, *finished),
            other => panic!("probe request must complete, got {other:?}"),
        }
    }

    #[test]
    fn power_loss_mid_request_voids_and_recovers() {
        let (arrival, finished) = first_request_window();
        assert!(finished > arrival, "execution takes time");
        let mid = SimTime::from_ps((arrival.as_ps() + finished.as_ps()) / 2 + 1);
        let events = [ServiceEvent::PowerLoss {
            at: mid,
            restart_after: SimDuration::from_us(5),
        }];
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_ms(1));
        let r = svc.run_open_loop(100_000.0, 5, &events).expect("serves");
        assert_eq!(r.crashes, 1, "the crash was applied exactly once");
        assert_eq!(r.dirty_restores, 0, "the recovery pass restores clean");
        assert_eq!(r.completed, 5, "no completed request is lost");
        assert!(r.zero_lost());
        // The straddled attempt was voided, not retried: the request
        // re-dispatched after the restart on its original budget.
        match &r.outcomes[0].disposition {
            Disposition::Completed {
                finished: after,
                attempts,
                ..
            } => {
                assert_eq!(*attempts, 1, "a voided attempt burns no retry budget");
                assert!(
                    *after >= mid + SimDuration::from_us(5),
                    "the request finishes after the restart"
                );
            }
            other => panic!("straddled request must still complete, got {other:?}"),
        }
    }

    #[test]
    fn weakened_restore_is_a_detected_dirty_restore() {
        let (arrival, finished) = first_request_window();
        let mid = SimTime::from_ps((arrival.as_ps() + finished.as_ps()) / 2 + 1);
        let events = [ServiceEvent::PowerLoss {
            at: mid,
            restart_after: SimDuration::from_us(5),
        }];
        let cfg = ServiceConfig {
            restore_clears_volatile: false,
            ..ServiceConfig::default()
        };
        let mut svc = service(4, cfg, SimDuration::from_ms(1));
        let r = svc.run_open_loop(100_000.0, 5, &events).expect("serves");
        assert_eq!(r.crashes, 1);
        assert_eq!(
            r.dirty_restores, 1,
            "skipping the volatile wipe must be detected"
        );
    }

    #[test]
    fn crash_inside_an_outage_window_is_shadowed() {
        // The second crash lands while the device is already dark: it is
        // dropped (nothing left to kill), so exactly one recovery runs.
        let events = [
            ServiceEvent::PowerLoss {
                at: SimTime::from_ns(1_000),
                restart_after: SimDuration::from_us(10),
            },
            ServiceEvent::PowerLoss {
                at: SimTime::from_ns(4_000),
                restart_after: SimDuration::from_us(10),
            },
        ];
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_ms(1));
        let r = svc.run_open_loop(100_000.0, 10, &events).expect("serves");
        assert_eq!(r.crashes, 1, "the shadowed crash is a no-op");
        assert!(r.zero_lost());
    }

    #[test]
    fn crash_schedules_are_deterministic() {
        let run = || {
            let events = [ServiceEvent::PowerLoss {
                at: SimTime::from_ns(3_000),
                restart_after: SimDuration::from_us(20),
            }];
            let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(200));
            svc.run_open_loop(200_000.0, 60, &events).expect("serves")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_model_reflects_the_operating_point() {
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(100));
        let r = svc.run_open_loop(10_000.0, 50, &[]).expect("serves");
        // Light load: far from saturation and adding almost no wait.
        let light = r.queue_model(10_000.0);
        assert!(light.is_stable(), "10 k req/s on a ~15 ns pipeline");
        assert!(light.utilization() < 0.01);
        assert!(light.predicted_latency() >= light.service());
        // The same service time at an absurd offered rate is unstable.
        let heavy = r.queue_model(1.0e12);
        assert!(!heavy.is_stable());
    }

    #[test]
    fn analytic_mode_serves_like_detailed_at_light_load() {
        let run = |mode: cim_sim::SimMode| {
            let mut svc = CimService::new(
                FabricConfig {
                    sim_mode: mode,
                    ..fabric(4)
                },
                ServiceConfig::default(),
                SeedTree::new(0x5EED),
            )
            .expect("boots");
            let (g, s, k) = tiny_graph(4);
            svc.register_class("tiny", g, s, k, SimDuration::from_us(100), 1)
                .expect("resident");
            svc.run_open_loop(10_000.0, 50, &[]).expect("serves")
        };
        let det = run(cim_sim::SimMode::Detailed);
        let ana = run(cim_sim::SimMode::Analytic);
        // Contention-free operating point: the analytic tier's zero-load
        // floor is exact, so the two tiers agree request by request.
        assert_eq!(det.completed, ana.completed);
        assert_eq!(det.outcomes, ana.outcomes);
    }

    #[test]
    fn classes_must_be_resident() {
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(100));
        // 3 of 4 units are taken by the first class; another 3-node
        // class cannot be resident.
        let (g, s, k) = tiny_graph(4);
        let err = svc.register_class("late", g, s, k, SimDuration::from_us(100), 1);
        assert!(matches!(err, Err(FabricError::CapacityExceeded { .. })));
    }

    #[test]
    fn serving_without_classes_errors() {
        let mut svc =
            CimService::new(fabric(4), ServiceConfig::default(), SeedTree::new(1)).expect("boots");
        assert!(matches!(
            svc.run_open_loop(1_000.0, 1, &[]),
            Err(FabricError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(30));
            svc.run_open_loop(2_000_000.0, 200, &[]).expect("serves")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_counters_match_the_report() {
        let mut svc = service(4, ServiceConfig::default(), SimDuration::from_us(100));
        let tel = svc
            .runtime_mut()
            .device_mut()
            .enable_telemetry(cim_sim::telemetry::TelemetryLevel::Metrics);
        let r = svc.run_open_loop(10_000.0, 30, &[]).expect("serves");
        let c = tel.component("service");
        tel.with_registry(|reg| {
            assert_eq!(reg.counter(c, "offered"), 30);
            assert_eq!(reg.counter(c, "completed"), r.completed as u64);
            assert_eq!(reg.counter(c, "shed"), r.shed as u64);
            let h = reg.histogram(c, "latency_ns").expect("latency histogram");
            assert_eq!(h.count(), (r.completed + r.timed_out) as u64);
        })
        .expect("registry");
    }
}
